//! Analyzer configuration: lint levels, thresholds, allow/deny lists.

use crate::diag::{LintCode, Severity};

/// How strictly the simulation builder's `.analyze(..)` hook treats the
/// analyzer's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Do not run the analyzer at all.
    #[default]
    Off,
    /// Run the analyzer; findings with [`Severity::Error`] fail the build,
    /// warnings are ignored.
    Errors,
    /// Run the analyzer; *every* finding — warnings included — fails the
    /// build. Useful for CI over curated corpora.
    Deny,
}

/// Tunable knobs and allow/deny lists for one analysis run.
///
/// The default configuration enables every lint at its
/// [`LintCode::default_severity`]. `allow*` entries suppress findings,
/// `deny` entries promote a code's warnings to errors; the narrower
/// kernel-scoped allow wins over a blanket deny for that code.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisConfig {
    /// Worker threads for the per-kernel analysis fan-out (1 = sequential).
    /// Reports are deterministic regardless of this value.
    pub threads: usize,
    /// A global access is flagged [`LintCode::Uncoalesced`] when it touches
    /// more than `ideal_sectors * uncoalesced_slack` 32 B sectors, where
    /// `ideal_sectors` is the minimum the touched bytes could occupy.
    /// This is a heuristic, not a proof — wide well-formed accesses stay
    /// below the slack no matter how many sectors they legitimately need.
    pub uncoalesced_slack: f64,
    /// Accesses whose sector count is below this are never flagged
    /// uncoalesced, however bad their slack ratio — tiny gathers are noise.
    pub uncoalesced_min_sectors: usize,
    /// A shared access is flagged [`LintCode::BankConflict`] when some bank
    /// serves at least this many distinct 4 B words in one access
    /// (the conflict degree, i.e. the serialisation factor).
    pub bank_conflict_threshold: usize,
    /// Suppressed lints: `(code, None)` silences the code everywhere,
    /// `(code, Some(substr))` only in kernels whose name contains `substr`.
    pub allows: Vec<(LintCode, Option<String>)>,
    /// Codes whose warnings are promoted to errors.
    pub denies: Vec<LintCode>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            threads: 1,
            uncoalesced_slack: 2.0,
            uncoalesced_min_sectors: 8,
            bank_conflict_threshold: 8,
            allows: Vec::new(),
            denies: Vec::new(),
        }
    }
}

impl AnalysisConfig {
    /// The default configuration (all lints at default severity, 1 thread).
    pub fn new() -> Self {
        AnalysisConfig::default()
    }

    /// Set the analysis worker-thread count (clamped to at least 1).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Suppress `code` everywhere.
    pub fn allow(mut self, code: LintCode) -> Self {
        self.allows.push((code, None));
        self
    }

    /// Suppress `code` in kernels whose name contains `kernel_substr`.
    pub fn allow_in(mut self, code: LintCode, kernel_substr: impl Into<String>) -> Self {
        self.allows.push((code, Some(kernel_substr.into())));
        self
    }

    /// Promote `code`'s warnings to errors.
    pub fn deny(mut self, code: LintCode) -> Self {
        self.denies.push(code);
        self
    }

    /// Effective severity of `code` for a finding in `kernel`, or `None`
    /// when an allow entry suppresses it. Kernel-scoped allows match by
    /// substring; a match always suppresses, even if the code is denied.
    pub fn severity_for(&self, code: LintCode, kernel: Option<&str>) -> Option<Severity> {
        for (c, scope) in &self.allows {
            if *c != code {
                continue;
            }
            match scope {
                None => return None,
                Some(substr) => {
                    if kernel.is_some_and(|k| k.contains(substr.as_str())) {
                        return None;
                    }
                }
            }
        }
        if self.denies.contains(&code) {
            Some(Severity::Error)
        } else {
            Some(code.default_severity())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_severity_passes_through() {
        let cfg = AnalysisConfig::new();
        assert_eq!(
            cfg.severity_for(LintCode::SharedWriteWrite, Some("k")),
            Some(Severity::Error)
        );
        assert_eq!(
            cfg.severity_for(LintCode::DeadWrite, None),
            Some(Severity::Warning)
        );
    }

    #[test]
    fn blanket_allow_suppresses() {
        let cfg = AnalysisConfig::new().allow(LintCode::DeadWrite);
        assert_eq!(cfg.severity_for(LintCode::DeadWrite, Some("any")), None);
        assert!(cfg
            .severity_for(LintCode::RedundantLoad, Some("any"))
            .is_some());
    }

    #[test]
    fn scoped_allow_matches_by_substring() {
        let cfg = AnalysisConfig::new().allow_in(LintCode::GlobalWriteOverlap, "reduce");
        assert_eq!(
            cfg.severity_for(LintCode::GlobalWriteOverlap, Some("vio_reduce_0")),
            None
        );
        assert_eq!(
            cfg.severity_for(LintCode::GlobalWriteOverlap, Some("gemm")),
            Some(Severity::Warning)
        );
        // No kernel context → the scoped allow cannot apply.
        assert_eq!(
            cfg.severity_for(LintCode::GlobalWriteOverlap, None),
            Some(Severity::Warning)
        );
    }

    #[test]
    fn deny_promotes_warnings() {
        let cfg = AnalysisConfig::new().deny(LintCode::Uncoalesced);
        assert_eq!(
            cfg.severity_for(LintCode::Uncoalesced, Some("k")),
            Some(Severity::Error)
        );
    }

    #[test]
    fn allow_beats_deny() {
        let cfg = AnalysisConfig::new()
            .deny(LintCode::BankConflict)
            .allow_in(LintCode::BankConflict, "histogram");
        assert_eq!(
            cfg.severity_for(LintCode::BankConflict, Some("histogram_256")),
            None
        );
        assert_eq!(
            cfg.severity_for(LintCode::BankConflict, Some("other")),
            Some(Severity::Error)
        );
    }

    #[test]
    fn threads_clamps_to_one() {
        assert_eq!(AnalysisConfig::new().threads(0).threads, 1);
        assert_eq!(AnalysisConfig::new().threads(4).threads, 4);
    }
}
