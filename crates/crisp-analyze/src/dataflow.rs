//! Per-warp register dataflow: def-use chains over `Reg` operands.
//!
//! A trace-driven model never executes values, but it *does* replay the
//! register dependencies — the scoreboard stalls consumers on producers.
//! That makes dataflow statically checkable: a register read with no
//! earlier def in the warp has no producer the scoreboard could ever have
//! tracked (the modelled latency is fiction), a def overwritten before any
//! read is dead trace weight, and a load repeating an identical earlier
//! load (same space, width, lane addresses, with no intervening store to
//! that space or barrier) fetches a value that cannot have changed.
//!
//! The pass also measures scoreboard pressure: a backward liveness sweep
//! per warp (live = will be read before the next redefinition) whose peak
//! population count is the register count a scoreboard actually needs —
//! comparable against the kernel's declared `regs_per_thread`.

use std::collections::HashMap;

use crisp_trace::{KernelTrace, Op, Space, StreamId, TraceErrorSite, WarpTrace, SCOREBOARD_REGS};

use crate::config::AnalysisConfig;
use crate::diag::{Diagnostic, LintCode};

/// Scoreboard-pressure numbers accumulated over a kernel's warps.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PressureStats {
    /// Peak live registers over any warp.
    pub max_live: u32,
    /// Sum over warps of each warp's peak live count (for the mean).
    pub sum_warp_peaks: u64,
    /// Warps measured.
    pub warps: usize,
}

impl PressureStats {
    /// Mean over warps of the per-warp peak live-register count.
    pub fn mean_live(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.sum_warp_peaks as f64 / self.warps as f64
        }
    }
}

fn site(
    stream: Option<StreamId>,
    kernel: &str,
    cta: usize,
    warp: usize,
    instr: usize,
) -> TraceErrorSite {
    TraceErrorSite {
        stream,
        kernel: Some(kernel.to_string()),
        cta: Some(cta),
        warp: Some(warp),
        instr: Some(instr),
    }
}

/// Run the dataflow pass over every warp of `k`, appending diagnostics and
/// returning scoreboard-pressure statistics.
pub(crate) fn check_kernel(
    stream: Option<StreamId>,
    k: &KernelTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) -> PressureStats {
    let mut stats = PressureStats::default();
    for (ci, cta) in k.ctas.iter().enumerate() {
        for (wi, w) in cta.warps.iter().enumerate() {
            let peak = check_warp(stream, k, ci, wi, w, cfg, out);
            stats.max_live = stats.max_live.max(peak);
            stats.sum_warp_peaks += peak as u64;
            stats.warps += 1;
        }
    }
    stats
}

#[allow(clippy::too_many_arguments)]
fn check_warp(
    stream: Option<StreamId>,
    k: &KernelTrace,
    ci: usize,
    wi: usize,
    w: &WarpTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) -> u32 {
    let bit = |r: crisp_trace::Reg| -> Option<u128> {
        // Out-of-range ids are the structural validator's finding, not ours.
        (r.0 < SCOREBOARD_REGS).then(|| 1u128 << r.0)
    };

    // Forward pass: use-before-def, dead writes, redundant loads.
    let mut defined: u128 = 0;
    let mut ubd_reported: u128 = 0; // one report per register per warp
    let mut last_def: [Option<usize>; SCOREBOARD_REGS as usize] = [None; SCOREBOARD_REGS as usize];
    let mut read_since_def: u128 = 0;
    // (space, width, lane addresses) of loads seen since the last barrier /
    // conflicting store, keyed to the instr index of the first occurrence.
    let mut loads_seen: HashMap<(u8, u8, Vec<u64>), usize> = HashMap::new();
    let space_tag = |s: Space| -> u8 {
        match s {
            Space::Global => 0,
            Space::Shared => 1,
            Space::Local => 2,
            Space::Tex => 3,
        }
    };

    for (ii, instr) in w.iter().enumerate() {
        for r in instr.src_regs() {
            let Some(b) = bit(r) else { continue };
            read_since_def |= b;
            if defined & b == 0 && ubd_reported & b == 0 {
                ubd_reported |= b;
                if let Some(severity) = cfg.severity_for(LintCode::UseBeforeDef, Some(&k.name)) {
                    out.push(Diagnostic {
                        code: LintCode::UseBeforeDef,
                        severity,
                        site: site(stream, &k.name, ci, wi, ii),
                        related: None,
                        message: format!(
                            "r{} is read before any instruction of this warp defines \
                             it — the scoreboard has no producer to wait on",
                            r.0
                        ),
                        hint: LintCode::UseBeforeDef.hint(),
                    });
                }
            }
        }

        match instr.op {
            Op::Bar => {
                // Another warp's stores become visible: earlier loads no
                // longer prove anything. Conservatively forget all spaces.
                loads_seen.clear();
            }
            Op::Ld(space) => {
                if let Some(mem) = &instr.mem {
                    let key = (space_tag(space), mem.width, mem.addrs.clone());
                    match loads_seen.get(&key) {
                        Some(&prev) => {
                            if let Some(severity) =
                                cfg.severity_for(LintCode::RedundantLoad, Some(&k.name))
                            {
                                out.push(Diagnostic {
                                    code: LintCode::RedundantLoad,
                                    severity,
                                    site: site(stream, &k.name, ci, wi, ii),
                                    related: Some(site(stream, &k.name, ci, wi, prev)),
                                    message: format!(
                                        "load repeats instr {prev} exactly (same space, \
                                         width, lane addresses) with no store or barrier \
                                         in between — the value cannot have changed"
                                    ),
                                    hint: LintCode::RedundantLoad.hint(),
                                });
                            }
                        }
                        None => {
                            loads_seen.insert(key, ii);
                        }
                    }
                }
            }
            Op::St(space) => {
                // A store may overwrite anything previously loaded from its
                // space; drop those entries.
                let tag = space_tag(space);
                loads_seen.retain(|(s, _, _), _| *s != tag);
            }
            _ => {}
        }

        if let Some(d) = instr.dst {
            let Some(b) = bit(d) else { continue };
            if let Some(prev) = last_def[d.0 as usize] {
                if read_since_def & b == 0 {
                    if let Some(severity) = cfg.severity_for(LintCode::DeadWrite, Some(&k.name)) {
                        out.push(Diagnostic {
                            code: LintCode::DeadWrite,
                            severity,
                            site: site(stream, &k.name, ci, wi, prev),
                            related: Some(site(stream, &k.name, ci, wi, ii)),
                            message: format!(
                                "r{} written here is overwritten at instr {ii} without \
                                 ever being read",
                                d.0
                            ),
                            hint: LintCode::DeadWrite.hint(),
                        });
                    }
                }
            }
            last_def[d.0 as usize] = Some(ii);
            read_since_def &= !b;
            defined |= b;
        }
    }
    // Defs still unread at Exit are *not* flagged: a warp's final register
    // state can model externally-visible values (e.g. stores the generator
    // elided), so only the overwrite-without-read chain is provably dead.

    // Backward liveness sweep for scoreboard pressure.
    let mut live: u128 = 0;
    let mut peak: u32 = 0;
    for instr in w.iter().rev() {
        if let Some(d) = instr.dst {
            if let Some(b) = bit(d) {
                live &= !b;
            }
        }
        for r in instr.src_regs() {
            if let Some(b) = bit(r) {
                live |= b;
            }
        }
        peak = peak.max(live.count_ones());
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{CtaTrace, DataClass, Instr, MemAccess, Reg};

    fn sealed(instrs: Vec<Instr>) -> WarpTrace {
        let mut w = WarpTrace::new();
        w.extend(instrs);
        w.seal();
        w
    }

    fn kernel_of(warps: Vec<WarpTrace>) -> KernelTrace {
        let threads = 32 * warps.len() as u32;
        KernelTrace::new("k", threads, 16, 0, vec![CtaTrace::new(warps)])
    }

    fn run(k: &KernelTrace) -> (Vec<Diagnostic>, PressureStats) {
        let mut out = Vec::new();
        let stats = check_kernel(None, k, &AnalysisConfig::new(), &mut out);
        (out, stats)
    }

    fn load_at(dst: u16, base: u64) -> Instr {
        Instr::load(
            Reg(dst),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, base, 32),
        )
    }

    #[test]
    fn use_before_def_is_reported_once_per_reg() {
        let w = sealed(vec![
            Instr::alu(Op::FpAlu, Reg(1), &[Reg(7)]),
            Instr::alu(Op::FpAlu, Reg(2), &[Reg(7)]), // same undefined reg: no second report
            Instr::alu(Op::FpAlu, Reg(3), &[Reg(8)]),
        ]);
        let (d, _) = run(&kernel_of(vec![w]));
        let ubd: Vec<_> = d
            .iter()
            .filter(|x| x.code == LintCode::UseBeforeDef)
            .collect();
        assert_eq!(ubd.len(), 2, "{d:?}");
        assert_eq!(ubd[0].site.instr, Some(0));
        assert_eq!(ubd[1].site.instr, Some(2));
    }

    #[test]
    fn defined_regs_do_not_trip() {
        let w = sealed(vec![
            load_at(1, 0),
            Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]),
            Instr::store(
                Reg(2),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x100, 32),
            ),
        ]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dead_write_chain_flags_each_overwritten_def() {
        let w = sealed(vec![
            Instr::alu(Op::IntAlu, Reg(5), &[]),
            Instr::alu(Op::IntAlu, Reg(5), &[]),
            Instr::alu(Op::IntAlu, Reg(5), &[]),
            Instr::alu(Op::IntAlu, Reg(0), &[Reg(5)]),
        ]);
        let (d, _) = run(&kernel_of(vec![w]));
        let dead: Vec<_> = d.iter().filter(|x| x.code == LintCode::DeadWrite).collect();
        assert_eq!(dead.len(), 2, "{d:?}");
        assert_eq!(dead[0].site.instr, Some(0));
        assert_eq!(dead[1].site.instr, Some(1));
    }

    #[test]
    fn read_between_defs_keeps_the_write_live() {
        let w = sealed(vec![
            Instr::alu(Op::IntAlu, Reg(5), &[]),
            Instr::alu(Op::IntAlu, Reg(6), &[Reg(5)]),
            Instr::alu(Op::IntAlu, Reg(5), &[]),
            Instr::alu(Op::IntAlu, Reg(7), &[Reg(5), Reg(6)]),
        ]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn final_unread_def_is_not_flagged() {
        let w = sealed(vec![Instr::alu(Op::IntAlu, Reg(5), &[])]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn identical_reload_is_redundant() {
        let w = sealed(vec![load_at(1, 0), load_at(2, 0)]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, LintCode::RedundantLoad);
        assert_eq!(d[0].site.instr, Some(1));
        assert_eq!(d[0].related.as_ref().unwrap().instr, Some(0));
    }

    #[test]
    fn barrier_or_store_invalidates_reload() {
        let st = Instr::store(
            Reg(1),
            MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
        );
        let w = sealed(vec![load_at(1, 0), Instr::bar(), load_at(2, 0)]);
        let (d, _) = run(&kernel_of(vec![w.clone(), w]));
        assert!(d.is_empty(), "{d:?}");
        let w = sealed(vec![load_at(1, 0), st, load_at(2, 0)]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pressure_counts_peak_live_registers() {
        // r1..r4 all live until the final consumer.
        let w = sealed(vec![
            Instr::alu(Op::IntAlu, Reg(1), &[]),
            Instr::alu(Op::IntAlu, Reg(2), &[]),
            Instr::alu(Op::IntAlu, Reg(3), &[]),
            Instr::alu(Op::FpFma, Reg(4), &[Reg(1), Reg(2), Reg(3)]),
            Instr::store(
                Reg(4),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
            ),
        ]);
        let (_, stats) = run(&kernel_of(vec![w]));
        assert_eq!(stats.max_live, 3);
        assert_eq!(stats.warps, 1);
        assert!((stats.mean_live() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_regs_are_ignored_here() {
        // Reg 200 is the structural validator's problem; the dataflow pass
        // must not panic or double-report it.
        let w = sealed(vec![Instr::alu(Op::IntAlu, Reg(0), &[Reg(200)])]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }
}
