//! Diagnostic types: lint codes, severities, and located findings.

use std::fmt;

use crisp_trace::{TraceError, TraceErrorKind, TraceErrorSite};

/// How serious a [`Diagnostic`] is.
///
/// Errors describe traces whose replay would *silently mis-model* the
/// workload (a race makes the trace's implied ordering a lie; a
/// use-before-def means the scoreboard never saw the producer). Warnings
/// describe shapes that are legal but either wasteful (dead writes,
/// redundant loads, uncoalesced accesses) or suspicious (cross-CTA global
/// write overlap, which is benign for atomics-like reductions but a bug
/// otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious or wasteful, but the replay is still meaningful.
    Warning,
    /// The trace violates an assumption the timing model replays silently.
    Error,
}

impl Severity {
    /// Lower-case label used in reports (`"error"` / `"warning"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Every lint the analyzer can raise. The string form ([`Self::as_str`]) is
/// the stable name used in reports, JSON exports, and allow/deny
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Two warps of one CTA write overlapping `Space::Shared` bytes within
    /// the same barrier interval — the replayed ordering is arbitrary.
    SharedWriteWrite,
    /// One warp reads and another writes overlapping `Space::Shared` bytes
    /// within the same barrier interval (a missing `Op::Bar` between a
    /// producer and a consumer is the classic instance).
    SharedReadWrite,
    /// Two CTAs of one kernel write overlapping `Space::Global` bytes.
    /// Downgraded to a warning: reductions and atomically-updated outputs
    /// do this legitimately, but for ordinary stores it is a grid-level
    /// race.
    GlobalWriteOverlap,
    /// An instruction reads a register no earlier instruction of the warp
    /// defined — the scoreboard can never have tracked the producer, so
    /// the modelled dependency latency is fiction.
    UseBeforeDef,
    /// A register write whose value is never read before being overwritten
    /// (or before the warp exits): dead code in the trace generator.
    DeadWrite,
    /// A load identical to an earlier one (same space, width, lane
    /// addresses) with no intervening store to that space or barrier — the
    /// value could not have changed.
    RedundantLoad,
    /// A global access whose lanes span far more 32 B sectors than the
    /// bytes they touch require (see `AnalysisConfig::uncoalesced_slack`).
    Uncoalesced,
    /// A shared-memory access whose lanes pile onto few banks (conflict
    /// degree at or above `AnalysisConfig::bank_conflict_threshold`),
    /// serialising the access.
    BankConflict,
}

impl LintCode {
    /// All codes, in report order.
    pub const ALL: [LintCode; 8] = [
        LintCode::SharedWriteWrite,
        LintCode::SharedReadWrite,
        LintCode::GlobalWriteOverlap,
        LintCode::UseBeforeDef,
        LintCode::DeadWrite,
        LintCode::RedundantLoad,
        LintCode::Uncoalesced,
        LintCode::BankConflict,
    ];

    /// The stable name: `family/lint` (e.g. `"race/shared-write-write"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::SharedWriteWrite => "race/shared-write-write",
            LintCode::SharedReadWrite => "race/shared-read-write",
            LintCode::GlobalWriteOverlap => "race/global-write-overlap",
            LintCode::UseBeforeDef => "dataflow/use-before-def",
            LintCode::DeadWrite => "dataflow/dead-write",
            LintCode::RedundantLoad => "dataflow/redundant-load",
            LintCode::Uncoalesced => "shape/uncoalesced",
            LintCode::BankConflict => "shape/bank-conflict",
        }
    }

    /// Parse the stable name back into a code (exact match).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Severity before allow/deny configuration is applied.
    pub fn default_severity(self) -> Severity {
        match self {
            LintCode::SharedWriteWrite | LintCode::SharedReadWrite | LintCode::UseBeforeDef => {
                Severity::Error
            }
            LintCode::GlobalWriteOverlap
            | LintCode::DeadWrite
            | LintCode::RedundantLoad
            | LintCode::Uncoalesced
            | LintCode::BankConflict => Severity::Warning,
        }
    }

    /// One-line fix hint attached to every diagnostic with this code.
    pub fn hint(self) -> &'static str {
        match self {
            LintCode::SharedWriteWrite => {
                "give each warp a disjoint shared-memory tile, or separate the \
                 writes with an Op::Bar"
            }
            LintCode::SharedReadWrite => {
                "insert an Op::Bar between the producing store and the \
                 consuming load"
            }
            LintCode::GlobalWriteOverlap => {
                "if the overlap models atomics or a reduction, add an allow \
                 entry for this kernel; otherwise give each CTA a disjoint \
                 output range"
            }
            LintCode::UseBeforeDef => {
                "define the register first (a prologue IntAlu/load models the \
                 parameter and special-register reads real kernels start with)"
            }
            LintCode::DeadWrite => "drop the write or read its value before redefining it",
            LintCode::RedundantLoad => "reuse the previously loaded register instead of reloading",
            LintCode::Uncoalesced => {
                "restructure addresses so lanes fall into fewer 32 B sectors \
                 (or accept the gather and its memory amplification)"
            }
            LintCode::BankConflict => {
                "pad or swizzle the shared layout so lanes hit distinct banks"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint code with its severity (after configuration), the
/// site it anchors at, an optional second site (the other access of a
/// race), a rendered message, and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity after allow/deny configuration.
    pub severity: Severity,
    /// Primary site, tagged exactly like `crisp_trace::validate` errors.
    pub site: TraceErrorSite,
    /// The other access of a conflict, when the finding is a pair.
    pub related: Option<TraceErrorSite>,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Generic fix hint for the code ([`LintCode::hint`]).
    pub hint: &'static str,
}

impl Diagnostic {
    /// Sort key: site first (stream, kernel, cta, warp, instr), then code —
    /// the deterministic order reports use.
    pub(crate) fn sort_key(&self) -> (TraceErrorSite, LintCode, Option<TraceErrorSite>) {
        (self.site.clone(), self.code, self.related.clone())
    }

    /// Convert into the `crisp-trace` error type so analyzer findings can
    /// ride in `SimError::InvalidTrace` next to structural ones.
    pub fn to_trace_error(&self) -> TraceError {
        TraceError {
            site: self.site.clone(),
            kind: TraceErrorKind::Semantic {
                code: self.code.as_str().to_string(),
                message: self.message.clone(),
            },
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity.label(),
            self.code,
            self.site,
            self.message
        )?;
        if let Some(r) = &self.related {
            write!(f, " (conflicts with {r})")?;
        }
        write!(f, "\n  hint: {}", self.hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_names() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(LintCode::parse("no-such-lint"), None);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LintCode::ALL.len());
    }

    #[test]
    fn race_and_dataflow_defaults() {
        assert_eq!(
            LintCode::SharedWriteWrite.default_severity(),
            Severity::Error
        );
        assert_eq!(LintCode::UseBeforeDef.default_severity(), Severity::Error);
        assert_eq!(
            LintCode::GlobalWriteOverlap.default_severity(),
            Severity::Warning
        );
        assert_eq!(LintCode::DeadWrite.default_severity(), Severity::Warning);
    }

    #[test]
    fn diagnostic_renders_site_code_and_hint() {
        let d = Diagnostic {
            code: LintCode::SharedReadWrite,
            severity: Severity::Error,
            site: TraceErrorSite {
                stream: None,
                kernel: Some("k".into()),
                cta: Some(0),
                warp: Some(1),
                instr: Some(2),
            },
            related: None,
            message: "load overlaps a store".into(),
            hint: LintCode::SharedReadWrite.hint(),
        };
        let text = d.to_string();
        assert!(text.contains("error[race/shared-read-write]"), "{text}");
        assert!(text.contains("kernel 'k'"), "{text}");
        assert!(text.contains("hint:"), "{text}");
    }

    #[test]
    fn conversion_keeps_site_and_code() {
        let d = Diagnostic {
            code: LintCode::UseBeforeDef,
            severity: Severity::Error,
            site: TraceErrorSite {
                warp: Some(3),
                ..Default::default()
            },
            related: None,
            message: "r7 read before def".into(),
            hint: LintCode::UseBeforeDef.hint(),
        };
        let e = d.to_trace_error();
        assert_eq!(e.site.warp, Some(3));
        assert!(e.to_string().contains("dataflow/use-before-def"));
    }
}
