//! Compiler-style static analysis over CRISP trace bundles.
//!
//! `crisp-trace`'s validator proves a bundle is *structurally* sound; this
//! crate checks what the timing model silently assumes beyond structure —
//! the class of defect that produces plausible-but-wrong IPC numbers
//! instead of an error. Three analysis families run over every kernel:
//!
//! 1. **Barrier-interval race detection** ([`LintCode::SharedWriteWrite`],
//!    [`LintCode::SharedReadWrite`], [`LintCode::GlobalWriteOverlap`]):
//!    GPUVerify-style phase splitting at `Op::Bar`, conflict detection on
//!    overlapping byte ranges.
//! 2. **Register dataflow** ([`LintCode::UseBeforeDef`],
//!    [`LintCode::DeadWrite`], [`LintCode::RedundantLoad`]) plus
//!    scoreboard-pressure statistics from a backward liveness sweep.
//! 3. **Memory shape** ([`LintCode::Uncoalesced`],
//!    [`LintCode::BankConflict`]) plus per-`DataClass` footprints, reusing
//!    the 128 B line / 32 B sector geometry of `crisp_trace`.
//!
//! Findings come back as a site-sorted [`AnalysisReport`]; severities and
//! thresholds are tuned through [`AnalysisConfig`], and the `crisp-sim`
//! builder's `.analyze(LintLevel)` hook folds error findings into its
//! preflight failure path.
//!
//! # Example
//!
//! ```
//! use crisp_analyze::{analyze_kernel, AnalysisConfig, LintCode};
//! use crisp_trace::{CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Reg, Space, WarpTrace};
//!
//! // Two warps write the same shared bytes in the same barrier interval.
//! let warp = || {
//!     let mut w = WarpTrace::new();
//!     w.push(Instr::alu(crisp_trace::Op::IntAlu, Reg(1), &[]));
//!     w.push(Instr::store(
//!         Reg(1),
//!         MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
//!     ));
//!     w.push(Instr::bar());
//!     w.seal();
//!     w
//! };
//! let k = KernelTrace::new("racy", 64, 8, 1024, vec![CtaTrace::new(vec![warp(), warp()])]);
//! let report = analyze_kernel(&k, &AnalysisConfig::new());
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, LintCode::SharedWriteWrite);
//! ```

mod config;
mod dataflow;
mod diag;
mod race;
mod report;
mod shape;

pub use config::{AnalysisConfig, LintLevel};
pub use diag::{Diagnostic, LintCode, Severity};
pub use report::{AnalysisReport, ClassLines, KernelStats};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crisp_trace::{CommandMeta, DataClass, KernelTrace, StreamId, TraceBundle, TraceSource};

/// Analyze every kernel of `bundle` and return the combined, site-sorted
/// report. Kernels are analyzed independently (fanned out over
/// `cfg.threads` workers) and merged in bundle launch order, so the result
/// is identical at any thread count.
pub fn analyze_bundle(bundle: &TraceBundle, cfg: &AnalysisConfig) -> AnalysisReport {
    let work: Vec<(Option<StreamId>, &KernelTrace)> = bundle
        .streams
        .iter()
        .flat_map(|s| s.kernels().map(move |k| (Some(s.id), k)))
        .collect();
    analyze_all(&work, cfg)
}

/// Analyze every kernel reachable through a [`TraceSource`], materializing
/// one kernel at a time (and releasing its CTAs again on streaming
/// sources), so a bundle far larger than RAM is analyzed in bounded
/// memory. Kernels are processed in directory order; the report —
/// diagnostics, statistics, and their ordering — is identical to
/// [`analyze_bundle`] over the materialized bundle.
///
/// # Errors
///
/// Propagates I/O failures from paging kernels in (a corrupt container
/// already fails at [`TraceInput::open`](crisp_trace::TraceInput::open)).
pub fn analyze_source(
    src: &mut TraceSource,
    cfg: &AnalysisConfig,
) -> std::io::Result<AnalysisReport> {
    let mut out = AnalysisReport::default();
    let metas = src.streams().to_vec();
    for s in &metas {
        for cmd in &s.commands {
            if let CommandMeta::Launch { kernel, .. } = cmd {
                let k = src.materialize_kernel(*kernel)?;
                let (diags, stats) = analyze_one(Some(s.id), &k, cfg);
                out.diagnostics.extend(diags);
                out.stats.push(stats);
            }
        }
    }
    out.diagnostics.sort_by_key(|a| a.sort_key());
    Ok(out)
}

/// Analyze a single kernel outside any bundle context (sites carry no
/// stream id).
pub fn analyze_kernel(k: &KernelTrace, cfg: &AnalysisConfig) -> AnalysisReport {
    analyze_all(&[(None, k)], cfg)
}

fn analyze_all(work: &[(Option<StreamId>, &KernelTrace)], cfg: &AnalysisConfig) -> AnalysisReport {
    let threads = cfg.threads.max(1).min(work.len().max(1));
    let results: Vec<(Vec<Diagnostic>, KernelStats)> = if threads <= 1 {
        work.iter().map(|&(s, k)| analyze_one(s, k, cfg)).collect()
    } else {
        // Self-scheduling fan-out: workers pull the next kernel index from a
        // shared counter and write into its slot, so the merge below is in
        // bundle order no matter which worker analyzed what.
        type Slot = Option<(Vec<Diagnostic>, KernelStats)>;
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..work.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let (s, k) = work[i];
                    let r = analyze_one(s, k, cfg);
                    slots.lock().unwrap()[i] = Some(r);
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|r| r.expect("every kernel slot filled"))
            .collect()
    };

    let mut out = AnalysisReport::default();
    for (diags, stats) in results {
        out.diagnostics.extend(diags);
        out.stats.push(stats);
    }
    out.diagnostics.sort_by_key(|a| a.sort_key());
    out
}

fn analyze_one(
    stream: Option<StreamId>,
    k: &KernelTrace,
    cfg: &AnalysisConfig,
) -> (Vec<Diagnostic>, KernelStats) {
    let mut diags = Vec::new();
    race::check_kernel(stream, k, cfg, &mut diags);
    let pressure = dataflow::check_kernel(stream, k, cfg, &mut diags);
    let mem = shape::check_kernel(stream, k, cfg, &mut diags);

    let stats = KernelStats {
        stream: stream.map(|s| s.0),
        name: k.name.clone(),
        ctas: k.ctas.len(),
        warps: k.ctas.iter().map(|c| c.warp_count()).sum(),
        instrs: k.instr_count(),
        max_live_regs: pressure.max_live,
        mean_live_regs: pressure.mean_live(),
        declared_regs: k.regs_per_thread,
        global_accesses: mem.global_accesses,
        shared_accesses: mem.shared_accesses,
        tex_accesses: mem.tex_accesses,
        footprint: DataClass::ALL
            .iter()
            .map(|&c| ClassLines {
                class: c.label(),
                lines: mem.footprint.lines(c),
                bytes: mem.footprint.bytes(c),
            })
            .collect(),
    };
    (diags, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{
        CtaTrace, DataClass, Instr, MemAccess, Op, Reg, Space, Stream, StreamKind, WarpTrace,
    };

    fn racy_kernel(name: &str) -> KernelTrace {
        let warp = || {
            let mut w = WarpTrace::new();
            w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
            w.push(Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
            ));
            w.push(Instr::bar());
            w.seal();
            w
        };
        KernelTrace::new(name, 64, 8, 1024, vec![CtaTrace::new(vec![warp(), warp()])])
    }

    fn clean_kernel(name: &str) -> KernelTrace {
        let warp = |wi: u64| {
            let mut w = WarpTrace::new();
            w.push(Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, wi * 0x1000, 32),
            ));
            w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]));
            w.push(Instr::store(
                Reg(2),
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, wi * 128, 32),
            ));
            w.push(Instr::bar());
            w.seal();
            w
        };
        KernelTrace::new(
            name,
            64,
            8,
            1024,
            vec![CtaTrace::new(vec![warp(0), warp(1)])],
        )
    }

    fn bundle(kernels: Vec<KernelTrace>) -> TraceBundle {
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        for k in kernels {
            s.launch(k);
        }
        TraceBundle::from_streams(vec![s])
    }

    #[test]
    fn clean_kernel_reports_nothing() {
        let r = analyze_kernel(&clean_kernel("ok"), &AnalysisConfig::new());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.len(), 1);
        assert_eq!(r.stats[0].warps, 2);
        assert!(r.stats[0].max_live_regs >= 1);
    }

    #[test]
    fn bundle_sites_carry_stream_ids() {
        let r = analyze_bundle(&bundle(vec![racy_kernel("r")]), &AnalysisConfig::new());
        assert!(r.has_errors());
        assert_eq!(r.diagnostics[0].site.stream, Some(StreamId(0)));
        assert_eq!(r.stats[0].stream, Some(0));
    }

    #[test]
    fn reports_identical_across_thread_counts() {
        let b = bundle(vec![
            racy_kernel("a"),
            clean_kernel("b"),
            racy_kernel("c"),
            clean_kernel("d"),
            racy_kernel("e"),
        ]);
        let base = analyze_bundle(&b, &AnalysisConfig::new().threads(1));
        for t in [2, 4] {
            let r = analyze_bundle(&b, &AnalysisConfig::new().threads(t));
            assert_eq!(base, r, "thread count {t} changed the report");
            assert_eq!(base.text(), r.text());
            assert_eq!(base.to_json(), r.to_json());
        }
    }

    #[test]
    fn source_analysis_matches_bundle_analysis() {
        let b = bundle(vec![racy_kernel("a"), clean_kernel("b"), racy_kernel("c")]);
        let cfg = AnalysisConfig::new();
        let expected = analyze_bundle(&b, &cfg);

        let mut bytes = Vec::new();
        crisp_trace::codec::write_bundle(&b, &mut bytes).unwrap();
        let mut src = crisp_trace::TraceInput::reader(std::io::Cursor::new(bytes))
            .open()
            .unwrap();
        assert!(src.is_streaming());
        let got = analyze_source(&mut src, &cfg).unwrap();
        assert_eq!(expected, got);
        assert_eq!(expected.text(), got.text());
        assert_eq!(expected.to_json(), got.to_json());
        // Incremental analysis leaves no CTAs resident.
        assert_eq!(src.stats().resident_ctas, 0);
    }

    #[test]
    fn diagnostics_sort_by_site() {
        let b = bundle(vec![racy_kernel("z"), racy_kernel("a")]);
        let r = analyze_bundle(&b, &AnalysisConfig::new());
        // Launch order within one stream is not alphabetical; the sort key
        // is the site (stream, kernel name, ...), so 'a' precedes 'z'.
        let names: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| d.site.kernel.clone().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn kernel_stats_track_footprint_order() {
        let r = analyze_kernel(&clean_kernel("k"), &AnalysisConfig::new());
        let classes: Vec<_> = r.stats[0].footprint.iter().map(|c| c.class).collect();
        assert_eq!(classes, vec!["texture", "pipeline", "compute"]);
        assert!(r.stats[0].footprint[2].lines > 0);
    }
}
