//! Barrier-interval race detection (GPUVerify / `racecheck` style).
//!
//! Within one CTA, the only inter-warp ordering a trace expresses is the
//! barrier: split each warp's instruction stream into `Op::Bar`-delimited
//! *phases* (phase = number of barriers executed before the instruction) and
//! any two accesses in the same phase from different warps are concurrent.
//! If their byte ranges overlap in `Space::Shared` and at least one writes,
//! the replayed ordering is arbitrary — a race.
//!
//! Across CTAs there is no barrier at all, so any two CTAs of a kernel
//! whose `Space::Global` *write* footprints overlap conflict for the whole
//! kernel duration. That pattern is legal for reductions modelled as
//! overlapping plain stores, so it is reported at warning severity with an
//! allow-entry escape hatch rather than as an error.

use crisp_trace::{CtaTrace, KernelTrace, MemAccess, Op, Space, StreamId, TraceErrorSite};

use crate::config::AnalysisConfig;
use crate::diag::{Diagnostic, LintCode};

/// Merge an access's per-lane byte ranges `[addr, addr+width)` into a
/// sorted list of disjoint intervals (touching ranges coalesce).
pub(crate) fn merged_intervals(mem: &MemAccess) -> Vec<(u64, u64)> {
    let w = mem.width as u64;
    let mut spans: Vec<(u64, u64)> = mem.addrs.iter().map(|&a| (a, a + w)).collect();
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (lo, hi) in spans {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// First overlapping byte range of two sorted disjoint interval lists.
fn first_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> Option<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            return Some((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    None
}

/// One shared-memory access of a CTA, located by phase/warp/instr.
struct SharedAccess {
    phase: usize,
    warp: usize,
    instr: usize,
    write: bool,
    lo: u64,
    hi: u64,
    intervals: Vec<(u64, u64)>,
}

fn site(
    stream: Option<StreamId>,
    kernel: &str,
    cta: usize,
    warp: usize,
    instr: usize,
) -> TraceErrorSite {
    TraceErrorSite {
        stream,
        kernel: Some(kernel.to_string()),
        cta: Some(cta),
        warp: Some(warp),
        instr: Some(instr),
    }
}

/// Race-check every CTA of `k` (shared memory) plus the kernel's cross-CTA
/// global write footprints, appending diagnostics to `out`.
pub(crate) fn check_kernel(
    stream: Option<StreamId>,
    k: &KernelTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    for (ci, cta) in k.ctas.iter().enumerate() {
        check_cta_shared(stream, k, ci, cta, cfg, out);
    }
    check_global_overlap(stream, k, cfg, out);
}

fn check_cta_shared(
    stream: Option<StreamId>,
    k: &KernelTrace,
    ci: usize,
    cta: &CtaTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    // Collect every shared access, tagged with its barrier interval.
    let mut accesses: Vec<SharedAccess> = Vec::new();
    let mut max_phase = 0usize;
    for (wi, w) in cta.warps.iter().enumerate() {
        let mut phase = 0usize;
        for (ii, instr) in w.iter().enumerate() {
            if instr.op == Op::Bar {
                phase += 1;
                max_phase = max_phase.max(phase);
                continue;
            }
            let Some(mem) = &instr.mem else { continue };
            if mem.space != Space::Shared {
                continue;
            }
            let intervals = merged_intervals(mem);
            let (Some(&(lo, _)), Some(&(_, hi))) = (intervals.first(), intervals.last()) else {
                continue;
            };
            accesses.push(SharedAccess {
                phase,
                warp: wi,
                instr: ii,
                write: !instr.op.is_load(),
                lo,
                hi,
                intervals,
            });
        }
    }
    if accesses.is_empty() {
        return;
    }

    // Sweep each phase: sort by low address so the inner loop can stop as
    // soon as candidates start past the current access's bounding range.
    let mut reported: std::collections::BTreeSet<(usize, usize, usize, usize)> =
        std::collections::BTreeSet::new();
    for phase in 0..=max_phase {
        let mut in_phase: Vec<&SharedAccess> =
            accesses.iter().filter(|a| a.phase == phase).collect();
        in_phase.sort_by_key(|a| (a.lo, a.warp, a.instr));
        for i in 0..in_phase.len() {
            let a = in_phase[i];
            for &b in &in_phase[i + 1..] {
                if b.lo >= a.hi {
                    break;
                }
                if a.warp == b.warp || !(a.write || b.write) {
                    continue;
                }
                let Some((lo, hi)) = first_overlap(&a.intervals, &b.intervals) else {
                    continue;
                };
                // Order the pair by (warp, instr) for a stable anchor/dedup key.
                let (first, second) = if (a.warp, a.instr) <= (b.warp, b.instr) {
                    (a, b)
                } else {
                    (b, a)
                };
                if !reported.insert((first.warp, first.instr, second.warp, second.instr)) {
                    continue;
                }
                let code = if first.write && second.write {
                    LintCode::SharedWriteWrite
                } else {
                    LintCode::SharedReadWrite
                };
                let Some(severity) = cfg.severity_for(code, Some(&k.name)) else {
                    continue;
                };
                let message = if code == LintCode::SharedWriteWrite {
                    format!(
                        "warp {} (instr {}) and warp {} (instr {}) both write shared \
                         bytes 0x{lo:x}..0x{hi:x} in barrier interval {phase}",
                        first.warp, first.instr, second.warp, second.instr
                    )
                } else {
                    let (wr, rd) = if first.write {
                        (first, second)
                    } else {
                        (second, first)
                    };
                    format!(
                        "shared bytes 0x{lo:x}..0x{hi:x} are written by warp {} (instr {}) \
                         and read by warp {} (instr {}) in the same barrier interval \
                         {phase} — no Op::Bar orders them",
                        wr.warp, wr.instr, rd.warp, rd.instr
                    )
                };
                out.push(Diagnostic {
                    code,
                    severity,
                    site: site(stream, &k.name, ci, first.warp, first.instr),
                    related: Some(site(stream, &k.name, ci, second.warp, second.instr)),
                    message,
                    hint: code.hint(),
                });
            }
        }
    }
}

fn check_global_overlap(
    stream: Option<StreamId>,
    k: &KernelTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    if k.ctas.len() < 2 {
        return;
    }
    let Some(severity) = cfg.severity_for(LintCode::GlobalWriteOverlap, Some(&k.name)) else {
        return;
    };

    // Per CTA: the merged global-write footprint, each merged span keeping
    // the site of its first contributing store.
    struct Span {
        lo: u64,
        hi: u64,
        cta: usize,
        warp: usize,
        instr: usize,
    }
    let mut spans: Vec<Span> = Vec::new();
    for (ci, cta) in k.ctas.iter().enumerate() {
        let mut raw: Vec<Span> = Vec::new();
        for (wi, w) in cta.warps.iter().enumerate() {
            for (ii, instr) in w.iter().enumerate() {
                if instr.op.is_load() {
                    continue;
                }
                let Some(mem) = &instr.mem else { continue };
                if mem.space != Space::Global {
                    continue;
                }
                for (lo, hi) in merged_intervals(mem) {
                    raw.push(Span {
                        lo,
                        hi,
                        cta: ci,
                        warp: wi,
                        instr: ii,
                    });
                }
            }
        }
        raw.sort_by_key(|s| (s.lo, s.warp, s.instr));
        let mut merged: Vec<Span> = Vec::new();
        for s in raw {
            match merged.last_mut() {
                Some(last) if s.lo <= last.hi => last.hi = last.hi.max(s.hi),
                _ => merged.push(s),
            }
        }
        spans.extend(merged);
    }

    // Sweep all CTAs' spans together; report each CTA at most once per
    // kernel (anchored at its first conflicting store) so an all-CTAs
    // reduction yields O(ctas) diagnostics, not O(ctas²).
    spans.sort_by_key(|s| (s.lo, s.cta));
    let mut flagged: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for i in 0..spans.len() {
        let a = &spans[i];
        for b in &spans[i + 1..] {
            if b.lo >= a.hi {
                break;
            }
            if a.cta == b.cta {
                continue;
            }
            // Anchor at the higher-numbered CTA, relate to the lower.
            let (anchor, other) = if a.cta > b.cta { (a, b) } else { (b, a) };
            if !flagged.insert(anchor.cta) {
                continue;
            }
            let lo = a.lo.max(b.lo);
            let hi = a.hi.min(b.hi);
            out.push(Diagnostic {
                code: LintCode::GlobalWriteOverlap,
                severity,
                site: site(stream, &k.name, anchor.cta, anchor.warp, anchor.instr),
                related: Some(site(stream, &k.name, other.cta, other.warp, other.instr)),
                message: format!(
                    "CTA {} writes global bytes 0x{lo:x}..0x{hi:x} also written by \
                     CTA {} — no intra-kernel ordering exists between CTAs",
                    anchor.cta, other.cta
                ),
                hint: LintCode::GlobalWriteOverlap.hint(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{DataClass, Instr, Reg, WarpTrace};

    fn shared_store(base: u64, lanes: usize) -> Instr {
        Instr::store(
            Reg(1),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, base, lanes),
        )
    }

    fn shared_load(base: u64, lanes: usize) -> Instr {
        Instr::load(
            Reg(2),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, base, lanes),
        )
    }

    fn kernel_of(warps: Vec<WarpTrace>) -> KernelTrace {
        let threads = 32 * warps.len() as u32;
        KernelTrace::new("k", threads, 8, 1024, vec![CtaTrace::new(warps)])
    }

    fn sealed(instrs: Vec<Instr>) -> WarpTrace {
        let mut w = WarpTrace::new();
        w.extend(instrs);
        w.seal();
        w
    }

    fn diags(k: &KernelTrace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_kernel(None, k, &AnalysisConfig::new(), &mut out);
        out
    }

    #[test]
    fn merged_intervals_coalesce_lanes() {
        let m = MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32);
        assert_eq!(merged_intervals(&m), vec![(0, 128)]);
        let m = MemAccess::scattered(Space::Shared, DataClass::Compute, 4, vec![0, 64, 4]);
        assert_eq!(merged_intervals(&m), vec![(0, 8), (64, 68)]);
    }

    #[test]
    fn same_phase_overlapping_writes_race() {
        let a = sealed(vec![shared_store(0, 32), Instr::bar()]);
        let b = sealed(vec![shared_store(0, 32), Instr::bar()]);
        let d = diags(&kernel_of(vec![a, b]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, LintCode::SharedWriteWrite);
        assert_eq!(d[0].site.warp, Some(0));
        assert_eq!(d[0].site.instr, Some(0));
        assert_eq!(d[0].related.as_ref().unwrap().warp, Some(1));
    }

    #[test]
    fn barrier_separates_phases() {
        // Writer in phase 0, reader in phase 1: ordered, no race.
        let a = sealed(vec![shared_store(0, 32), Instr::bar()]);
        let b = sealed(vec![Instr::bar(), shared_load(0, 32)]);
        assert!(diags(&kernel_of(vec![a, b])).is_empty());
    }

    #[test]
    fn read_write_same_phase_races() {
        let a = sealed(vec![shared_store(0, 32), Instr::bar()]);
        let b = sealed(vec![shared_load(0, 32), Instr::bar()]);
        let d = diags(&kernel_of(vec![a, b]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, LintCode::SharedReadWrite);
        assert!(
            d[0].message.contains("written by warp 0"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn disjoint_tiles_do_not_race() {
        let a = sealed(vec![shared_store(0, 32), Instr::bar()]);
        let b = sealed(vec![shared_store(128, 32), Instr::bar()]);
        assert!(diags(&kernel_of(vec![a, b])).is_empty());
    }

    #[test]
    fn same_warp_never_races_with_itself() {
        let a = sealed(vec![shared_store(0, 32), shared_store(0, 32)]);
        assert!(diags(&kernel_of(vec![a])).is_empty());
    }

    #[test]
    fn reads_alone_do_not_race() {
        let a = sealed(vec![shared_load(0, 32)]);
        let b = sealed(vec![shared_load(0, 32)]);
        assert!(diags(&kernel_of(vec![a, b])).is_empty());
    }

    #[test]
    fn cross_cta_global_writes_warn_once_per_cta() {
        let st = || {
            sealed(vec![Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x1000, 1),
            )])
        };
        let k = KernelTrace::new(
            "k",
            32,
            8,
            0,
            vec![
                CtaTrace::new(vec![st()]),
                CtaTrace::new(vec![st()]),
                CtaTrace::new(vec![st()]),
            ],
        );
        let d = diags(&k);
        assert_eq!(d.len(), 2, "{d:?}"); // CTAs 1 and 2, each once
        assert!(d.iter().all(|x| x.code == LintCode::GlobalWriteOverlap));
        assert!(d
            .iter()
            .all(|x| x.severity == crate::diag::Severity::Warning));
    }

    #[test]
    fn disjoint_cta_outputs_do_not_warn() {
        let st = |base: u64| {
            sealed(vec![Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, base, 32),
            )])
        };
        let k = KernelTrace::new(
            "k",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![st(0)]), CtaTrace::new(vec![st(0x1000)])],
        );
        assert!(diags(&k).is_empty());
    }

    #[test]
    fn allow_entry_suppresses_global_overlap() {
        let st = || {
            sealed(vec![Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 1),
            )])
        };
        let k = KernelTrace::new(
            "reduce_sum",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![st()]), CtaTrace::new(vec![st()])],
        );
        let mut out = Vec::new();
        let cfg = AnalysisConfig::new().allow_in(LintCode::GlobalWriteOverlap, "reduce");
        check_kernel(None, &k, &cfg, &mut out);
        assert!(out.is_empty());
    }
}
