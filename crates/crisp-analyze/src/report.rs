//! The analyzer's output: a deterministic, site-sorted report with text
//! and JSON renderings.

use std::fmt::Write as _;

use crisp_obs::json::{json_str, validate};
use crisp_trace::{TraceError, TraceErrorSite};

use crate::diag::{Diagnostic, Severity};

/// Per-class footprint entry of a [`KernelStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLines {
    /// Data-class label (`"texture"` / `"pipeline"` / `"compute"`).
    pub class: &'static str,
    /// Distinct 128 B lines touched.
    pub lines: usize,
    /// Bytes those lines cover.
    pub bytes: u64,
}

/// Summary statistics for one analyzed kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStats {
    /// Stream id the launch belongs to (`None` for standalone analysis).
    pub stream: Option<u32>,
    /// Kernel name.
    pub name: String,
    /// CTAs in the grid.
    pub ctas: usize,
    /// Warps across all CTAs.
    pub warps: usize,
    /// Dynamic instructions across all warps.
    pub instrs: usize,
    /// Peak live registers over any warp (backward-liveness sweep) — the
    /// scoreboard pressure the kernel actually exerts.
    pub max_live_regs: u32,
    /// Mean over warps of each warp's peak live-register count.
    pub mean_live_regs: f64,
    /// Registers per thread the launch *declared* (occupancy input);
    /// compare against `max_live_regs` to spot over-declaration.
    pub declared_regs: u32,
    /// Global + local memory instructions.
    pub global_accesses: u64,
    /// Shared-memory instructions.
    pub shared_accesses: u64,
    /// Texture fetches.
    pub tex_accesses: u64,
    /// Distinct-line footprint per data class, in `DataClass::ALL` order.
    pub footprint: Vec<ClassLines>,
}

/// Everything one analysis run found, sorted by site then lint code.
///
/// The report is deterministic: analyzing the same bundle with the same
/// configuration yields an identical value — and byte-identical
/// [`text`](Self::text) / [`to_json`](Self::to_json) renderings —
/// regardless of `AnalysisConfig::threads`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, most significant location first.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-kernel statistics in bundle launch order.
    pub stats: Vec<KernelStats>,
}

impl AnalysisReport {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// Whether any finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// The error-severity findings as `crisp-trace` errors, ready to fold
    /// into `SimError::InvalidTrace`.
    pub fn to_trace_errors(&self) -> Vec<TraceError> {
        self.errors().map(Diagnostic::to_trace_error).collect()
    }

    /// Human-readable rendering: every diagnostic with its hint, then a
    /// per-kernel statistics block.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "crisp-analyze: {} kernel{}, {} error{}, {} warning{}",
            self.stats.len(),
            plural(self.stats.len()),
            self.error_count(),
            plural(self.error_count()),
            self.warning_count(),
            plural(self.warning_count()),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "\n{d}");
        }
        if !self.stats.is_empty() {
            out.push_str("\nkernel stats:\n");
            for k in &self.stats {
                let stream = match k.stream {
                    Some(s) => format!("stream{s} "),
                    None => String::new(),
                };
                let fp = k
                    .footprint
                    .iter()
                    .map(|c| format!("{} {}", c.class, c.lines))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "  {stream}'{}': {} ctas, {} warps, {} instrs, live regs \
                     max {} mean {:.2} (declared {}), mem g/s/t {}/{}/{}, \
                     footprint lines: {fp}",
                    k.name,
                    k.ctas,
                    k.warps,
                    k.instrs,
                    k.max_live_regs,
                    k.mean_live_regs,
                    k.declared_regs,
                    k.global_accesses,
                    k.shared_accesses,
                    k.tex_accesses,
                );
            }
        }
        out
    }

    /// JSON rendering (RFC 8259, hand-rolled like the rest of the
    /// dependency-free workspace; `crisp_obs::json::validate` accepts it by
    /// construction — debug builds assert so).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(out, "  \"errors\": {},", self.error_count());
        let _ = writeln!(out, "  \"warnings\": {},", self.warning_count());
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"code\": {}, \"severity\": {}, \"site\": {}, \"related\": {}, \
                 \"message\": {}, \"hint\": {}",
                json_str(d.code.as_str()),
                json_str(d.severity.label()),
                site_json(&d.site),
                d.related.as_ref().map_or("null".to_string(), site_json),
                json_str(&d.message),
                json_str(d.hint),
            );
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"kernels\": [");
        for (i, k) in self.stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"stream\": {}, \"name\": {}, \"ctas\": {}, \"warps\": {}, \
                 \"instrs\": {}, \"max_live_regs\": {}, \"mean_live_regs\": {:.2}, \
                 \"declared_regs\": {}, \"global_accesses\": {}, \
                 \"shared_accesses\": {}, \"tex_accesses\": {}, \"footprint\": [",
                k.stream.map_or("null".to_string(), |s| s.to_string()),
                json_str(&k.name),
                k.ctas,
                k.warps,
                k.instrs,
                k.max_live_regs,
                k.mean_live_regs,
                k.declared_regs,
                k.global_accesses,
                k.shared_accesses,
                k.tex_accesses,
            );
            for (j, c) in k.footprint.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "{{\"class\": {}, \"lines\": {}, \"bytes\": {}}}",
                    json_str(c.class),
                    c.lines,
                    c.bytes
                );
            }
            out.push_str("]}");
        }
        if !self.stats.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        debug_assert!(validate(&out).is_ok(), "emitted invalid JSON");
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn site_json(s: &TraceErrorSite) -> String {
    let opt_num = |v: Option<usize>| v.map_or("null".to_string(), |x| x.to_string());
    format!(
        "{{\"stream\": {}, \"kernel\": {}, \"cta\": {}, \"warp\": {}, \"instr\": {}}}",
        s.stream.map_or("null".to_string(), |id| id.0.to_string()),
        s.kernel.as_deref().map_or("null".to_string(), json_str),
        opt_num(s.cta),
        opt_num(s.warp),
        opt_num(s.instr),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::LintCode;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            diagnostics: vec![Diagnostic {
                code: LintCode::SharedWriteWrite,
                severity: Severity::Error,
                site: TraceErrorSite {
                    stream: Some(crisp_trace::StreamId(0)),
                    kernel: Some("k\"quoted\"".into()),
                    cta: Some(0),
                    warp: Some(0),
                    instr: Some(1),
                },
                related: Some(TraceErrorSite::default()),
                message: "warps 0 and 1 both write".into(),
                hint: LintCode::SharedWriteWrite.hint(),
            }],
            stats: vec![KernelStats {
                stream: Some(0),
                name: "k\"quoted\"".into(),
                ctas: 1,
                warps: 2,
                instrs: 10,
                max_live_regs: 4,
                mean_live_regs: 3.5,
                declared_regs: 16,
                global_accesses: 3,
                shared_accesses: 2,
                tex_accesses: 0,
                footprint: vec![ClassLines {
                    class: "compute",
                    lines: 2,
                    bytes: 256,
                }],
            }],
        }
    }

    #[test]
    fn counts_partition_by_severity() {
        let r = sample();
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 0);
        assert!(r.has_errors());
        assert_eq!(r.to_trace_errors().len(), 1);
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let r = AnalysisReport::default();
        assert!(!r.has_errors());
        assert!(r.text().contains("0 kernels, 0 errors, 0 warnings"));
        validate(&r.to_json()).unwrap();
    }

    #[test]
    fn text_contains_diagnostics_and_stats() {
        let t = sample().text();
        assert!(t.contains("1 kernel, 1 error, 0 warnings"), "{t}");
        assert!(t.contains("race/shared-write-write"), "{t}");
        assert!(t.contains("kernel stats:"), "{t}");
        assert!(t.contains("live regs max 4 mean 3.50"), "{t}");
    }

    #[test]
    fn json_is_valid_even_with_quotes_in_names() {
        let j = sample().to_json();
        validate(&j).unwrap_or_else(|e| panic!("{e}\n{j}"));
        assert!(j.contains("\"errors\": 1"), "{j}");
        assert!(j.contains("race/shared-write-write"), "{j}");
    }
}
