//! Memory-shape lints: coalescing, shared-memory banking, footprints.
//!
//! These reuse the line/sector geometry of `crisp_trace::analysis`
//! (128 B lines, 32 B sectors, 32 shared banks of 4 B words). Both lints
//! are heuristics, not proofs — thresholds live in
//! [`AnalysisConfig`](crate::AnalysisConfig) and findings are warnings:
//!
//! * **Uncoalesced**: a global access is flagged when the sectors it
//!   touches exceed `ideal × uncoalesced_slack`, where `ideal` is the
//!   fewest sectors its distinct bytes could occupy. A wide-but-contiguous
//!   access (vec4 × 32 lanes = 16 sectors) has slack 1.0 and never trips;
//!   a 32-lane gather across 32 lines has slack ≈ 32 and always does.
//!   Texture fetches are exempt — gathers are their job.
//! * **BankConflict**: a shared access is flagged when one bank serves
//!   `bank_conflict_threshold`-or-more distinct words — the serialisation
//!   degree of the access. A broadcast (one word, all lanes) has degree 1
//!   and never trips.

use crisp_trace::{
    ClassFootprint, KernelTrace, MemAccess, Space, StreamId, TraceErrorSite, SECTOR_BYTES,
};

use crate::config::AnalysisConfig;
use crate::diag::{Diagnostic, LintCode};

/// Shared-memory banking geometry: 32 banks, 4 B words (every NVIDIA
/// generation the paper models).
pub const SHARED_BANKS: u64 = 32;
/// Bytes per shared-memory bank word.
pub const BANK_WORD_BYTES: u64 = 4;

/// Memory counters accumulated alongside the shape lints.
#[derive(Debug, Clone, Default)]
pub(crate) struct MemStats {
    /// Global/local memory instructions.
    pub global_accesses: u64,
    /// Shared-memory instructions.
    pub shared_accesses: u64,
    /// Texture fetches.
    pub tex_accesses: u64,
    /// Distinct-line footprint per data class.
    pub footprint: ClassFootprint,
}

/// Serialisation degree of a shared access: the max number of distinct
/// 4 B words any single bank must serve.
pub(crate) fn bank_conflict_degree(mem: &MemAccess) -> usize {
    let mut counts = [0usize; SHARED_BANKS as usize];
    for word in mem.distinct_chunks(BANK_WORD_BYTES) {
        counts[(word % SHARED_BANKS) as usize] += 1;
    }
    counts.iter().copied().max().unwrap_or(0)
}

/// Sector slack of a global access: (sectors touched, fewest sectors its
/// distinct bytes could occupy).
pub(crate) fn sector_slack(mem: &MemAccess) -> (usize, usize) {
    let sectors = mem.distinct_chunks(SECTOR_BYTES).len();
    let distinct_bytes: u64 = crate::race::merged_intervals(mem)
        .iter()
        .map(|(lo, hi)| hi - lo)
        .sum();
    let ideal = distinct_bytes.div_ceil(SECTOR_BYTES).max(1) as usize;
    (sectors, ideal)
}

fn site(
    stream: Option<StreamId>,
    kernel: &str,
    cta: usize,
    warp: usize,
    instr: usize,
) -> TraceErrorSite {
    TraceErrorSite {
        stream,
        kernel: Some(kernel.to_string()),
        cta: Some(cta),
        warp: Some(warp),
        instr: Some(instr),
    }
}

/// Shape-lint every access of `k`, appending diagnostics and returning the
/// kernel's memory counters. Each warp reports at most one diagnostic per
/// lint (anchored at its first offender, with an occurrence count) so a
/// hot loop does not flood the report.
pub(crate) fn check_kernel(
    stream: Option<StreamId>,
    k: &KernelTrace,
    cfg: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) -> MemStats {
    let mut stats = MemStats::default();
    stats.footprint.add_kernel(k);

    for (ci, cta) in k.ctas.iter().enumerate() {
        for (wi, w) in cta.warps.iter().enumerate() {
            // (first offending instr, details, occurrence count) per lint.
            let mut uncoalesced: Option<(usize, usize, usize)> = None; // (instr, sectors, ideal)
            let mut uncoalesced_count = 0usize;
            let mut conflict: Option<(usize, usize)> = None; // (instr, degree)
            let mut conflict_count = 0usize;

            for (ii, instr) in w.iter().enumerate() {
                let Some(mem) = &instr.mem else { continue };
                match mem.space {
                    Space::Global | Space::Local => {
                        stats.global_accesses += 1;
                        if mem.space == Space::Global {
                            let (sectors, ideal) = sector_slack(mem);
                            if sectors >= cfg.uncoalesced_min_sectors
                                && sectors as f64 > ideal as f64 * cfg.uncoalesced_slack
                            {
                                uncoalesced_count += 1;
                                uncoalesced.get_or_insert((ii, sectors, ideal));
                            }
                        }
                    }
                    Space::Shared => {
                        stats.shared_accesses += 1;
                        let degree = bank_conflict_degree(mem);
                        if degree >= cfg.bank_conflict_threshold {
                            conflict_count += 1;
                            conflict.get_or_insert((ii, degree));
                        }
                    }
                    Space::Tex => stats.tex_accesses += 1,
                }
            }

            if let Some((ii, sectors, ideal)) = uncoalesced {
                if let Some(severity) = cfg.severity_for(LintCode::Uncoalesced, Some(&k.name)) {
                    let more = if uncoalesced_count > 1 {
                        format!(" ({} such accesses in this warp)", uncoalesced_count)
                    } else {
                        String::new()
                    };
                    out.push(Diagnostic {
                        code: LintCode::Uncoalesced,
                        severity,
                        site: site(stream, &k.name, ci, wi, ii),
                        related: None,
                        message: format!(
                            "global access touches {sectors} sectors where {ideal} would \
                             cover its bytes — the coalescer issues {sectors} transactions{more}"
                        ),
                        hint: LintCode::Uncoalesced.hint(),
                    });
                }
            }
            if let Some((ii, degree)) = conflict {
                if let Some(severity) = cfg.severity_for(LintCode::BankConflict, Some(&k.name)) {
                    let more = if conflict_count > 1 {
                        format!(" ({} such accesses in this warp)", conflict_count)
                    } else {
                        String::new()
                    };
                    out.push(Diagnostic {
                        code: LintCode::BankConflict,
                        severity,
                        site: site(stream, &k.name, ci, wi, ii),
                        related: None,
                        message: format!("shared access serialises {degree}-way on one bank{more}"),
                        hint: LintCode::BankConflict.hint(),
                    });
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{CtaTrace, DataClass, Instr, Reg, WarpTrace};

    fn sealed(instrs: Vec<Instr>) -> WarpTrace {
        let mut w = WarpTrace::new();
        w.extend(instrs);
        w.seal();
        w
    }

    fn kernel_of(warps: Vec<WarpTrace>) -> KernelTrace {
        let threads = 32 * warps.len() as u32;
        KernelTrace::new("k", threads, 8, 4096, vec![CtaTrace::new(warps)])
    }

    fn run(k: &KernelTrace) -> (Vec<Diagnostic>, MemStats) {
        let mut out = Vec::new();
        let stats = check_kernel(None, k, &AnalysisConfig::new(), &mut out);
        (out, stats)
    }

    #[test]
    fn coalesced_and_wide_accesses_pass() {
        let w = sealed(vec![
            Instr::load(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
            ),
            // vec4 per lane: 16 sectors, but all needed — slack 1.0.
            Instr::load(
                Reg(2),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 16, 0x1000, 32),
            ),
        ]);
        let (d, stats) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(stats.global_accesses, 2);
    }

    #[test]
    fn line_strided_gather_is_flagged_once_with_count() {
        let gather = || {
            let addrs: Vec<u64> = (0..32u64).map(|l| l * 128).collect();
            Instr::load(
                Reg(1),
                MemAccess::scattered(Space::Global, DataClass::Compute, 4, addrs),
            )
        };
        let w = sealed(vec![gather(), gather(), gather()]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, LintCode::Uncoalesced);
        assert_eq!(d[0].site.instr, Some(0));
        assert!(d[0].message.contains("3 such accesses"), "{}", d[0].message);
    }

    #[test]
    fn texture_gathers_are_exempt() {
        let addrs: Vec<u64> = (0..32u64).map(|l| l * 128).collect();
        let w = sealed(vec![Instr::load(
            Reg(1),
            MemAccess::scattered(Space::Tex, DataClass::Texture, 4, addrs),
        )]);
        let (d, stats) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(stats.tex_accesses, 1);
    }

    #[test]
    fn column_stride_shared_access_conflicts() {
        // Word stride 32: every lane lands on bank 0 — 32-way conflict.
        let addrs: Vec<u64> = (0..32u64)
            .map(|l| l * SHARED_BANKS * BANK_WORD_BYTES)
            .collect();
        let w = sealed(vec![Instr::load(
            Reg(1),
            MemAccess::scattered(Space::Shared, DataClass::Compute, 4, addrs),
        )]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, LintCode::BankConflict);
        assert!(d[0].message.contains("32-way"), "{}", d[0].message);
    }

    #[test]
    fn broadcast_and_unit_stride_shared_pass() {
        let w = sealed(vec![
            // Broadcast: one word for all lanes.
            Instr::load(
                Reg(1),
                MemAccess::scattered(Space::Shared, DataClass::Compute, 4, vec![0x40; 32]),
            ),
            // Unit stride: one word per bank.
            Instr::load(
                Reg(2),
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
            ),
        ]);
        let (d, stats) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(stats.shared_accesses, 2);
    }

    #[test]
    fn footprint_tracks_classes() {
        let w = sealed(vec![Instr::load(
            Reg(1),
            MemAccess::coalesced(Space::Global, DataClass::Pipeline, 4, 0, 32),
        )]);
        let (_, stats) = run(&kernel_of(vec![w]));
        assert_eq!(stats.footprint.lines(DataClass::Pipeline), 1);
        assert_eq!(stats.footprint.lines(DataClass::Compute), 0);
    }

    #[test]
    fn small_gathers_stay_below_the_floor() {
        // 4 lanes over 4 lines: terrible slack but tiny — below min_sectors.
        let w = sealed(vec![Instr::load(
            Reg(1),
            MemAccess::scattered(Space::Global, DataClass::Compute, 4, vec![0, 128, 256, 384]),
        )]);
        let (d, _) = run(&kernel_of(vec![w]));
        assert!(d.is_empty(), "{d:?}");
    }
}
