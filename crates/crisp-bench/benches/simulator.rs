//! Criterion micro-benchmarks of the simulator's own building blocks plus
//! an end-to-end frame simulation. These measure *simulator* performance
//! (host-side), complementing the figure binaries that measure *simulated*
//! performance.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use crisp_core::prelude::*;
use crisp_core::{simulate, GRAPHICS_STREAM};
use crisp_trace::TraceBundle;

fn bench_cache(c: &mut Criterion) {
    use crisp_mem::{AccessKind, CacheCore, CacheGeometry, MemReq, ReqToken};
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l2_access_fill_mixed", |b| {
        b.iter_batched(
            || CacheCore::new(CacheGeometry { size_bytes: 256 << 10, assoc: 16 }),
            |mut cache| {
                let w = (0, cache.num_sets());
                let tok = ReqToken { sm: 0, id: 0 };
                for i in 0..10_000u64 {
                    let addr = (i * 97) % (1 << 22);
                    let r = MemReq::read(addr, StreamId(0), DataClass::Compute, tok);
                    if cache.access(&r, AccessKind::Read, w) != crisp_mem::AccessOutcome::Hit {
                        let _ = cache.fill(
                            r.line_addr(),
                            r.sector_in_line(),
                            StreamId(0),
                            DataClass::Compute,
                            false,
                            w,
                        );
                    }
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_raster(c: &mut Criterion) {
    use crisp_gfx::raster::{rasterize, ScreenVertex};
    use crisp_gfx::{Framebuffer, Vec2, Vec3, Vec4};
    let sv = |x: f32, y: f32, u: f32, v: f32| ScreenVertex {
        clip: Vec4::new(0.0, 0.0, 0.0, 1.0),
        sx: x,
        sy: y,
        z: 0.5,
        uv: Vec2::new(u, v),
        normal: Vec3::new(0.0, 0.0, 1.0),
        layer: 0,
    };
    let mut g = c.benchmark_group("raster");
    g.throughput(Throughput::Elements(256 * 256 / 2));
    g.bench_function("triangle_256px", |b| {
        b.iter_batched(
            || Framebuffer::new(256, 256),
            |mut fb| {
                let tri = [
                    sv(0.0, 0.0, 0.0, 0.0),
                    sv(0.0, 256.0, 0.0, 1.0),
                    sv(256.0, 256.0, 1.0, 1.0),
                ];
                let frags = rasterize(&tri, &mut fb);
                assert!(!frags.is_empty());
                (fb, frags)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_batching(c: &mut Criterion) {
    use crisp_gfx::batch::vs_invocation_count;
    // A 100×100 grid's index stream: ~60k indices with heavy reuse.
    let mut idx = Vec::new();
    let w = 100u32;
    for y in 0..w - 1 {
        for x in 0..w - 1 {
            let a = y * w + x;
            idx.extend_from_slice(&[a, a + 1, a + w, a + 1, a + w + 1, a + w]);
        }
    }
    let mut g = c.benchmark_group("batching");
    g.throughput(Throughput::Elements(idx.len() as u64 / 3));
    g.bench_function("grid_100x100_batch96", |b| {
        b.iter(|| vs_invocation_count(std::hint::black_box(&idx), 96))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("sponza_frame_sim_tiny", |b| {
        let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
        b.iter(|| {
            let f = scene.render(96, 54, false, GRAPHICS_STREAM);
            let r = simulate(
                GpuConfig::test_tiny(),
                PartitionSpec::greedy(),
                TraceBundle::from_streams(vec![f.trace]),
            );
            std::hint::black_box(r.cycles)
        })
    });
    g.bench_function("concurrent_pair_sim_tiny", |b| {
        let scene = Scene::build(SceneId::SponzaPbr, 0.2);
        let gpu = GpuConfig::test_tiny();
        b.iter(|| {
            let f = scene.render(96, 54, false, GRAPHICS_STREAM);
            let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
            let spec =
                PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, crisp_core::COMPUTE_STREAM);
            let r = simulate(gpu.clone(), spec, crisp_core::concurrent_bundle(f.trace, compute));
            std::hint::black_box(r.cycles)
        })
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    use crisp_trace::codec;
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    let frame = scene.render(96, 54, false, GRAPHICS_STREAM);
    let bundle = TraceBundle::from_streams(vec![frame.trace]);
    let mut buf = Vec::new();
    codec::write_bundle(&bundle, &mut buf).expect("encode");
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            codec::write_bundle(std::hint::black_box(&bundle), &mut out).expect("encode");
            out
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| codec::read_bundle(&mut std::hint::black_box(&buf).as_slice()).expect("decode"))
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_raster, bench_batching, bench_codec, bench_end_to_end);
criterion_main!(benches);
