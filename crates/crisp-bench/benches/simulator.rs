//! Micro-benchmarks of the simulator's own building blocks plus an
//! end-to-end frame simulation. These measure *simulator* performance
//! (host-side), complementing the figure binaries that measure *simulated*
//! performance.
//!
//! The harness is hand-rolled (`std::time`) so the workspace stays free of
//! external crates and `cargo bench` works without registry access.

use std::time::Instant;

use crisp_core::prelude::*;
use crisp_core::{simulate, GRAPHICS_STREAM};
use crisp_trace::TraceBundle;

/// Run `f` repeatedly for a handful of timed iterations (after one warmup)
/// and report the best per-iteration time plus derived throughput.
fn bench<R>(name: &str, elements: u64, iters: u32, mut f: impl FnMut() -> R) {
    let _ = std::hint::black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let _ = std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    let rate = if best > 0.0 {
        elements as f64 / best
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<28} {:>10.3} ms/iter {:>14.0} elems/s",
        best * 1e3,
        rate
    );
}

fn bench_cache() {
    use crisp_mem::{AccessKind, CacheCore, CacheGeometry, MemReq, ReqToken};
    bench("cache/l2_access_fill_mixed", 10_000, 20, || {
        let mut cache = CacheCore::new(CacheGeometry {
            size_bytes: 256 << 10,
            assoc: 16,
        });
        let w = (0, cache.num_sets());
        let tok = ReqToken { sm: 0, id: 0 };
        for i in 0..10_000u64 {
            let addr = (i * 97) % (1 << 22);
            let r = MemReq::read(addr, StreamId(0), DataClass::Compute, tok);
            if cache.access(&r, AccessKind::Read, w) != crisp_mem::AccessOutcome::Hit {
                let _ = cache.fill(
                    r.line_addr(),
                    r.sector_in_line(),
                    StreamId(0),
                    DataClass::Compute,
                    false,
                    w,
                );
            }
        }
        cache
    });
}

fn bench_raster() {
    use crisp_gfx::raster::{rasterize, ScreenVertex};
    use crisp_gfx::{Framebuffer, Vec2, Vec3, Vec4};
    let sv = |x: f32, y: f32, u: f32, v: f32| ScreenVertex {
        clip: Vec4::new(0.0, 0.0, 0.0, 1.0),
        sx: x,
        sy: y,
        z: 0.5,
        uv: Vec2::new(u, v),
        normal: Vec3::new(0.0, 0.0, 1.0),
        layer: 0,
    };
    bench("raster/triangle_256px", 256 * 256 / 2, 20, || {
        let mut fb = Framebuffer::new(256, 256);
        let tri = [
            sv(0.0, 0.0, 0.0, 0.0),
            sv(0.0, 256.0, 0.0, 1.0),
            sv(256.0, 256.0, 1.0, 1.0),
        ];
        let frags = rasterize(&tri, &mut fb);
        assert!(!frags.is_empty());
        (fb, frags)
    });
}

fn bench_batching() {
    use crisp_gfx::batch::vs_invocation_count;
    // A 100×100 grid's index stream: ~60k indices with heavy reuse.
    let mut idx = Vec::new();
    let w = 100u32;
    for y in 0..w - 1 {
        for x in 0..w - 1 {
            let a = y * w + x;
            idx.extend_from_slice(&[a, a + 1, a + w, a + 1, a + w + 1, a + w]);
        }
    }
    bench(
        "batching/grid_100x100_b96",
        idx.len() as u64 / 3,
        20,
        || vs_invocation_count(std::hint::black_box(&idx), 96),
    );
}

fn bench_end_to_end() {
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    bench("e2e/sponza_frame_sim_tiny", 1, 5, || {
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let r = simulate(
            GpuConfig::test_tiny(),
            PartitionSpec::greedy(),
            TraceBundle::from_streams(vec![f.trace]),
        );
        r.cycles
    });
    let scene = Scene::build(SceneId::SponzaPbr, 0.2);
    let gpu = GpuConfig::test_tiny();
    bench("e2e/concurrent_pair_tiny", 1, 5, || {
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, crisp_core::COMPUTE_STREAM);
        let r = simulate(
            gpu.clone(),
            spec,
            crisp_core::concurrent_bundle(f.trace, compute),
        );
        r.cycles
    });
}

fn bench_codec() {
    use crisp_trace::codec;
    let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
    let frame = scene.render(96, 54, false, GRAPHICS_STREAM);
    let bundle = TraceBundle::from_streams(vec![frame.trace]);
    let mut buf = Vec::new();
    codec::write_bundle(&bundle, &mut buf).expect("encode");
    let bytes = buf.len() as u64;
    bench("codec/encode", bytes, 10, || {
        let mut out = Vec::with_capacity(buf.len());
        codec::write_bundle(std::hint::black_box(&bundle), &mut out).expect("encode");
        out
    });
    bench("codec/decode", bytes, 10, || {
        crisp_trace::TraceInput::reader(std::io::Cursor::new(std::hint::black_box(&buf).clone()))
            .open()
            .and_then(|mut s| s.to_bundle())
            .expect("decode")
    });
}

/// Telemetry overhead: the same concurrent workload with `Telemetry::NONE`
/// versus `Telemetry::FULL` (spans + counters + occupancy + composition).
/// The observability contract is that NONE costs nothing — the recorder is
/// an `Option` that is never constructed — so the NONE time here should
/// match the plain e2e numbers above, and FULL shows the price of tracing.
fn bench_telemetry_overhead() {
    let scene = Scene::build(SceneId::SponzaPbr, 0.2);
    let gpu = GpuConfig::test_tiny();
    let run = |telemetry: Telemetry, counter_interval: u64| {
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, crisp_core::COMPUTE_STREAM);
        let mut b = Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec)
            .telemetry(telemetry)
            .trace(crisp_core::concurrent_bundle(f.trace, compute));
        if counter_interval > 0 {
            b = b.counter_interval(counter_interval);
        }
        b.run_or_panic().cycles
    };
    bench("telemetry/none", 1, 5, || run(Telemetry::NONE, 0));
    bench("telemetry/full", 1, 5, || run(Telemetry::FULL, 500));
}

/// Checkpoint overhead: serialize/deserialize a mid-flight concurrent
/// simulation (full architectural state — warps, caches, MSHRs, stats,
/// telemetry), and fast-forward (functional warming) vs detailed simulation
/// throughput over the same command stream. Element counts are checkpoint
/// bytes and simulated cycles respectively, so the rates read as bytes/s
/// and cycles/s.
fn bench_checkpoint() {
    let scene = Scene::build(SceneId::SponzaPbr, 0.2);
    let gpu = GpuConfig::test_tiny();
    let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, crisp_core::COMPUTE_STREAM);
    let build = || {
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
        Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec.clone())
            .telemetry(Telemetry::FULL)
            .counter_interval(500)
            .trace(crisp_core::concurrent_bundle(f.trace, compute))
            .build()
    };

    let mut sim = build();
    sim.run_until(5_000).unwrap();
    let mut bytes = Vec::new();
    sim.write_checkpoint(&mut bytes).expect("serialize");
    let size = bytes.len() as u64;
    bench("ckpt/write", size, 10, || {
        let mut out = Vec::with_capacity(bytes.len());
        std::hint::black_box(&mut sim)
            .write_checkpoint(&mut out)
            .expect("serialize");
        out
    });
    bench("ckpt/read", size, 10, || {
        GpuSim::read_checkpoint(std::hint::black_box(&bytes).as_slice()).expect("deserialize")
    });

    // Detailed vs fast-forward over the same prefix: detailed charges
    // cycles, warming only touches the memory state. Rate both in the
    // detailed run's cycles so the two rows are directly comparable.
    let cycles = {
        let mut sim = build();
        sim.run_or_panic();
        sim.now()
    };
    bench("ckpt/detailed_prefix", cycles, 5, || {
        let mut sim = build();
        sim.run_or_panic()
    });
    bench("ckpt/fast_forward_prefix", cycles, 5, || {
        let f = scene.render(96, 54, false, GRAPHICS_STREAM);
        let mut g = f.trace;
        g.marker("roi");
        let mut compute = vio(crisp_core::COMPUTE_STREAM, ComputeScale::tiny());
        compute.marker("roi");
        let mut sim = Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec.clone())
            .trace(crisp_core::concurrent_bundle(g, compute))
            .build();
        sim.fast_forward_to_marker("roi")
    });
}

fn main() {
    println!("{:<28} {:>15} {:>17}", "benchmark", "time", "throughput");
    bench_cache();
    bench_raster();
    bench_batching();
    bench_codec();
    bench_end_to_end();
    bench_telemetry_overhead();
    bench_checkpoint();
}
