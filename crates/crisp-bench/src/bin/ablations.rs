//! Ablation sweeps over the simulator's design knobs: vertex batch size,
//! L1 port width, MSHR capacity, scheduler policy, MiG bank granularity.
use crisp_core::experiments as exp;

fn main() {
    let s = crisp_bench::scale();
    crisp_bench::emit(
        "ablation_batch_size",
        &exp::ablation_batch_size(s).to_table(),
    );
    crisp_bench::emit("ablation_l1_ports", &exp::ablation_l1_ports(s).to_table());
    crisp_bench::emit("ablation_mshr", &exp::ablation_mshr(s).to_table());
    let sched = exp::ablation_scheduler(s);
    let sched_table: String = sched
        .iter()
        .map(|(n, c)| format!("{n:<4} {c} cycles\n"))
        .collect();
    crisp_bench::emit("ablation_scheduler", &sched_table);
    let repl: String = exp::ablation_replacement(s)
        .iter()
        .map(|(n, c, hit)| format!("{n:<7} {c} cycles, L2 hit {:.1}%\n", hit * 100.0))
        .collect();
    crisp_bench::emit("ablation_replacement", &repl);
    let mig: String = exp::ablation_mig_banks(s)
        .iter()
        .map(|(b, r)| format!("{b:>2} banks: MPS/MiG makespan ratio {r:.3}\n"))
        .collect();
    crisp_bench::emit("ablation_mig_banks", &mig);
}
