//! Fault-injection harness: every mutation of a known-good simulation must
//! come back as a structured `Err(SimError)` — never a panic, never a hang.
//!
//! Each case starts from a valid trace/config pair and injects exactly one
//! fault: a structural trace mutation (unterminated warp, barrier mismatch,
//! out-of-range register, malformed memory payload, ...), a *semantic*
//! trace defect that passes structural validation but trips the
//! `crisp-analyze` pass (shared-memory race, use-before-def), a
//! configuration inconsistency (partition beyond the SM count,
//! oversubscribed quotas, unwritable checkpoint directory, ...), a runtime
//! wedge that only the forward-progress watchdog can catch, or a corrupt
//! checkpoint file. Every mutation must be caught by at least one layer —
//! none may pass both the validator and the analyzer cleanly. The
//! harness runs every case under `catch_unwind` and fails — with a non-zero
//! exit code — if any case panics, completes successfully, or takes longer
//! than the wall-clock guard.
//!
//! `--quick` runs the runtime cases at a single worker-thread count
//! (CI smoke); the default sweeps 1/2/4 threads.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crisp_sim::{
    GpuConfig, L2Policy, LintLevel, PartitionSpec, ResourceQuota, SimError, Simulation, SmPartition,
};
use crisp_trace::{
    CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamId,
    StreamKind, TraceBundle, WarpTrace, MAX_SRCS,
};

const S0: StreamId = StreamId(0);
const S1: StreamId = StreamId(1);

/// Wall-clock guard: a fault that keeps a case running this long counts as
/// a hang even if it would eventually error out.
const CASE_DEADLINE: Duration = Duration::from_secs(60);

/// A short, well-formed warp.
fn good_warp() -> WarpTrace {
    let mut w = WarpTrace::new();
    w.push(Instr::load(
        Reg(1),
        MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0, 32),
    ));
    w.push(Instr::alu(Op::FpFma, Reg(2), &[Reg(1)]));
    w.seal();
    w
}

/// A well-formed single-stream bundle the config mutations start from.
fn good_bundle() -> TraceBundle {
    let k = KernelTrace::new(
        "baseline",
        64,
        8,
        0,
        vec![CtaTrace::new(vec![good_warp(); 2]); 2],
    );
    let mut s = Stream::new(S0, StreamKind::Compute);
    s.launch(k);
    TraceBundle::from_streams(vec![s])
}

/// Wrap a kernel into a single-stream bundle.
fn bundle_of(k: KernelTrace) -> TraceBundle {
    let mut s = Stream::new(S0, StreamKind::Compute);
    s.launch(k);
    TraceBundle::from_streams(vec![s])
}

fn gpu() -> GpuConfig {
    let mut cfg = GpuConfig::test_tiny();
    cfg.n_sms = 4;
    cfg
}

/// The canonical runtime deadlock: warp 0 parks at a barrier, warp 1's
/// trace ends without `Exit` so it can never arrive.
fn wedged_bundle() -> TraceBundle {
    let mut at_barrier = WarpTrace::new();
    at_barrier.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
    at_barrier.push(Instr::bar());
    at_barrier.seal();
    let mut truncated = WarpTrace::new();
    truncated.push(Instr::alu(Op::IntAlu, Reg(2), &[]));
    bundle_of(KernelTrace::new(
        "wedged",
        64,
        8,
        0,
        vec![CtaTrace::new(vec![at_barrier, truncated])],
    ))
}

/// A scratch path under the system temp dir, unique to this process.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("crisp-chaos-{tag}-{}", std::process::id()))
}

/// `Ok(first line of the diagnostic)` when the fault surfaced as an error;
/// `Err(reason)` when it was missed, panicked, or blew the deadline.
type CaseOutcome = Result<String, String>;

fn first_line(s: &str) -> String {
    s.lines().next().unwrap_or_default().to_string()
}

/// Run one simulation attempt and demand a structured error.
fn expect_sim_err(run: impl FnOnce() -> Result<crisp_sim::SimResult, SimError>) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Err(e)) => Ok(first_line(&e.to_string())),
        Ok(Ok(_)) => Err("completed successfully — the fault went undetected".into()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(format!(
                "panicked instead of returning Err: {}",
                first_line(msg)
            ))
        }
    }
}

struct Case {
    name: &'static str,
    run: Box<dyn FnOnce() -> CaseOutcome>,
}

fn case(name: &'static str, run: impl FnOnce() -> CaseOutcome + 'static) -> Case {
    Case {
        name,
        run: Box::new(run),
    }
}

/// A case that feeds a mutated bundle through the default builder.
fn trace_case(name: &'static str, make: impl FnOnce() -> TraceBundle + 'static) -> Case {
    case(name, move || {
        expect_sim_err(|| Simulation::builder().gpu(gpu()).trace(make()).run())
    })
}

/// A case whose bundle is *structurally valid* — the injected fault is
/// semantic, so only the `.analyze(..)` pass can catch it. Guards that the
/// structural validator really does stay quiet, so the case keeps
/// exercising the analyzer layer and not an accidental validator trip.
fn analyze_case(name: &'static str, make: impl FnOnce() -> TraceBundle + 'static) -> Case {
    case(name, move || {
        let bundle = make();
        if crisp_trace::validate_bundle(&bundle).is_err() {
            return Err("structural validator tripped — not exercising the analyzer".into());
        }
        expect_sim_err(|| {
            Simulation::builder()
                .gpu(gpu())
                .analyze(LintLevel::Errors)
                .trace(bundle)
                .run()
        })
    })
}

fn cases(quick: bool) -> Vec<Case> {
    let mut v: Vec<Case> = Vec::new();

    // --- structural trace mutations (caught by pre-flight validation) ---
    v.push(trace_case("trace/unterminated-warp", || {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
        // no seal(): the trace ends without Exit
        bundle_of(KernelTrace::new(
            "m",
            64,
            8,
            0,
            vec![CtaTrace::new(vec![w, good_warp()])],
        ))
    }));
    v.push(trace_case("trace/barrier-missing-participant", || {
        let mut with_bar = WarpTrace::new();
        with_bar.push(Instr::bar());
        with_bar.seal();
        // sibling warp never executes the barrier
        bundle_of(KernelTrace::new(
            "m",
            64,
            8,
            0,
            vec![CtaTrace::new(vec![with_bar, good_warp()])],
        ))
    }));
    v.push(trace_case("trace/reg-out-of-range", || {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(500), &[]));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/too-many-lanes", || {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess {
                space: Space::Global,
                class: DataClass::Compute,
                width: 4,
                addrs: (0..33).collect(), // a warp has 32 lanes
            },
        ));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/no-active-lanes", || {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess {
                space: Space::Global,
                class: DataClass::Compute,
                width: 4,
                addrs: Vec::new(),
            },
        ));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/zero-width-access", || {
        let mut w = WarpTrace::new();
        w.push(Instr::load(
            Reg(1),
            MemAccess {
                space: Space::Global,
                class: DataClass::Compute,
                width: 0,
                addrs: vec![0; 32],
            },
        ));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/missing-mem-payload", || {
        let mut w = WarpTrace::new();
        w.push(Instr {
            op: Op::Ld(Space::Global),
            dst: Some(Reg(1)),
            srcs: [None; MAX_SRCS],
            mem: None,
        });
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/unexpected-mem-payload", || {
        let mut w = WarpTrace::new();
        w.push(Instr {
            op: Op::IntAlu,
            dst: Some(Reg(1)),
            srcs: [None; MAX_SRCS],
            mem: Some(MemAccess::coalesced(
                Space::Global,
                DataClass::Compute,
                4,
                0,
                1,
            )),
        });
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/code-after-exit", || {
        let mut w = WarpTrace::new();
        w.push(Instr::exit());
        w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
        w.push(Instr::exit());
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));
    v.push(trace_case("trace/overfull-cta", || {
        // block_threads = 32 permits one warp; KernelTrace::new asserts
        // this, so splice the second warp in behind the constructor's back
        let mut k = KernelTrace::new("m", 32, 8, 0, vec![CtaTrace::new(vec![good_warp()])]);
        k.ctas[0].warps.push(good_warp());
        bundle_of(k)
    }));
    v.push(trace_case("trace/empty-cta", || {
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(Vec::new())],
        ))
    }));
    v.push(trace_case("trace/empty-warp", || {
        bundle_of(KernelTrace::new(
            "m",
            64,
            8,
            0,
            vec![CtaTrace::new(vec![WarpTrace::new(), good_warp()])],
        ))
    }));
    v.push(trace_case("trace/empty-marker-label", || {
        let mut bundle = good_bundle();
        bundle.streams[0].marker("");
        bundle
    }));
    v.push(trace_case("trace/duplicate-stream-id", || {
        // from_streams() rejects duplicates eagerly, so splice them in raw
        let mut bundle = TraceBundle::new();
        let mut a = Stream::new(S0, StreamKind::Compute);
        a.launch(KernelTrace::new(
            "a",
            64,
            8,
            0,
            vec![CtaTrace::new(vec![good_warp(); 2])],
        ));
        let mut b = Stream::new(S0, StreamKind::Graphics);
        b.launch(KernelTrace::new(
            "b",
            64,
            8,
            0,
            vec![CtaTrace::new(vec![good_warp(); 2])],
        ));
        bundle.streams.push(a);
        bundle.streams.push(b);
        bundle
    }));

    // --- semantic trace defects (pass the validator; caught by crisp-analyze) ---
    v.push(analyze_case("analyze/shared-write-write-race", || {
        // Two warps blanket the same shared bytes with stores and no
        // barrier between them.
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
        w.push(Instr::store(
            Reg(1),
            MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
        ));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            64,
            8,
            256,
            vec![CtaTrace::new(vec![w.clone(), w])],
        ))
    }));
    v.push(analyze_case("analyze/missing-barrier-race", || {
        // Both warps execute one barrier, so barrier validation balances —
        // but the consumer's load lands *before* its barrier, in the same
        // interval as the producer's store.
        let smem = MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32);
        let mut producer = WarpTrace::new();
        producer.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
        producer.push(Instr::store(Reg(1), smem.clone()));
        producer.push(Instr::bar());
        producer.seal();
        let mut consumer = WarpTrace::new();
        consumer.push(Instr::load(Reg(2), smem));
        consumer.push(Instr::bar());
        consumer.seal();
        bundle_of(KernelTrace::new(
            "m",
            64,
            8,
            256,
            vec![CtaTrace::new(vec![producer, consumer])],
        ))
    }));
    v.push(analyze_case("analyze/use-before-def", || {
        // Reg(5) is consumed but no earlier instruction in the warp
        // defines it. In range for the kernel, so the validator is happy.
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(5)]));
        w.seal();
        bundle_of(KernelTrace::new(
            "m",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![w])],
        ))
    }));

    // --- configuration mutations (caught by pre-flight cross-checks) ---
    v.push(case("config/partition-sm-out-of-range", || {
        expect_sim_err(|| {
            let mut map = HashMap::new();
            map.insert(S0, vec![0usize, 17]);
            Simulation::builder()
                .gpu(gpu())
                .partition(PartitionSpec {
                    sm: SmPartition::InterSm(map),
                    l2: L2Policy::Shared,
                })
                .trace(good_bundle())
                .run()
        })
    }));
    v.push(case("config/partition-empty-sm-list", || {
        expect_sim_err(|| {
            let mut map = HashMap::new();
            map.insert(S0, Vec::new());
            Simulation::builder()
                .gpu(gpu())
                .partition(PartitionSpec {
                    sm: SmPartition::InterSm(map),
                    l2: L2Policy::Shared,
                })
                .trace(good_bundle())
                .run()
        })
    }));
    v.push(case("config/intra-sm-oversubscribed", || {
        expect_sim_err(|| {
            let cfg = gpu();
            let hog = ResourceQuota {
                threads: cfg.sm.max_threads, // two of these cannot coexist
                warps: cfg.sm.max_warps,
                regs: cfg.sm.max_regs,
                smem: cfg.sm.max_smem,
                ctas: 1,
            };
            let mut map = HashMap::new();
            map.insert(S0, hog);
            map.insert(S1, hog);
            Simulation::builder()
                .gpu(cfg)
                .partition(PartitionSpec {
                    sm: SmPartition::IntraSm(map),
                    l2: L2Policy::Shared,
                })
                .trace(good_bundle())
                .run()
        })
    }));
    v.push(case("config/bank-split-needs-two-streams", || {
        expect_sim_err(|| {
            Simulation::builder()
                .gpu(gpu())
                .partition(PartitionSpec {
                    sm: SmPartition::Greedy,
                    l2: L2Policy::BankSplit,
                })
                .trace(good_bundle())
                .run()
        })
    }));
    v.push(case("config/missing-fast-forward-marker", || {
        expect_sim_err(|| {
            Simulation::builder()
                .gpu(gpu())
                .trace(good_bundle())
                .fast_forward_to("roi-that-does-not-exist")
                .run()
        })
    }));
    v.push(case("config/zero-cycle-budget", || {
        expect_sim_err(|| {
            let mut cfg = gpu();
            cfg.max_cycles = 0;
            Simulation::builder().gpu(cfg).trace(good_bundle()).run()
        })
    }));
    v.push(case("config/unplaceable-kernel", || {
        expect_sim_err(|| {
            // 40k registers per thread can never fit on one SM
            let k = KernelTrace::new(
                "hog",
                64,
                40_000,
                0,
                vec![CtaTrace::new(vec![good_warp(); 2])],
            );
            Simulation::builder().gpu(gpu()).trace(bundle_of(k)).run()
        })
    }));
    v.push(case("config/checkpoint-dir-is-a-file", || {
        let dir = scratch("ckpt-file");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let file = dir.join("occupied");
        std::fs::write(&file, b"x").expect("scratch file");
        let out = expect_sim_err(|| {
            Simulation::builder()
                .gpu(gpu())
                .trace(good_bundle())
                .checkpoint_every(100)
                .checkpoint_to(&file)
                .run()
        });
        let _ = std::fs::remove_dir_all(&dir);
        out
    }));

    // --- runtime faults (pre-flight disabled; the watchdog must catch them) ---
    let thread_counts: &[usize] = if quick { &[2] } else { &[1, 2, 4] };
    for &threads in thread_counts {
        v.push(case(
            match threads {
                1 => "runtime/deadlock-1-thread",
                2 => "runtime/deadlock-2-threads",
                _ => "runtime/deadlock-4-threads",
            },
            move || {
                expect_sim_err(|| {
                    Simulation::builder()
                        .gpu(gpu())
                        .threads(threads)
                        .preflight(false)
                        .watchdog(2_000)
                        .trace(wedged_bundle())
                        .run()
                })
            },
        ));
    }
    v.push(case("runtime/cycle-budget-exceeded", || {
        expect_sim_err(|| {
            let mut cfg = gpu();
            cfg.max_cycles = 3_000;
            Simulation::builder()
                .gpu(cfg)
                .preflight(false)
                .watchdog(0) // watchdog off: the budget is the only net
                .trace(wedged_bundle())
                .run()
        })
    }));
    v.push(case("runtime/worker-panic", || {
        expect_sim_err(|| {
            let mut w = WarpTrace::new();
            w.push(Instr::alu(Op::IntAlu, Reg(300), &[])); // past the scoreboard
            w.seal();
            let k = KernelTrace::new("hot", 32, 8, 0, vec![CtaTrace::new(vec![w])]);
            Simulation::builder()
                .gpu(gpu())
                .threads(2)
                .preflight(false)
                .trace(bundle_of(k))
                .run()
        })
    }));

    // --- container index corruption (caught when opening the source) ---
    // Version-2 containers carry a per-CTA offset index; a mutated index
    // must surface as a structured open/pre-flight error, never a panic or
    // a silently wrong simulation.
    fn mutated_container_case(
        name: &'static str,
        mutate: fn(usize, (u64, u64)) -> (u64, u64),
        pad: &'static [u8],
    ) -> Case {
        case(name, move || {
            let mut bytes = Vec::new();
            crisp_trace::codec::write_bundle_mutated(&good_bundle(), &mut bytes, mutate, pad)
                .expect("encode mutated container");
            expect_sim_err(|| {
                Simulation::builder()
                    .gpu(gpu())
                    .trace(crisp_trace::TraceInput::reader(std::io::Cursor::new(bytes)))
                    .run()
            })
        })
    }
    v.push(mutated_container_case(
        "container/index-offset-out-of-bounds",
        |_, (off, len)| (off.wrapping_add(1 << 40), len),
        &[],
    ));
    v.push(mutated_container_case(
        "container/index-overlapping-spans",
        |i, (off, len)| {
            if i == 1 {
                (off.saturating_sub(1), len)
            } else {
                (off, len)
            }
        },
        &[],
    ));
    v.push(mutated_container_case(
        "container/index-payload-size-mismatch",
        |_, span| span,
        b"trailing-junk-the-index-does-not-cover",
    ));

    // --- checkpoint corruption ---
    v.push(case("checkpoint/truncated-file", || {
        let dir = scratch("truncated");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("bad.ckpt");
        std::fs::write(&path, b"CKPT").expect("scratch file"); // magic only, no body
        let out = match catch_unwind(AssertUnwindSafe(|| Simulation::resume(&path))) {
            Ok(Err(e)) => Ok(first_line(&e.to_string())),
            Ok(Ok(_)) => Err("resumed from a truncated checkpoint".into()),
            Err(_) => Err("panicked instead of returning Err".into()),
        };
        let _ = std::fs::remove_dir_all(&dir);
        out
    }));

    v
}

/// Corpus mode: every trace the repo's own frontends produce must pass the
/// pre-flight validator *and* come back free of analyzer errors under the
/// audited corpus allow-list — before and after a codec round-trip. With
/// explicit paths, checks those `.crsp` files instead.
fn run_corpus(paths: &[String]) -> i32 {
    let mut corpus: Vec<(String, TraceBundle)> = Vec::new();
    if paths.is_empty() {
        corpus = crisp_bench::frontend_corpus();
    } else {
        for p in paths {
            let loaded = crisp_trace::TraceInput::from(p.as_str())
                .open()
                .and_then(|mut s| s.to_bundle());
            match loaded {
                Ok(b) => corpus.push((p.clone(), b)),
                Err(e) => {
                    println!("  FAIL {p}: unreadable: {e}");
                    return 1;
                }
            }
        }
    }

    let lint_cfg = crisp_bench::corpus_lint_config();
    let mut failures = 0usize;
    for (name, bundle) in &corpus {
        let instrs: usize = bundle
            .streams
            .iter()
            .flat_map(|s| s.kernels())
            .map(|k| k.instr_count())
            .sum();
        match crisp_trace::validate_bundle(bundle) {
            Ok(()) => println!("  ok   {name:<24} {instrs} instructions, validator clean"),
            Err(errs) => {
                failures += 1;
                println!("  FAIL {name:<24} {} validation errors:", errs.len());
                for e in errs.iter().take(5) {
                    println!("         {e}");
                }
            }
        }
        let report = crisp_analyze::analyze_bundle(bundle, &lint_cfg);
        if report.has_errors() {
            failures += 1;
            println!(
                "  FAIL {name:<24} {} analyzer errors:",
                report.error_count()
            );
            for d in report.errors().take(5) {
                println!("         {d}");
            }
        } else {
            println!(
                "  ok   {name:<24} analyzer clean ({} warnings)",
                report.warning_count()
            );
        }
        // The codec must preserve validity, not just bytes.
        let path = scratch(&format!("corpus-{}", name.replace('/', "_")));
        if let Err(e) = crisp_trace::codec::save(bundle, &path)
            .and_then(|()| crisp_trace::TraceInput::from(path.as_path()).open())
            .and_then(|mut s| s.to_bundle())
            .map_err(|e| e.to_string())
            .and_then(|b| crisp_trace::validate_bundle(&b).map_err(|errs| errs[0].to_string()))
        {
            failures += 1;
            println!("  FAIL {name:<24} codec round-trip: {e}");
        }
        let _ = std::fs::remove_file(&path);
    }
    if failures > 0 {
        println!(
            "corpus: {failures}/{} bundles FAILED validation",
            corpus.len()
        );
        1
    } else {
        println!("corpus: all {} bundles validator-clean", corpus.len());
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--corpus") {
        std::process::exit(run_corpus(&args[1..]));
    }
    let quick = args.iter().any(|a| a == "--quick");

    // Expected panics (the worker-panic case, asserts behind catch_unwind)
    // would spray backtraces over the report; keep the output to ours.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let all = cases(quick);
    let total = all.len();
    println!(
        "== chaos: {total} fault injections{} ==",
        if quick { " (--quick)" } else { "" }
    );

    let mut failures = 0usize;
    for c in all {
        let start = Instant::now();
        let outcome = (c.run)();
        let elapsed = start.elapsed();
        let outcome = match outcome {
            Ok(_) if elapsed > CASE_DEADLINE => Err(format!(
                "errored, but only after {elapsed:.1?} — watchdog window too lax"
            )),
            other => other,
        };
        match outcome {
            Ok(diag) => println!("  ok   {:<38} {diag}", c.name),
            Err(why) => {
                failures += 1;
                println!("  FAIL {:<38} {why}", c.name);
            }
        }
    }

    std::panic::set_hook(default_hook);

    if failures > 0 {
        println!("chaos: {failures}/{total} cases FAILED");
        std::process::exit(1);
    }
    println!("chaos: all {total} cases returned structured errors — no panics, no hangs");
}
