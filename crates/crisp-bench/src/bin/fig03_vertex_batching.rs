//! Figure 3: vertex-shader invocation correlation at batch size 96.
fn main() {
    let r = crisp_core::experiments::fig03_vertex_batching(crisp_bench::scale());
    crisp_bench::emit("fig03_vertex_batching", &r.to_table());
}
