//! Figure 5: the Planets scene rendered by the model (PPM output).
use crisp_core::experiments::render_scene_to_ppm;
use crisp_core::Resolution;
use crisp_scenes::SceneId;

fn main() -> std::io::Result<()> {
    let scale = crisp_bench::scale();
    let lod0 = std::env::args().any(|a| a == "--lod0");
    let path = crisp_bench::out_dir().join(if lod0 {
        "fig05_planets_lod0.ppm"
    } else {
        "fig05_planets.ppm"
    });
    let cov = render_scene_to_ppm(
        SceneId::Planets,
        scale.detail,
        Resolution::Scaled2K,
        lod0,
        &path,
    )?;
    crisp_bench::emit(
        "fig05_render_planets",
        &format!(
            "rendered planets (lod0={lod0}) to {} with {:.1}% coverage\n",
            path.display(),
            cov * 100.0
        ),
    );
    Ok(())
}
