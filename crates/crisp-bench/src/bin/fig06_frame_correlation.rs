//! Figure 6: frame-time correlation against the silicon reference.
fn main() {
    let r = crisp_core::experiments::fig06_frame_correlation(crisp_bench::scale());
    crisp_bench::emit("fig06_frame_correlation", &r.to_table());
}
