//! Figure 7: four texture loads merging to one at mip level 1.
fn main() {
    let r = crisp_core::experiments::fig07_mip_merge();
    crisp_bench::emit("fig07_mip_merge", &r.to_table());
}
