//! Figure 8: Sponza rendered with LoD on and off, with the image
//! difference quantified by PSNR.
use crisp_core::{Resolution, GRAPHICS_STREAM};
use crisp_scenes::{Scene, SceneId};

fn main() -> std::io::Result<()> {
    let scale = crisp_bench::scale();
    let dir = crisp_bench::out_dir();
    let (w, h) = Resolution::Scaled2K.dims();
    let scene = Scene::build(SceneId::SponzaKhronos, scale.detail);
    let on = scene.render(w, h, false, GRAPHICS_STREAM);
    let off = scene.render(w, h, true, GRAPHICS_STREAM);
    let p_on = dir.join("fig08_sponza_lod_on.ppm");
    let p_off = dir.join("fig08_sponza_lod_off.ppm");
    on.framebuffer.write_ppm(&p_on)?;
    off.framebuffer.write_ppm(&p_off)?;
    crisp_bench::emit(
        "fig08_sponza_lod",
        &format!(
            "LoD on  -> {}\nLoD off -> {}\nPSNR between them: {:.1} dB (mip-0 sampling aliases visibly)\n",
            p_on.display(),
            p_off.display(),
            on.framebuffer.psnr(&off.framebuffer),
        ),
    );
    Ok(())
}
