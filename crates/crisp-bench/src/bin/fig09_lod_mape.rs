//! Figure 9: L1 texture-access MAPE with LoD on vs off.
fn main() {
    let r = crisp_core::experiments::fig09_lod_mape(crisp_bench::scale());
    crisp_bench::emit("fig09_lod_mape", &r.to_table());
}
