//! Figure 10: texture cache lines per CTA in one Sponza drawcall.
fn main() {
    let r = crisp_core::experiments::fig10_texlines_histogram(crisp_bench::scale());
    crisp_bench::emit("fig10_texlines_histogram", &r.to_table());
}
