//! Figure 11: L2 composition, PBR (Pistol) vs basic shading (Sponza).
fn main() {
    let r = crisp_core::experiments::fig11_l2_composition(crisp_bench::scale());
    crisp_bench::emit("fig11_l2_composition", &r.to_table());
}
