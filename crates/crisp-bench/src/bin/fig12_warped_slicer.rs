//! Figure 12: warped-slicer vs MPS and EVEN on the Jetson Orin model.
fn main() {
    let r = crisp_core::experiments::fig12_warped_slicer(crisp_bench::scale());
    crisp_bench::emit("fig12_warped_slicer", &r.to_table());
}
