//! Figure 13: occupancy timeline of the dynamic partition (PT + VIO).
fn main() {
    let r = crisp_core::experiments::fig13_occupancy_timeline(crisp_bench::scale());
    crisp_bench::emit("fig13_occupancy_timeline", &r.to_table());
}
