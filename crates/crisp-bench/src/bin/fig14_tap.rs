//! Figure 14: TAP vs MiG vs MPS on the RTX 3070 model.
fn main() {
    let r = crisp_core::experiments::fig14_tap(crisp_bench::scale());
    crisp_bench::emit("fig14_tap", &r.to_table());
}
