//! Figure 15: L2 composition under TAP for SPH + HOLO.
fn main() {
    let r = crisp_core::experiments::fig15_tap_composition(crisp_bench::scale());
    crisp_bench::emit("fig15_tap_composition", &r.to_table());
}
