//! Profile the **simulator itself**: wall-clock phase attribution,
//! allocation accounting, and the throughput numbers the perf-regression
//! gate tracks.
//!
//! Runs the paper-scale concurrent render+compute workload (the same
//! scenario as `thread_scaling`) with `.host_profile(true)` and the
//! counting allocator installed, prints the self-profile report, and
//! writes:
//!
//! * `BENCH_host.json` — the machine-readable trajectory record
//!   (`scripts/bench_check` compares `cycles_per_sec` against the
//!   committed baseline and fails CI on a regression);
//! * `target/experiments/hostprof.txt` — the rendered report;
//! * `target/experiments/hostprof_trace.json` — the dual-clock Chrome
//!   trace (simulated timeline + host self-profile as named Perfetto
//!   processes).
//!
//! The run fails (exit 1) when the per-shard phase attribution covers
//! less than 90% of measured wall-clock — the self-profiler's own
//! accuracy contract.
//!
//! `--quick` (or `CRISP_SCALE=quick`) shrinks the workload for smoke
//! runs; `CRISP_THREADS=n` overrides the worker-thread count.

use crisp_core::experiments::ExpScale;
use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};

#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: crisp_obs::alloc::CountingAlloc = crisp_obs::alloc::CountingAlloc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let s = if quick {
        ExpScale::quick()
    } else {
        crisp_bench::scale()
    };
    let scale_name = if quick || matches!(std::env::var("CRISP_SCALE").as_deref(), Ok("quick")) {
        "quick"
    } else {
        "paper"
    };
    let threads: usize = std::env::var("CRISP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        });

    let gpu = GpuConfig::rtx3070();
    let (w, h) = s.res.dims();
    let frame = Scene::build(SceneId::SponzaPbr, s.detail).render(w, h, false, GRAPHICS_STREAM);
    let trace = concurrent_bundle(frame.trace, holo(COMPUTE_STREAM, s.compute));

    println!(
        "== hostprof: {} ({} SMs), {threads} threads, {scale_name} scale ==",
        gpu.name, gpu.n_sms
    );

    #[cfg(feature = "alloc-profile")]
    crisp_obs::alloc::enable();
    let result = Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::fg_even(
            &gpu,
            GRAPHICS_STREAM,
            COMPUTE_STREAM,
        ))
        .threads(threads)
        .telemetry(Telemetry::NONE)
        .host_profile(true)
        .trace(trace)
        .run_or_panic();
    #[cfg(feature = "alloc-profile")]
    crisp_obs::alloc::disable();

    let prof = result
        .host_profile
        .as_ref()
        .expect("built with .host_profile(true)");
    crisp_bench::emit("hostprof", &result.host_report());
    let trace_path = crisp_bench::out_dir().join("hostprof_trace.json");
    std::fs::write(&trace_path, result.chrome_trace_json_with_host())
        .expect("write dual-clock trace");
    println!("(dual-clock trace saved to {})", trace_path.display());

    let phases: String = crisp_obs::HostPhase::ALL
        .iter()
        .map(|&p| format!("\"{}\":{}", p.name(), prof.driver.get(p)))
        .collect::<Vec<_>>()
        .join(",");
    let (alloc_count, alloc_bytes) = prof
        .alloc
        .as_ref()
        .map_or((0, 0), |a| (a.total_count, a.total_bytes));
    let json = format!(
        "{{\n\"version\": 1,\n\"scale\": \"{scale_name}\",\n\"threads\": {threads},\n\
         \"cycles\": {cycles},\n\"instrs\": {instrs},\n\"wall_s\": {wall:.4},\n\
         \"cycles_per_sec\": {cps:.1},\n\"instrs_per_sec\": {ips:.1},\n\
         \"coverage\": {cov:.4},\n\"shard_coverage\": {scov:.4},\n\
         \"shard_imbalance\": {imb:.4},\n\"allocs_per_cycle\": {apc:.4},\n\
         \"alloc_total\": {alloc_count},\n\"alloc_bytes\": {alloc_bytes},\n\
         \"heartbeats\": {hb},\n\"driver_phase_ns\": {{{phases}}}\n}}\n",
        cycles = prof.cycles,
        instrs = prof.instrs,
        wall = prof.wall_secs(),
        cps = prof.cycles_per_sec(),
        ips = prof.instrs_per_sec(),
        cov = prof.coverage(),
        scov = prof.shard_coverage(),
        imb = prof.shard_imbalance(),
        apc = prof.allocs_per_cycle(),
        hb = prof.heartbeats.len(),
    );
    crisp_obs::json::validate(&json).expect("BENCH_host.json is valid JSON");
    std::fs::write("BENCH_host.json", &json).expect("write BENCH_host.json");
    println!("(saved to BENCH_host.json)");

    // Accuracy contract: the phase attribution must account for ≥90% of
    // the wall-clock each shard worker (or the serial driver) observed.
    let cov = prof.shard_coverage();
    if cov < 0.90 {
        eprintln!(
            "hostprof: FAIL — phase attribution covers only {:.1}% of \
             measured wall-clock (need ≥90%)",
            cov * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "phase attribution covers {:.1}% of wall-clock across shards",
        cov * 100.0
    );
}
