//! Static-analysis sweep: run `crisp-analyze` over trace bundles and emit
//! text + JSON reports.
//!
//! ```text
//! lint --corpus [--deny errors|warnings] [--allow CODE[@KERNEL]]
//!      [--threads N] [--out DIR]
//! lint PATH.crsp [PATH.crsp ...]
//! ```
//!
//! With `--corpus` the harness analyzes every trace the repo's own
//! frontends produce (the same bundles `chaos --corpus` validates) under
//! the audited allow-list from [`crisp_bench::corpus_lint_config`]; with
//! explicit paths it opens `.crsp` files as streaming sources — the
//! analyzer demand-pages one kernel at a time, so linting a container much
//! larger than RAM works — and starts from an empty config.
//! `--allow race/global-write-overlap@my_kernel` appends further allow
//! entries; `--deny errors` (the CI `lint-smoke` mode) exits non-zero when
//! any error-severity diagnostic survives, `--deny warnings` when anything
//! at all does.
//!
//! Reports land in `--out` (default `target/experiments/lint`) as
//! `report.txt` (the rendered diagnostics) and `report.json` (one object
//! per bundle, schema-stable for dashboards).

use std::path::PathBuf;
use std::process::ExitCode;

use crisp_analyze::{analyze_source, AnalysisConfig, AnalysisReport, LintCode};
use crisp_bench::{corpus_lint_config, frontend_corpus};
use crisp_obs::json;
use crisp_trace::{TraceInput, TraceSource};

struct Args {
    corpus: bool,
    paths: Vec<String>,
    deny: Option<String>,
    allows: Vec<(LintCode, Option<String>)>,
    threads: usize,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint (--corpus | PATH.crsp ...) [--deny errors|warnings] \
         [--allow CODE[@KERNEL]] [--threads N] [--out DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        corpus: false,
        paths: Vec::new(),
        deny: None,
        allows: Vec::new(),
        threads: 1,
        out: PathBuf::from("target/experiments/lint"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => args.corpus = true,
            "--deny" => match it.next().as_deref() {
                Some(level @ ("errors" | "warnings")) => args.deny = Some(level.to_string()),
                _ => usage(),
            },
            "--allow" => {
                let Some(spec) = it.next() else { usage() };
                let (code, scope) = match spec.split_once('@') {
                    Some((c, k)) => (c, Some(k.to_string())),
                    None => (spec.as_str(), None),
                };
                match LintCode::parse(code) {
                    Some(c) => args.allows.push((c, scope)),
                    None => {
                        eprintln!("lint: unknown lint code {code:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => args.threads = n,
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(dir) => args.out = PathBuf::from(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') => args.paths.push(p.to_string()),
            _ => usage(),
        }
    }
    if args.corpus != args.paths.is_empty() {
        // exactly one input source: the corpus, or explicit paths
        usage();
    }
    args
}

/// Wrap the per-bundle reports into one JSON document.
fn combined_json(reports: &[(String, AnalysisReport)]) -> String {
    let mut out = String::from("{\"version\":1,\"bundles\":[");
    for (i, (name, report)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        out.push_str(&json::json_str(name));
        out.push_str(",\"report\":");
        out.push_str(&report.to_json());
        out.push('}');
    }
    let errors: usize = reports.iter().map(|(_, r)| r.error_count()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warning_count()).sum();
    out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
    debug_assert!(json::validate(&out).is_ok());
    out
}

fn main() -> ExitCode {
    let args = parse_args();

    // Explicit `.crsp` paths open as streaming sources: the analyzer pages
    // kernel-by-kernel through the same demand-paged window the simulator
    // uses, so linting a huge container stays within bounded memory.
    let (mut sources, mut cfg): (Vec<(String, TraceSource)>, AnalysisConfig) = if args.corpus {
        let srcs = frontend_corpus()
            .into_iter()
            .map(|(name, b)| (name, TraceSource::from_bundle(b)))
            .collect();
        (srcs, corpus_lint_config())
    } else {
        let mut v = Vec::new();
        for p in &args.paths {
            match TraceInput::from(p.as_str()).open() {
                Ok(s) => v.push((p.clone(), s)),
                Err(e) => {
                    eprintln!("lint: {p}: unreadable: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (v, AnalysisConfig::new())
    };
    cfg = cfg.threads(args.threads);
    for (code, scope) in args.allows {
        cfg = match scope {
            Some(k) => cfg.allow_in(code, k),
            None => cfg.allow(code),
        };
    }

    let mut reports: Vec<(String, AnalysisReport)> = Vec::new();
    let mut text = String::new();
    for (name, src) in &mut sources {
        let report = match analyze_source(src, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("lint: {name}: read failed mid-stream: {e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "  {}  {name:<24} {} errors, {} warnings",
            if report.has_errors() { "FAIL" } else { "ok  " },
            report.error_count(),
            report.warning_count(),
        );
        text.push_str(&format!("== {name} ==\n{}\n", report.text()));
        reports.push((name.clone(), report));
    }

    let errors: usize = reports.iter().map(|(_, r)| r.error_count()).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.warning_count()).sum();
    println!(
        "lint: {} bundles, {errors} errors, {warnings} warnings",
        reports.len()
    );
    // Keep stdout readable on badly broken corpora; report.txt has it all.
    const MAX_SHOWN: usize = 40;
    let mut shown = 0usize;
    'outer: for (name, report) in &reports {
        for d in &report.diagnostics {
            if shown == MAX_SHOWN {
                let total: usize = reports.iter().map(|(_, r)| r.diagnostics.len()).sum();
                println!("... and {} more (see report.txt)", total - shown);
                break 'outer;
            }
            println!("[{name}] {d}");
            shown += 1;
        }
    }

    std::fs::create_dir_all(&args.out).expect("create lint output dir");
    let txt_path = args.out.join("report.txt");
    let json_path = args.out.join("report.json");
    std::fs::write(&txt_path, &text).expect("write report.txt");
    std::fs::write(&json_path, combined_json(&reports)).expect("write report.json");
    println!(
        "(saved to {} and {})",
        txt_path.display(),
        json_path.display()
    );

    let deny_hit = match args.deny.as_deref() {
        Some("errors") => errors > 0,
        Some("warnings") => errors + warnings > 0,
        _ => false,
    };
    if deny_hit {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
