//! End-to-end profiling demo: run a concurrent render+compute workload
//! with full telemetry and export the observability artifacts — a Chrome
//! Trace Event file (load in Perfetto / `chrome://tracing`), counter and
//! metric CSVs, and the human-readable profile report.
//!
//! Doubles as a determinism check for the exporters: the trace produced
//! at 1 worker thread and at 4 worker threads must be byte-identical,
//! and the emitted JSON must pass the bundled RFC 8259 validator.
//!
//! `CRISP_SCALE=quick` shrinks the workload for CI.

use crisp_bench::{out_dir, scale};
use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_sim::SimResult;

fn bundle(detail: f32, w: u32, h: u32, compute: ComputeScale) -> TraceBundle {
    let frame = Scene::build(SceneId::SponzaKhronos, detail).render(w, h, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, compute))
}

fn run(gpu: &GpuConfig, trace: TraceBundle, threads: usize) -> SimResult {
    Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::fg_even(gpu, GRAPHICS_STREAM, COMPUTE_STREAM))
        .threads(threads)
        .telemetry(Telemetry::FULL)
        .counter_interval(500)
        .trace(trace)
        .run_or_panic()
}

fn main() {
    let s = scale();
    let (w, h) = s.res.dims();
    let mut gpu = GpuConfig::test_tiny();
    gpu.n_sms = 6;

    println!("== profile: concurrent render+compute with full telemetry ==");
    let serial = run(&gpu, bundle(s.detail, w, h, s.compute), 1);
    let parallel = run(&gpu, bundle(s.detail, w, h, s.compute), 4);

    let trace_json = serial.chrome_trace_json();
    assert_eq!(
        trace_json,
        parallel.chrome_trace_json(),
        "trace export must be byte-identical at 1 and 4 worker threads"
    );
    assert_eq!(
        serial.counters_csv(),
        parallel.counters_csv(),
        "counter export must be byte-identical at 1 and 4 worker threads"
    );
    crisp_sim::obs::json::validate(&trace_json).expect("exported trace is valid JSON");
    assert!(
        !serial.timeline.is_empty(),
        "full telemetry must record spans"
    );
    println!(
        "determinism: 1-thread and 4-thread exports byte-identical ({} spans, {} bytes of JSON)",
        serial.timeline.span_count(),
        trace_json.len()
    );

    let dir = out_dir().join("profile");
    serial.write_profile(&dir).expect("write profile artifacts");
    println!(
        "(saved trace.json / counters.csv / metrics.csv / profile.txt to {})",
        dir.display()
    );
    println!();
    print!("{}", serial.profile_report());
}
