//! Regenerate every table and figure in one go.
use crisp_core::experiments as exp;
use crisp_core::Resolution;
use crisp_scenes::SceneId;

fn main() -> std::io::Result<()> {
    let s = crisp_bench::scale();
    crisp_bench::emit("table02_configs", &exp::table02_configs().to_table());
    crisp_bench::emit(
        "fig03_vertex_batching",
        &exp::fig03_vertex_batching(s).to_table(),
    );
    let dir = crisp_bench::out_dir();
    let cov = exp::render_scene_to_ppm(
        SceneId::Planets,
        s.detail,
        Resolution::Scaled2K,
        false,
        dir.join("fig05_planets.ppm"),
    )?;
    println!("fig05: planets rendered, coverage {:.1}%", cov * 100.0);
    crisp_bench::emit(
        "fig06_frame_correlation",
        &exp::fig06_frame_correlation(s).to_table(),
    );
    crisp_bench::emit("fig07_mip_merge", &exp::fig07_mip_merge().to_table());
    let _ = exp::render_scene_to_ppm(
        SceneId::SponzaKhronos,
        s.detail,
        Resolution::Scaled2K,
        false,
        dir.join("fig08_sponza_lod_on.ppm"),
    )?;
    let _ = exp::render_scene_to_ppm(
        SceneId::SponzaKhronos,
        s.detail,
        Resolution::Scaled2K,
        true,
        dir.join("fig08_sponza_lod_off.ppm"),
    )?;
    crisp_bench::emit("fig09_lod_mape", &exp::fig09_lod_mape(s).to_table());
    crisp_bench::emit(
        "fig10_texlines_histogram",
        &exp::fig10_texlines_histogram(s).to_table(),
    );
    crisp_bench::emit(
        "fig11_l2_composition",
        &exp::fig11_l2_composition(s).to_table(),
    );
    crisp_bench::emit(
        "fig12_warped_slicer",
        &exp::fig12_warped_slicer(s).to_table(),
    );
    crisp_bench::emit(
        "fig13_occupancy_timeline",
        &exp::fig13_occupancy_timeline(s).to_table(),
    );
    crisp_bench::emit("fig14_tap", &exp::fig14_tap(s).to_table());
    crisp_bench::emit(
        "fig15_tap_composition",
        &exp::fig15_tap_composition(s).to_table(),
    );
    crisp_bench::emit(
        "ablation_batch_size",
        &exp::ablation_batch_size(s).to_table(),
    );
    crisp_bench::emit("ablation_l1_ports", &exp::ablation_l1_ports(s).to_table());
    crisp_bench::emit("ablation_mshr", &exp::ablation_mshr(s).to_table());
    Ok(())
}
