//! ROI sampling: fast-forward vs detailed simulation of a concurrent
//! render+compute scene.
//!
//! Long traces — many frames of steady-state rendering plus a compute
//! pipeline — rarely need cycle-accurate simulation of every frame. This
//! binary demonstrates the `crisp-ckpt` sampling flow: functionally
//! fast-forward over the first `reps` frames (advancing trace cursors and
//! warming L1/L2/DRAM state, zero cycles charged), then simulate only the
//! region of interest in detail. It reports:
//!
//! * wall-clock speedup of fast-forwarding the skipped region vs simulating
//!   it in detail (the headline win — expected well above 5×), and
//! * the per-stream ROI IPC error of the sampled run vs the same region
//!   inside the full detailed run (the accuracy cost of sampling). Each
//!   stream is measured over its own marker→finish window so the error is
//!   insensitive to exactly when each stream crosses into its ROI.
//!
//! `CRISP_SCALE=quick` shrinks the workload.

use std::time::Instant;

use crisp_core::prelude::*;
use crisp_core::{COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_sim::obs::Track;

const ROI_MARKER: &str = "roi";

/// `stream`'s ROI window in `r`: its own marker (or simulation start when
/// absent, i.e. the sampled run) to the cycle it retired its last command.
fn roi_window(r: &SimResult, stream: StreamId) -> (u64, u64) {
    let marker = r
        .timeline
        .instants()
        .iter()
        .find(|i| i.name == ROI_MARKER && i.track == Track::Stream(stream.0))
        .map_or(0, |i| i.at);
    (marker, r.per_stream[&stream].stats.finish_cycle)
}

fn roi_ipc(r: &SimResult, stream: StreamId, roi_instr: u64) -> f64 {
    let (from, to) = roi_window(r, stream);
    roi_instr as f64 / (to.saturating_sub(from)).max(1) as f64
}

fn main() {
    let s = crisp_bench::scale();
    let (w, h) = s.res.dims();
    let gpu = GpuConfig::test_tiny();
    let reps = 4usize;
    let scene = Scene::build(SceneId::SponzaPbr, s.detail);

    let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);

    // Calibrate how many VIO chains take about as long as one rendered
    // frame, so both streams stay busy across the whole trace and the
    // sampled ROI sees the full run's concurrency mix. First estimate from
    // isolated runs, then refine with one concurrent probe (the partition
    // and interference shift both streams' throughput).
    let frame_cycles = {
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        Simulation::builder()
            .gpu(gpu.clone())
            .trace(TraceBundle::from_streams(vec![f.trace]))
            .run_or_panic()
            .cycles
    };
    let chain_cycles = Simulation::builder()
        .gpu(gpu.clone())
        .trace(TraceBundle::from_streams(vec![vio(
            COMPUTE_STREAM,
            s.compute,
        )]))
        .run_or_panic()
        .cycles;
    let mut chains_per_frame = (frame_cycles / chain_cycles.max(1)).max(1) as usize;
    {
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        let mut probe = Stream::new(COMPUTE_STREAM, StreamKind::Compute);
        for _ in 0..chains_per_frame {
            probe
                .commands
                .extend(vio(COMPUTE_STREAM, s.compute).commands);
        }
        let r = Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec.clone())
            .trace(TraceBundle::from_streams(vec![f.trace, probe]))
            .run_or_panic();
        let g_finish = r.per_stream[&GRAPHICS_STREAM].stats.finish_cycle;
        let c_finish = r.per_stream[&COMPUTE_STREAM].stats.finish_cycle.max(1);
        let scaled = chains_per_frame as f64 * g_finish as f64 / c_finish as f64;
        chains_per_frame = (scaled.round() as usize).max(1);
    }

    // Graphics: `reps` warmup frames, then the ROI frame. Frame-to-frame
    // reuse is what makes warming matter: the ROI starts with hot caches.
    let mut g = Stream::new(GRAPHICS_STREAM, StreamKind::Graphics);
    let mut warmup_instr = 0u64;
    for _ in 0..reps {
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        warmup_instr += f.trace.instr_count() as u64;
        g.commands.extend(f.trace.commands);
    }
    g.marker(ROI_MARKER);
    let roi_frame = scene.render(w, h, false, GRAPHICS_STREAM).trace;
    let g_roi_instr = roi_frame.instr_count() as u64;
    g.commands.extend(roi_frame.commands);

    // Compute: a matched span of warmup VIO chains, then one frame's worth
    // in the ROI.
    let mut c = Stream::new(COMPUTE_STREAM, StreamKind::Compute);
    for _ in 0..reps * chains_per_frame {
        let chain = vio(COMPUTE_STREAM, s.compute);
        warmup_instr += chain.instr_count() as u64;
        c.commands.extend(chain.commands);
    }
    c.marker(ROI_MARKER);
    let mut c_roi_instr = 0u64;
    for _ in 0..chains_per_frame {
        let chain = vio(COMPUTE_STREAM, s.compute);
        c_roi_instr += chain.instr_count() as u64;
        c.commands.extend(chain.commands);
    }

    let bundle = TraceBundle::from_streams(vec![g, c]);
    let build = |trace: TraceBundle| {
        Simulation::builder()
            .gpu(gpu.clone())
            .partition(spec.clone())
            .telemetry(Telemetry::TIMELINE)
            .trace(trace)
            .build()
    };

    // 1. Reference: simulate the skipped region in detail up to the marker
    //    barrier (all streams aligned, machine drained — the same phasing
    //    fast-forward produces), then the ROI in detail.
    let mut sim = build(bundle.clone());
    let t = Instant::now();
    let skipped_cycles = sim
        .run_to_marker(ROI_MARKER)
        .expect("detailed run to marker");
    let t_detail_skip = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let full = sim.run_or_panic();
    let t_full = t_detail_skip + t.elapsed().as_secs_f64();
    let ipc_g_full = roi_ipc(&full, GRAPHICS_STREAM, g_roi_instr);
    let ipc_c_full = roi_ipc(&full, COMPUTE_STREAM, c_roi_instr);

    // 2. Fast-forward the skipped region, simulate the ROI in detail.
    let mut ff = build(bundle);
    let t = Instant::now();
    let skipped_cmds = ff
        .fast_forward_to_marker(ROI_MARKER)
        .expect("fast-forward over an in-memory bundle");
    let t_ff_skip = t.elapsed().as_secs_f64().max(1e-9);
    let t = Instant::now();
    let roi = ff.run_or_panic();
    let t_roi = t.elapsed().as_secs_f64();
    // The sampled run issues only ROI instructions, so the per-stream
    // counters are the ROI's own.
    let ipc_g_ff = roi_ipc(
        &roi,
        GRAPHICS_STREAM,
        roi.per_stream[&GRAPHICS_STREAM].stats.instructions,
    );
    let ipc_c_ff = roi_ipc(
        &roi,
        COMPUTE_STREAM,
        roi.per_stream[&COMPUTE_STREAM].stats.instructions,
    );

    let speedup_skip = t_detail_skip / t_ff_skip;
    let speedup_total = t_full / (t_ff_skip + t_roi);
    let err = |sampled: f64, full: f64| (sampled - full).abs() / full * 100.0;
    let err_g = err(ipc_g_ff, ipc_g_full);
    let err_c = err(ipc_c_ff, ipc_c_full);
    let ipc_err = (err_g * g_roi_instr as f64 + err_c * c_roi_instr as f64)
        / (g_roi_instr + c_roi_instr).max(1) as f64;

    let mut table = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(table, "{:<34} {:>14}", "metric", "value");
    let _ = writeln!(table, "{:<34} {:>14}", "skipped commands", skipped_cmds);
    let _ = writeln!(table, "{:<34} {:>14}", "skipped instructions", warmup_instr);
    let _ = writeln!(
        table,
        "{:<34} {:>14}",
        "skipped cycles (detailed)", skipped_cycles
    );
    let _ = writeln!(
        table,
        "{:<34} {:>13.2}s",
        "detailed sim of skipped region", t_detail_skip
    );
    let _ = writeln!(
        table,
        "{:<34} {:>13.2}s",
        "fast-forward of skipped region", t_ff_skip
    );
    let _ = writeln!(
        table,
        "{:<34} {:>13.1}x",
        "speedup on skipped region", speedup_skip
    );
    let _ = writeln!(table, "{:<34} {:>13.2}s", "full detailed run", t_full);
    let _ = writeln!(
        table,
        "{:<34} {:>13.2}s",
        "fast-forward + detailed ROI",
        t_ff_skip + t_roi
    );
    let _ = writeln!(
        table,
        "{:<34} {:>13.1}x",
        "end-to-end speedup", speedup_total
    );
    let _ = writeln!(
        table,
        "{:<34} {:>14.3}",
        "graphics ROI IPC (detailed)", ipc_g_full
    );
    let _ = writeln!(
        table,
        "{:<34} {:>14.3}",
        "graphics ROI IPC (sampled)", ipc_g_ff
    );
    let _ = writeln!(
        table,
        "{:<34} {:>14.3}",
        "compute ROI IPC (detailed)", ipc_c_full
    );
    let _ = writeln!(
        table,
        "{:<34} {:>14.3}",
        "compute ROI IPC (sampled)", ipc_c_ff
    );
    let _ = writeln!(
        table,
        "{:<34} {:>13.1}%",
        "ROI IPC error (instr-weighted)", ipc_err
    );
    crisp_bench::emit("sample_roi", &table);

    assert!(
        speedup_skip >= 5.0,
        "fast-forward must beat detailed simulation of the skipped region \
         by at least 5x, got {speedup_skip:.1}x"
    );
}
