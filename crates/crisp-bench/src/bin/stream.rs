//! Streaming-vs-materialized trace input: the memory/throughput trade the
//! `TraceSource` demand-paging redesign buys, measured end to end.
//!
//! Runs the same concurrent render+compute workload twice — once from a
//! fully materialized in-memory bundle, once streamed from a version-2
//! CRSP container on disk — and checks the streaming contract:
//!
//! 1. the telemetry exports are **byte-identical** across backings, and
//! 2. the peak resident trace window stays at or below **50%** of the
//!    materialized whole-bundle footprint (it is typically far below).
//!
//! Either check failing exits non-zero, which is what the CI
//! `stream-smoke` job runs. Results land in
//! `target/experiments/stream.txt` and `BENCH_stream.json`.

use std::time::Instant;

use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_trace::{codec, cta_resident_cost, TraceBundle};

fn workload() -> TraceBundle {
    let scale = crisp_bench::scale();
    let (w, h) = scale.res.dims();
    let frame =
        Scene::build(SceneId::SponzaKhronos, scale.detail).render(w, h, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, vio(COMPUTE_STREAM, scale.compute))
}

fn simulate(trace: impl Into<crisp_sim::TraceInput>) -> (SimResult, f64) {
    let t0 = Instant::now();
    let r = Simulation::builder()
        .gpu(GpuConfig::test_tiny())
        .partition(PartitionSpec::greedy())
        .telemetry(Telemetry::FULL)
        .trace(trace)
        .run_or_panic();
    (r, t0.elapsed().as_secs_f64())
}

fn main() {
    let bundle = workload();
    // The materialized baseline: the deterministic in-memory footprint of
    // holding every CTA at once, in the same units as the paging counters.
    let baseline: u64 = bundle
        .streams
        .iter()
        .flat_map(|s| s.kernels())
        .flat_map(|k| k.ctas.iter())
        .map(cta_resident_cost)
        .sum();
    let n_ctas: usize = bundle
        .streams
        .iter()
        .flat_map(|s| s.kernels())
        .map(|k| k.grid())
        .sum();

    let path = crisp_bench::out_dir().join("stream_workload.crsp");
    codec::save(&bundle, &path).expect("save container");
    let container = std::fs::metadata(&path).expect("container metadata").len();

    let (mat, mat_s) = simulate(bundle);
    let (strm, strm_s) = simulate(path.as_path());
    let _ = std::fs::remove_file(&path);

    // Contract 1: byte-identical exports across backings.
    let identical = mat.metrics.to_text() == strm.metrics.to_text()
        && mat.chrome_trace_json() == strm.chrome_trace_json()
        && mat.counters_csv() == strm.counters_csv()
        && mat.cycles == strm.cycles
        && mat.trace == strm.trace;
    // Contract 2: the live window undercuts half the whole-bundle footprint.
    let peak = strm.trace.peak_resident_bytes;
    let ratio = peak as f64 / baseline.max(1) as f64;

    let row = |name: &str, r: &SimResult, secs: f64| {
        vec![
            name.to_string(),
            r.cycles.to_string(),
            format!("{:.0}", r.cycles as f64 / secs / 1000.0),
            (baseline / 1024).to_string(),
            (r.trace.peak_resident_bytes / 1024).to_string(),
            (r.trace.bytes_decoded / 1024).to_string(),
            r.trace.ctas_decoded.to_string(),
        ]
    };
    let table = crisp_core::report::table(
        &[
            "backing",
            "cycles",
            "kcycles/s",
            "bundle KiB",
            "peak window KiB",
            "decoded KiB",
            "CTA fetches",
        ],
        &[
            row("materialized", &mat, mat_s),
            row("streaming", &strm, strm_s),
        ],
    );
    crisp_bench::emit("stream", &table);
    println!(
        "peak window = {:.1}% of the materialized footprint ({} CTAs, container {} KiB); \
         exports byte-identical: {identical}",
        ratio * 100.0,
        n_ctas,
        container / 1024,
    );

    let json = format!(
        "{{\"version\":1,\"scale\":{scale:?},\"workload\":{{\"ctas\":{n_ctas},\
         \"container_bytes\":{container},\"materialized_resident_bytes\":{baseline}}},\
         \"materialized\":{{\"cycles\":{mc},\"wall_s\":{ms:.4},\"peak_resident_bytes\":{mp},\
         \"bytes_decoded\":{md}}},\
         \"streaming\":{{\"cycles\":{sc},\"wall_s\":{ss:.4},\"peak_resident_bytes\":{sp},\
         \"bytes_decoded\":{sd}}},\
         \"peak_over_materialized\":{ratio:.4},\"exports_byte_identical\":{identical}}}\n",
        scale = if matches!(std::env::var("CRISP_SCALE").as_deref(), Ok("quick")) {
            "quick"
        } else {
            "paper"
        },
        mc = mat.cycles,
        ms = mat_s,
        mp = mat.trace.peak_resident_bytes,
        md = mat.trace.bytes_decoded,
        sc = strm.cycles,
        ss = strm_s,
        sp = strm.trace.peak_resident_bytes,
        sd = strm.trace.bytes_decoded,
    );
    debug_assert!(crisp_obs::json::validate(&json).is_ok());
    std::fs::write("BENCH_stream.json", &json).expect("write BENCH_stream.json");
    println!("(saved to BENCH_stream.json)");

    if !identical {
        eprintln!("stream: FAIL — exports differ between backings");
        std::process::exit(1);
    }
    if ratio > 0.5 {
        eprintln!(
            "stream: FAIL — peak window {peak} exceeds 50% of the materialized \
             footprint {baseline}"
        );
        std::process::exit(1);
    }
}
