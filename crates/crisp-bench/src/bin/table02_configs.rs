//! Table II: the simulated GPU configurations.
fn main() {
    let r = crisp_core::experiments::table02_configs();
    crisp_bench::emit("table02_configs", &r.to_table());
}
