//! Worker-thread scaling of the sharded cycle loop.
//!
//! Runs the same mixed render+compute workload at 1, 2, 4 and 8 worker
//! threads on the RTX 3070 model (46 SMs — enough per-cycle work for the
//! shards to amortize the barrier) and reports simulated cycles/second
//! plus the speedup over the serial loop. Results are checked to be
//! identical at every thread count before timing is reported.
//!
//! `CRISP_SCALE=quick` shrinks the workload; `CRISP_THREADS=a,b,c`
//! overrides the thread counts.

use std::time::Instant;

use crisp_bench::scale;
use crisp_core::prelude::*;
use crisp_core::{concurrent_bundle, COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_sim::SimResult;

fn bundle(scale_detail: f32, w: u32, h: u32, compute: ComputeScale) -> TraceBundle {
    let frame = Scene::build(SceneId::SponzaPbr, scale_detail).render(w, h, false, GRAPHICS_STREAM);
    concurrent_bundle(frame.trace, holo(COMPUTE_STREAM, compute))
}

fn run(gpu: &GpuConfig, trace: TraceBundle, threads: usize) -> (SimResult, f64) {
    let start = Instant::now();
    let result = Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::fg_even(gpu, GRAPHICS_STREAM, COMPUTE_STREAM))
        .threads(threads)
        .telemetry(Telemetry::NONE)
        .trace(trace)
        .run_or_panic();
    let secs = start.elapsed().as_secs_f64();
    (result, secs)
}

fn main() {
    let s = scale();
    let (w, h) = s.res.dims();
    let gpu = GpuConfig::rtx3070();

    let threads: Vec<usize> = std::env::var("CRISP_THREADS")
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![1, 2, 4, 8]);

    println!("== thread scaling: {} ({} SMs) ==", gpu.name, gpu.n_sms);
    println!(
        "host parallelism: {:?}",
        std::thread::available_parallelism()
    );

    let mut baseline: Option<(u64, f64)> = None;
    for &n in &threads {
        let (result, secs) = run(&gpu, bundle(s.detail, w, h, s.compute), n);
        match baseline {
            None => {
                baseline = Some((result.cycles, secs));
                println!(
                    "{n:>2} threads: {:>12} cycles in {secs:>7.2}s = {:>10.0} cycles/s (baseline)",
                    result.cycles,
                    result.cycles as f64 / secs,
                );
            }
            Some((cycles, serial_secs)) => {
                assert_eq!(
                    result.cycles, cycles,
                    "thread count changed the simulation — determinism violated"
                );
                println!(
                    "{n:>2} threads: {:>12} cycles in {secs:>7.2}s = {:>10.0} cycles/s ({:.2}x)",
                    result.cycles,
                    result.cycles as f64 / secs,
                    serial_secs / secs,
                );
            }
        }
    }
}
