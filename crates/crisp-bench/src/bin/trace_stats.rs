//! Workload characterisation: instruction mix and memory footprints of
//! every rendering scene and compute workload (the data behind the paper's
//! Section V descriptions).
use crisp_core::GRAPHICS_STREAM;
use crisp_scenes::{all_scenes, holo, nn, timewarp, upscaler, vio};
use crisp_trace::{ClassFootprint, DataClass, InstrMix, Stream, StreamId};

fn mix_of(s: &Stream) -> (InstrMix, ClassFootprint) {
    let mut m = InstrMix::default();
    let mut f = ClassFootprint::new();
    for k in s.kernels() {
        let km = InstrMix::of_kernel(k);
        m.int_alu += km.int_alu;
        m.fp += km.fp;
        m.sfu += km.sfu;
        m.tensor += km.tensor;
        m.control += km.control;
        m.global_mem += km.global_mem;
        m.shared_mem += km.shared_mem;
        m.tex += km.tex;
        f.add_kernel(k);
    }
    (m, f)
}

fn row(name: &str, s: &Stream) -> Vec<String> {
    let (m, f) = mix_of(s);
    let t = m.total().max(1) as f64;
    vec![
        name.to_string(),
        m.total().to_string(),
        format!("{:.0}%", m.fp as f64 / t * 100.0),
        format!("{:.0}%", m.int_alu as f64 / t * 100.0),
        format!("{:.0}%", m.sfu as f64 / t * 100.0),
        format!("{:.0}%", m.tensor as f64 / t * 100.0),
        format!("{:.0}%", (m.global_mem + m.shared_mem) as f64 / t * 100.0),
        format!("{:.0}%", m.tex as f64 / t * 100.0),
        format!("{:.2}", f.bytes(DataClass::Texture) as f64 / 1e6),
        format!(
            "{:.2}",
            (f.bytes(DataClass::Pipeline) + f.bytes(DataClass::Compute)) as f64 / 1e6
        ),
    ]
}

fn main() {
    let scale = crisp_bench::scale();
    let (w, h) = scale.res.dims();
    let mut rows = Vec::new();
    for scene in all_scenes(scale.detail) {
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        rows.push(row(scene.id.label(), &f.trace));
    }
    let c = StreamId(1);
    rows.push(row("VIO", &vio(c, scale.compute)));
    rows.push(row("HOLO", &holo(c, scale.compute)));
    rows.push(row("NN", &nn(c, scale.compute)));
    rows.push(row("ATW", &timewarp(c, w, h, scale.compute)));
    rows.push(row("UPSCALE", &upscaler(c, scale.compute)));
    let table = crisp_core::report::table(
        &[
            "workload", "instrs", "fp", "int", "sfu", "tensor", "mem", "tex", "tex MB", "data MB",
        ],
        &rows,
    );
    crisp_bench::emit("trace_stats", &table);
}
