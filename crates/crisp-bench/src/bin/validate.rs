//! Artifact-style validation: run every experiment at quick scale and
//! check that the paper's qualitative claims hold (the shipped analogue of
//! the artifact's `collect.sh` + result-check scripts).
use crisp_core::experiments as exp;
use crisp_core::experiments::ExpScale;

struct Check {
    name: &'static str,
    pass: bool,
    detail: String,
}

fn main() {
    let s = ExpScale::quick();
    let mut checks = Vec::new();

    let f3 = exp::fig03_vertex_batching(s);
    checks.push(Check {
        name: "fig03: VS invocation correlation ~1",
        pass: f3.correlation > 0.95,
        detail: format!("correlation {:.3}", f3.correlation),
    });

    let f9 = exp::fig09_lod_mape(s);
    checks.push(Check {
        name: "fig09: LoD off far worse than LoD on",
        pass: f9.improvement() > 2.0,
        detail: format!(
            "MAPE on {:.1}% / off {:.1}% ({:.1}x)",
            f9.mape_lod_on * 100.0,
            f9.mape_lod_off * 100.0,
            f9.improvement()
        ),
    });

    let f10 = exp::fig10_texlines_histogram(s);
    checks.push(Check {
        name: "fig10: mean tex lines/CTA within paper range",
        pass: (1.0..=22.0).contains(&f10.histogram.mean()),
        detail: format!("mean {:.2}", f10.histogram.mean()),
    });

    let f11 = exp::fig11_l2_composition(s);
    let pt = f11.row(crisp_scenes::SceneId::Pistol).texture_fraction;
    let spl = f11
        .row(crisp_scenes::SceneId::SponzaKhronos)
        .texture_fraction;
    checks.push(Check {
        name: "fig11: PBR holds more texture lines than basic",
        pass: pt > spl,
        detail: format!("PT {:.1}% vs SPL {:.1}%", pt * 100.0, spl * 100.0),
    });

    let f12 = exp::fig12_warped_slicer(s);
    checks.push(Check {
        name: "fig12: intra-SM sharing competitive with MPS",
        pass: f12.geomean("EVEN") > 0.85,
        detail: format!("EVEN geomean {:.3}", f12.geomean("EVEN")),
    });

    let f14 = exp::fig14_tap(s);
    checks.push(Check {
        name: "fig14: TAP does not collapse vs MPS",
        pass: f14.mean("TAP") > 0.7,
        detail: format!("TAP mean {:.3}", f14.mean("TAP")),
    });

    let f15 = exp::fig15_tap_composition(s);
    checks.push(Check {
        name: "fig15: rendering dominates the TAP'd L2",
        pass: f15.rendering_fraction() > 0.5,
        detail: format!("rendering {:.1}%", f15.rendering_fraction() * 100.0),
    });

    let ab = exp::ablation_batch_size(s);
    checks.push(Check {
        name: "ablation: batch 96 minimises error",
        pass: ab.best_batch() == 96,
        detail: format!("best batch {}", ab.best_batch()),
    });

    let mut failed = 0;
    println!("CRISP validation (quick scale):\n");
    for c in &checks {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("[{status}] {:<46} {}", c.name, c.detail);
    }
    println!(
        "\n{} / {} checks passed",
        checks.len() - failed,
        checks.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
