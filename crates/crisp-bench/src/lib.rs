//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by calling the corresponding runner in `crisp_core::experiments`,
//! printing the text table, and writing the raw output under
//! `target/experiments/`.
//!
//! Scale is controlled by the `CRISP_SCALE` environment variable:
//!
//! * `paper` (default) — the full evaluation scale (minutes per figure).
//! * `quick` — tiny sizes for smoke-testing the harness (seconds).

use std::path::PathBuf;

use crisp_core::experiments::ExpScale;

/// The experiment scale selected via `CRISP_SCALE`.
pub fn scale() -> ExpScale {
    match std::env::var("CRISP_SCALE").as_deref() {
        Ok("quick") => ExpScale::quick(),
        _ => ExpScale::paper(),
    }
}

/// Output directory for experiment artifacts (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Print a figure's table and persist it to `target/experiments/<name>.txt`.
pub fn emit(name: &str, table: &str) {
    println!("== {name} ==\n{table}");
    let path = out_dir().join(format!("{name}.txt"));
    std::fs::write(&path, table).expect("write experiment output");
    println!("(saved to {})", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The env var is unset in tests unless a caller sets it.
        if std::env::var("CRISP_SCALE").is_err() {
            assert_eq!(scale().detail, ExpScale::paper().detail);
        }
    }

    #[test]
    fn emit_writes_the_artifact() {
        emit("selftest", "hello\n");
        let p = out_dir().join("selftest.txt");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello\n");
        let _ = std::fs::remove_file(p);
    }
}
