//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by calling the corresponding runner in `crisp_core::experiments`,
//! printing the text table, and writing the raw output under
//! `target/experiments/`.
//!
//! Scale is controlled by the `CRISP_SCALE` environment variable:
//!
//! * `paper` (default) — the full evaluation scale (minutes per figure).
//! * `quick` — tiny sizes for smoke-testing the harness (seconds).

use std::path::PathBuf;

use crisp_analyze::{AnalysisConfig, LintCode};
use crisp_core::experiments::ExpScale;
use crisp_core::{COMPUTE_STREAM, GRAPHICS_STREAM};
use crisp_scenes::{holo, nn, vio, ComputeScale, Scene, SceneId};
use crisp_trace::TraceBundle;

/// The experiment scale selected via `CRISP_SCALE`.
pub fn scale() -> ExpScale {
    match std::env::var("CRISP_SCALE").as_deref() {
        Ok("quick") => ExpScale::quick(),
        _ => ExpScale::paper(),
    }
}

/// Output directory for experiment artifacts (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Print a figure's table and persist it to `target/experiments/<name>.txt`.
pub fn emit(name: &str, table: &str) {
    println!("== {name} ==\n{table}");
    let path = out_dir().join(format!("{name}.txt"));
    std::fs::write(&path, table).expect("write experiment output");
    println!("(saved to {})", path.display());
}

/// The trace corpus every frontend in the repo can produce, at smoke scale.
///
/// Shared by `chaos --corpus` (structural validation + codec round-trip)
/// and `lint` (static analysis): one graphics frame, the three compute
/// suites, and a concurrent render+compute bundle.
pub fn frontend_corpus() -> Vec<(String, TraceBundle)> {
    let mut corpus: Vec<(String, TraceBundle)> = Vec::new();
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, GRAPHICS_STREAM);
    corpus.push((
        "sponza-frame".into(),
        TraceBundle::from_streams(vec![frame.trace]),
    ));
    for (name, stream) in [
        ("vio", vio(COMPUTE_STREAM, ComputeScale::tiny())),
        ("holo", holo(COMPUTE_STREAM, ComputeScale::tiny())),
        ("nn", nn(COMPUTE_STREAM, ComputeScale::tiny())),
    ] {
        corpus.push((name.into(), TraceBundle::from_streams(vec![stream])));
    }
    let frame = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, GRAPHICS_STREAM);
    corpus.push((
        "concurrent-render+vio".into(),
        TraceBundle::from_streams(vec![frame.trace, vio(COMPUTE_STREAM, ComputeScale::tiny())]),
    ));
    // Paper-scale VIO runs the reduction with >1 CTA, so the benign
    // cross-CTA accumulator overlap in `vio_reduce` is present and the
    // allow entry in `corpus_lint_config` is exercised, not vestigial.
    corpus.push((
        "vio-paper".into(),
        TraceBundle::from_streams(vec![vio(COMPUTE_STREAM, ComputeScale::default())]),
    ));
    corpus
}

/// The lint configuration the corpus is held to.
///
/// Every allow entry documents a *benign* finding that was audited by hand;
/// real defects get fixed in the frontends instead of silenced here.
pub fn corpus_lint_config() -> AnalysisConfig {
    AnalysisConfig::new()
        // The VIO reduction tree intentionally funnels every CTA's partial
        // sum into one accumulator page; the simulator replays stores in
        // trace order, so the overlap is deterministic and harmless.
        .allow_in(LintCode::GlobalWriteOverlap, "vio_reduce")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The env var is unset in tests unless a caller sets it.
        if std::env::var("CRISP_SCALE").is_err() {
            assert_eq!(scale().detail, ExpScale::paper().detail);
        }
    }

    #[test]
    fn emit_writes_the_artifact() {
        emit("selftest", "hello\n");
        let p = out_dir().join("selftest.txt");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello\n");
        let _ = std::fs::remove_file(p);
    }
}
