//! Deterministic checkpoint/restore plumbing for the CRISP simulator.
//!
//! Trace-driven cycle simulation is slow; the standard mitigation — used by
//! the parallel Accel-Sim work this repo reproduces — is to snapshot the full
//! architectural state mid-run and resume (or fast-forward) from there. This
//! crate provides the *format* layer for those snapshots:
//!
//! * [`Writer`]/[`Reader`]: a tiny, dependency-free binary codec (LEB128
//!   varints, zig-zag signed values, bit-exact `f64`, length-capped
//!   allocations) in the same style as `crisp_trace::codec`,
//! * [`CheckpointState`]: the trait every stateful simulator component
//!   implements to expose a stable, ordered view of itself.
//!
//! Since format version 2 a checkpoint stores no inline kernel payloads:
//! resident warps are saved as `(kernel id, cta index)` cursors into the
//! run's trace source, and the checkpoint carries the source's *provenance*
//! (a path, or the raw CRSP container bytes) so restore re-opens the source
//! and demand-pages the resident CTAs back in. The `Arc` sharing between
//! warps of one CTA re-establishes itself through the source's resident
//! window.
//!
//! The actual component serializers live next to the components (they need
//! private-field access); this crate only defines the wire discipline. The
//! determinism contract is: `save` walks every collection in a deterministic
//! order (sorted keys for hash maps, heap contents as sorted lists), so the
//! byte stream — and therefore the restored simulator — is identical no
//! matter how many worker threads produced the state.
//!
//! A checkpoint starts with the magic tag `CKPT` and a version word, written
//! and checked through the same found-vs-expected helpers as the `CRSP`
//! trace format, so mixing the two file kinds up fails with a message naming
//! both.

use std::io::{self, Read, Write};

use crisp_trace::codec::{
    check_magic, check_version, read_string, read_varint, unzigzag, write_string, write_varint,
    zigzag,
};
use crisp_trace::{DataClass, Space, StreamId};

/// Magic tag opening every checkpoint file.
pub const MAGIC: &[u8; 4] = b"CKPT";

/// Checkpoint format version. Version 2 replaced inline kernel payloads
/// (the old kernel-interning table) with trace-source provenance plus
/// per-warp `(kernel id, cta index)` cursors.
pub const VERSION: u32 = 2;

/// Human-readable format name used in found-vs-expected error messages.
pub const FORMAT_NAME: &str = "CKPT checkpoint";

/// An `InvalidData` error with the given message.
pub fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Checkpoint writer: a thin typed layer over any [`Write`].
#[derive(Debug)]
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Wrap a sink. Call [`Writer::header`] first for a standalone file.
    pub fn new(inner: W) -> Self {
        Writer { inner }
    }

    /// Write the `CKPT` magic and version.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn header(&mut self) -> io::Result<()> {
        self.inner.write_all(MAGIC)?;
        self.inner.write_all(&VERSION.to_le_bytes())
    }

    /// Unwrap the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Write one raw byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u8(&mut self, v: u8) -> io::Result<()> {
        self.inner.write_all(&[v])
    }

    /// Write a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u16(&mut self, v: u16) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a `u64` as an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        write_varint(&mut self.inner, v)
    }

    /// Write a `usize` as a varint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn len(&mut self, v: usize) -> io::Result<()> {
        write_varint(&mut self.inner, v as u64)
    }

    /// Write an `i64` zig-zag encoded.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn i64(&mut self, v: i64) -> io::Result<()> {
        write_varint(&mut self.inner, zigzag(v))
    }

    /// Write an `f64` bit-exactly (as its IEEE-754 bit pattern).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn f64(&mut self, v: f64) -> io::Result<()> {
        self.inner.write_all(&v.to_bits().to_le_bytes())
    }

    /// Write a `u128` as two varint halves (scoreboard masks).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u128(&mut self, v: u128) -> io::Result<()> {
        self.u64(v as u64)?;
        self.u64((v >> 64) as u64)
    }

    /// Write a bool as one byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn bool(&mut self, v: bool) -> io::Result<()> {
        self.u8(v as u8)
    }

    /// Write a length-prefixed string.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn str(&mut self, s: &str) -> io::Result<()> {
        write_string(&mut self.inner, s)
    }

    /// Write an `Option` as a presence byte plus the value.
    ///
    /// # Errors
    ///
    /// Propagates I/O and callback errors.
    pub fn option<T>(
        &mut self,
        v: Option<&T>,
        f: impl FnOnce(&mut Self, &T) -> io::Result<()>,
    ) -> io::Result<()> {
        match v {
            Some(x) => {
                self.u8(1)?;
                f(self, x)
            }
            None => self.u8(0),
        }
    }

    /// Write a length-prefixed raw byte blob (e.g. an embedded CRSP
    /// container for checkpoint self-containment).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.len(b.len())?;
        self.inner.write_all(b)
    }

    /// Write a [`StreamId`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stream(&mut self, s: StreamId) -> io::Result<()> {
        self.u32(s.0)
    }

    /// Write a [`DataClass`] tag.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn class(&mut self, c: DataClass) -> io::Result<()> {
        self.u8(match c {
            DataClass::Texture => 0,
            DataClass::Pipeline => 1,
            DataClass::Compute => 2,
        })
    }

    /// Write a [`Space`] tag.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn space(&mut self, s: Space) -> io::Result<()> {
        self.u8(match s {
            Space::Global => 0,
            Space::Shared => 1,
            Space::Local => 2,
            Space::Tex => 3,
        })
    }
}

/// Checkpoint reader: the typed counterpart of [`Writer`], with every
/// length-driven allocation capped so corrupt input fails with `Err` instead
/// of panicking or exhausting memory.
#[derive(Debug)]
pub struct Reader<R: Read> {
    inner: R,
}

impl<R: Read> Reader<R> {
    /// Wrap a source. Call [`Reader::header`] first for a standalone file.
    pub fn new(inner: R) -> Self {
        Reader { inner }
    }

    /// Check the `CKPT` magic and version, reporting found-vs-expected.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a foreign magic or version.
    pub fn header(&mut self) -> io::Result<()> {
        check_magic(&mut self.inner, MAGIC, FORMAT_NAME)?;
        check_version(&mut self.inner, VERSION, FORMAT_NAME)
    }

    /// Read one raw byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u16(&mut self) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.inner.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a varint `u64`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on overflow; I/O errors otherwise.
    pub fn u64(&mut self) -> io::Result<u64> {
        read_varint(&mut self.inner)
    }

    /// Read a varint length and require it to be at most `cap`. Every
    /// collection restore goes through this so a flipped bit in a length
    /// prefix cannot drive an unbounded allocation.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the length exceeds `cap`.
    pub fn len(&mut self, cap: usize) -> io::Result<usize> {
        let n = read_varint(&mut self.inner)?;
        if n > cap as u64 {
            return Err(bad(format!("length {n} exceeds cap {cap}")));
        }
        Ok(n as usize)
    }

    /// Read a zig-zag encoded `i64`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on overflow; I/O errors otherwise.
    pub fn i64(&mut self) -> io::Result<i64> {
        Ok(unzigzag(read_varint(&mut self.inner)?))
    }

    /// Read an `f64` bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Read a `u128` written by [`Writer::u128`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u128(&mut self) -> io::Result<u128> {
        let lo = self.u64()?;
        let hi = self.u64()?;
        Ok((lo as u128) | ((hi as u128) << 64))
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a non-boolean byte.
    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("bad bool byte {b}"))),
        }
    }

    /// Read a length-prefixed string (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// `InvalidData` on oversized length or invalid UTF-8.
    pub fn str(&mut self) -> io::Result<String> {
        read_string(&mut self.inner)
    }

    /// Read an `Option` written by [`Writer::option`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad presence byte; propagates callback errors.
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> io::Result<T>,
    ) -> io::Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(bad(format!("bad option tag {b}"))),
        }
    }

    /// Read a length-prefixed byte blob written by [`Writer::bytes`],
    /// with the length capped at `cap`.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the length exceeds `cap`; I/O errors otherwise.
    pub fn bytes(&mut self, cap: usize) -> io::Result<Vec<u8>> {
        let n = self.len(cap)?;
        // Read in bounded chunks so a corrupt length that passes `cap`
        // cannot commit the full allocation before hitting EOF.
        let mut buf = Vec::with_capacity(n.min(1 << 20));
        let mut remaining = n;
        let mut chunk = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            self.inner.read_exact(&mut chunk[..take])?;
            buf.extend_from_slice(&chunk[..take]);
            remaining -= take;
        }
        Ok(buf)
    }

    /// Read a [`StreamId`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stream(&mut self) -> io::Result<StreamId> {
        Ok(StreamId(self.u32()?))
    }

    /// Read a [`DataClass`] tag.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an unknown tag.
    pub fn class(&mut self) -> io::Result<DataClass> {
        Ok(match self.u8()? {
            0 => DataClass::Texture,
            1 => DataClass::Pipeline,
            2 => DataClass::Compute,
            t => return Err(bad(format!("bad data-class tag {t}"))),
        })
    }

    /// Read a [`Space`] tag.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an unknown tag.
    pub fn space(&mut self) -> io::Result<Space> {
        Ok(match self.u8()? {
            0 => Space::Global,
            1 => Space::Shared,
            2 => Space::Local,
            3 => Space::Tex,
            t => return Err(bad(format!("bad space tag {t}"))),
        })
    }
}

/// State that can be checkpointed and restored.
///
/// `SaveCtx`/`RestoreCtx` carry whatever surrounding information the
/// component does not own itself — typically its configuration (geometry,
/// capacities), which the checkpoint stores once at the top level rather
/// than repeating per component, or the run's trace source for paging
/// resident CTAs back in.
pub trait CheckpointState: Sized {
    /// Context borrowed during save (most components need none).
    type SaveCtx<'a>;
    /// Context borrowed during restore (e.g. configuration to rebuild
    /// derived fields from).
    type RestoreCtx<'a>;

    /// Serialize `self` deterministically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn save<W: Write>(&self, w: &mut Writer<W>, ctx: Self::SaveCtx<'_>) -> io::Result<()>;

    /// Rebuild a value from the stream. Implementations must validate every
    /// index and capacity against `ctx` and return `Err` — never panic — on
    /// corrupt input.
    ///
    /// # Errors
    ///
    /// `InvalidData` on corrupt input; I/O errors otherwise.
    fn restore<R: Read>(r: &mut Reader<R>, ctx: Self::RestoreCtx<'_>) -> io::Result<Self>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.header().unwrap();
        w.u8(7).unwrap();
        w.u16(0xBEEF).unwrap();
        w.u32(0xDEAD_BEEF).unwrap();
        w.u64(u64::MAX).unwrap();
        w.i64(-42).unwrap();
        w.f64(0.1 + 0.2).unwrap();
        w.u128(1u128 << 99 | 3).unwrap();
        w.bool(true).unwrap();
        w.str("hello").unwrap();
        w.option(Some(&5u64), |w, v| w.u64(*v)).unwrap();
        w.option::<u64>(None, |w, v| w.u64(*v)).unwrap();

        let mut r = Reader::new(buf.as_slice());
        r.header().unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.u128().unwrap(), 1u128 << 99 | 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(5));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
    }

    #[test]
    fn header_rejects_foreign_magic_with_both_names() {
        let mut buf = b"CRSP".to_vec();
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = Reader::new(buf.as_slice())
            .header()
            .unwrap_err()
            .to_string();
        assert!(err.contains("CRSP") && err.contains("CKPT"), "{err}");
    }

    #[test]
    fn header_rejects_future_version() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = Reader::new(buf.as_slice())
            .header()
            .unwrap_err()
            .to_string();
        assert!(err.contains("found 99"), "{err}");
    }

    #[test]
    fn len_cap_blocks_oversized_allocations() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX).unwrap();
        assert!(Reader::new(buf.as_slice()).len(1000).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags_error() {
        assert!(Reader::new([2u8].as_slice()).bool().is_err());
        assert!(Reader::new([9u8].as_slice()).option(|r| r.u8()).is_err());
    }

    #[test]
    fn bytes_roundtrip_and_cap() {
        let blob: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        Writer::new(&mut buf).bytes(&blob).unwrap();
        assert_eq!(Reader::new(buf.as_slice()).bytes(blob.len()).unwrap(), blob);
        assert!(Reader::new(buf.as_slice()).bytes(blob.len() - 1).is_err());
    }

    #[test]
    fn truncated_bytes_blob_errors_instead_of_allocating() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1 << 40).unwrap(); // huge claimed length, no payload
        assert!(Reader::new(buf.as_slice()).bytes(usize::MAX).is_err());
    }
}
