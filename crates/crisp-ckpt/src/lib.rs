//! Deterministic checkpoint/restore plumbing for the CRISP simulator.
//!
//! Trace-driven cycle simulation is slow; the standard mitigation — used by
//! the parallel Accel-Sim work this repo reproduces — is to snapshot the full
//! architectural state mid-run and resume (or fast-forward) from there. This
//! crate provides the *format* layer for those snapshots:
//!
//! * [`Writer`]/[`Reader`]: a tiny, dependency-free binary codec (LEB128
//!   varints, zig-zag signed values, bit-exact `f64`, length-capped
//!   allocations) in the same style as `crisp_trace::codec`,
//! * [`CheckpointState`]: the trait every stateful simulator component
//!   implements to expose a stable, ordered view of itself,
//! * [`KernelTable`]: interning for `Arc<KernelTrace>` handles so that warps
//!   resident on different SMs share one kernel copy after restore exactly as
//!   they did before it.
//!
//! The actual component serializers live next to the components (they need
//! private-field access); this crate only defines the wire discipline. The
//! determinism contract is: `save` walks every collection in a deterministic
//! order (sorted keys for hash maps, heap contents as sorted lists), so the
//! byte stream — and therefore the restored simulator — is identical no
//! matter how many worker threads produced the state.
//!
//! A checkpoint starts with the magic tag `CKPT` and a version word, written
//! and checked through the same found-vs-expected helpers as the `CRSP`
//! trace format, so mixing the two file kinds up fails with a message naming
//! both.

use std::io::{self, Read, Write};
use std::sync::Arc;

use crisp_trace::codec::{
    check_magic, check_version, read_kernel, read_string, read_varint, unzigzag, write_kernel,
    write_string, write_varint, zigzag,
};
use crisp_trace::{DataClass, KernelTrace, Space, StreamId};

/// Magic tag opening every checkpoint file.
pub const MAGIC: &[u8; 4] = b"CKPT";

/// Checkpoint format version.
pub const VERSION: u32 = 1;

/// Human-readable format name used in found-vs-expected error messages.
pub const FORMAT_NAME: &str = "CKPT checkpoint";

/// An `InvalidData` error with the given message.
pub fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Checkpoint writer: a thin typed layer over any [`Write`].
#[derive(Debug)]
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Wrap a sink. Call [`Writer::header`] first for a standalone file.
    pub fn new(inner: W) -> Self {
        Writer { inner }
    }

    /// Write the `CKPT` magic and version.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn header(&mut self) -> io::Result<()> {
        self.inner.write_all(MAGIC)?;
        self.inner.write_all(&VERSION.to_le_bytes())
    }

    /// Unwrap the underlying sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Write one raw byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u8(&mut self, v: u8) -> io::Result<()> {
        self.inner.write_all(&[v])
    }

    /// Write a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u16(&mut self, v: u16) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.inner.write_all(&v.to_le_bytes())
    }

    /// Write a `u64` as an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        write_varint(&mut self.inner, v)
    }

    /// Write a `usize` as a varint.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn len(&mut self, v: usize) -> io::Result<()> {
        write_varint(&mut self.inner, v as u64)
    }

    /// Write an `i64` zig-zag encoded.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn i64(&mut self, v: i64) -> io::Result<()> {
        write_varint(&mut self.inner, zigzag(v))
    }

    /// Write an `f64` bit-exactly (as its IEEE-754 bit pattern).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn f64(&mut self, v: f64) -> io::Result<()> {
        self.inner.write_all(&v.to_bits().to_le_bytes())
    }

    /// Write a `u128` as two varint halves (scoreboard masks).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u128(&mut self, v: u128) -> io::Result<()> {
        self.u64(v as u64)?;
        self.u64((v >> 64) as u64)
    }

    /// Write a bool as one byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn bool(&mut self, v: bool) -> io::Result<()> {
        self.u8(v as u8)
    }

    /// Write a length-prefixed string.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn str(&mut self, s: &str) -> io::Result<()> {
        write_string(&mut self.inner, s)
    }

    /// Write an `Option` as a presence byte plus the value.
    ///
    /// # Errors
    ///
    /// Propagates I/O and callback errors.
    pub fn option<T>(
        &mut self,
        v: Option<&T>,
        f: impl FnOnce(&mut Self, &T) -> io::Result<()>,
    ) -> io::Result<()> {
        match v {
            Some(x) => {
                self.u8(1)?;
                f(self, x)
            }
            None => self.u8(0),
        }
    }

    /// Write a [`KernelTrace`] inline in the CRSP per-kernel layout.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn kernel(&mut self, k: &KernelTrace) -> io::Result<()> {
        write_kernel(&mut self.inner, k)
    }

    /// Write a [`StreamId`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stream(&mut self, s: StreamId) -> io::Result<()> {
        self.u32(s.0)
    }

    /// Write a [`DataClass`] tag.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn class(&mut self, c: DataClass) -> io::Result<()> {
        self.u8(match c {
            DataClass::Texture => 0,
            DataClass::Pipeline => 1,
            DataClass::Compute => 2,
        })
    }

    /// Write a [`Space`] tag.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn space(&mut self, s: Space) -> io::Result<()> {
        self.u8(match s {
            Space::Global => 0,
            Space::Shared => 1,
            Space::Local => 2,
            Space::Tex => 3,
        })
    }
}

/// Checkpoint reader: the typed counterpart of [`Writer`], with every
/// length-driven allocation capped so corrupt input fails with `Err` instead
/// of panicking or exhausting memory.
#[derive(Debug)]
pub struct Reader<R: Read> {
    inner: R,
}

impl<R: Read> Reader<R> {
    /// Wrap a source. Call [`Reader::header`] first for a standalone file.
    pub fn new(inner: R) -> Self {
        Reader { inner }
    }

    /// Check the `CKPT` magic and version, reporting found-vs-expected.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a foreign magic or version.
    pub fn header(&mut self) -> io::Result<()> {
        check_magic(&mut self.inner, MAGIC, FORMAT_NAME)?;
        check_version(&mut self.inner, VERSION, FORMAT_NAME)
    }

    /// Read one raw byte.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u16(&mut self) -> io::Result<u16> {
        let mut b = [0u8; 2];
        self.inner.read_exact(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a varint `u64`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on overflow; I/O errors otherwise.
    pub fn u64(&mut self) -> io::Result<u64> {
        read_varint(&mut self.inner)
    }

    /// Read a varint length and require it to be at most `cap`. Every
    /// collection restore goes through this so a flipped bit in a length
    /// prefix cannot drive an unbounded allocation.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the length exceeds `cap`.
    pub fn len(&mut self, cap: usize) -> io::Result<usize> {
        let n = read_varint(&mut self.inner)?;
        if n > cap as u64 {
            return Err(bad(format!("length {n} exceeds cap {cap}")));
        }
        Ok(n as usize)
    }

    /// Read a zig-zag encoded `i64`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on overflow; I/O errors otherwise.
    pub fn i64(&mut self) -> io::Result<i64> {
        Ok(unzigzag(read_varint(&mut self.inner)?))
    }

    /// Read an `f64` bit-exactly.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn f64(&mut self) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Read a `u128` written by [`Writer::u128`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn u128(&mut self) -> io::Result<u128> {
        let lo = self.u64()?;
        let hi = self.u64()?;
        Ok((lo as u128) | ((hi as u128) << 64))
    }

    /// Read a bool; any byte other than 0/1 is corruption.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a non-boolean byte.
    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("bad bool byte {b}"))),
        }
    }

    /// Read a length-prefixed string (capped at 1 MiB).
    ///
    /// # Errors
    ///
    /// `InvalidData` on oversized length or invalid UTF-8.
    pub fn str(&mut self) -> io::Result<String> {
        read_string(&mut self.inner)
    }

    /// Read an `Option` written by [`Writer::option`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad presence byte; propagates callback errors.
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> io::Result<T>,
    ) -> io::Result<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(bad(format!("bad option tag {b}"))),
        }
    }

    /// Read a [`KernelTrace`] written by [`Writer::kernel`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on structural corruption.
    pub fn kernel(&mut self) -> io::Result<KernelTrace> {
        read_kernel(&mut self.inner)
    }

    /// Read a [`StreamId`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn stream(&mut self) -> io::Result<StreamId> {
        Ok(StreamId(self.u32()?))
    }

    /// Read a [`DataClass`] tag.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an unknown tag.
    pub fn class(&mut self) -> io::Result<DataClass> {
        Ok(match self.u8()? {
            0 => DataClass::Texture,
            1 => DataClass::Pipeline,
            2 => DataClass::Compute,
            t => return Err(bad(format!("bad data-class tag {t}"))),
        })
    }

    /// Read a [`Space`] tag.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an unknown tag.
    pub fn space(&mut self) -> io::Result<Space> {
        Ok(match self.u8()? {
            0 => Space::Global,
            1 => Space::Shared,
            2 => Space::Local,
            3 => Space::Tex,
            t => return Err(bad(format!("bad space tag {t}"))),
        })
    }
}

/// State that can be checkpointed and restored.
///
/// `SaveCtx`/`RestoreCtx` carry whatever surrounding information the
/// component does not own itself — typically its configuration (geometry,
/// capacities), which the checkpoint stores once at the top level rather
/// than repeating per component, plus shared tables like [`KernelTable`].
pub trait CheckpointState: Sized {
    /// Context borrowed during save (e.g. a [`KernelTable`] being built).
    type SaveCtx<'a>;
    /// Context borrowed during restore (e.g. configuration to rebuild
    /// derived fields from).
    type RestoreCtx<'a>;

    /// Serialize `self` deterministically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn save<W: Write>(&self, w: &mut Writer<W>, ctx: Self::SaveCtx<'_>) -> io::Result<()>;

    /// Rebuild a value from the stream. Implementations must validate every
    /// index and capacity against `ctx` and return `Err` — never panic — on
    /// corrupt input.
    ///
    /// # Errors
    ///
    /// `InvalidData` on corrupt input; I/O errors otherwise.
    fn restore<R: Read>(r: &mut Reader<R>, ctx: Self::RestoreCtx<'_>) -> io::Result<Self>;
}

/// Maximum kernels a checkpoint's kernel table may hold (allocation cap;
/// real tables hold one in-flight kernel per stream).
pub const MAX_TABLE_KERNELS: usize = 1 << 16;

/// Interning table for the `Arc<KernelTrace>` handles shared between a
/// stream's running kernel and the warps/CTAs resident on SMs.
///
/// During save the driving code interns each distinct Arc (by pointer
/// identity) and components store the index; during restore components look
/// the index back up and clone the Arc, re-establishing the sharing.
#[derive(Debug, Default, Clone)]
pub struct KernelTable {
    kernels: Vec<Arc<KernelTrace>>,
}

impl KernelTable {
    /// An empty table.
    pub fn new() -> Self {
        KernelTable::default()
    }

    /// Number of interned kernels.
    pub fn count(&self) -> usize {
        self.kernels.len()
    }

    /// Intern `k`, returning its index. Pointer identity — not structural
    /// equality — decides uniqueness, mirroring the Arc sharing being saved.
    pub fn intern(&mut self, k: &Arc<KernelTrace>) -> u64 {
        if let Some(i) = self.kernels.iter().position(|e| Arc::ptr_eq(e, k)) {
            return i as u64;
        }
        self.kernels.push(Arc::clone(k));
        (self.kernels.len() - 1) as u64
    }

    /// The index of an already-interned kernel.
    ///
    /// # Errors
    ///
    /// `InvalidData` if `k` was never interned — a save-order bug.
    pub fn index_of(&self, k: &Arc<KernelTrace>) -> io::Result<u64> {
        self.kernels
            .iter()
            .position(|e| Arc::ptr_eq(e, k))
            .map(|i| i as u64)
            .ok_or_else(|| bad("kernel not interned in checkpoint table"))
    }

    /// The kernel at `idx`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on an out-of-range index.
    pub fn get(&self, idx: u64) -> io::Result<Arc<KernelTrace>> {
        self.kernels
            .get(idx as usize)
            .cloned()
            .ok_or_else(|| bad(format!("kernel table index {idx} out of range")))
    }

    /// Serialize the table (each kernel inline, in intern order).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: Write>(&self, w: &mut Writer<W>) -> io::Result<()> {
        w.len(self.kernels.len())?;
        for k in &self.kernels {
            w.kernel(k)?;
        }
        Ok(())
    }

    /// Read a table written by [`KernelTable::save`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on corrupt input.
    pub fn restore<R: Read>(r: &mut Reader<R>) -> io::Result<Self> {
        let n = r.len(MAX_TABLE_KERNELS)?;
        let mut kernels = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            kernels.push(Arc::new(r.kernel()?));
        }
        Ok(KernelTable { kernels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{CtaTrace, Instr, Op, Reg, WarpTrace};

    fn kernel(name: &str) -> Arc<KernelTrace> {
        let mut w = WarpTrace::new();
        w.push(Instr::alu(Op::FpFma, Reg(1), &[Reg(2)]));
        w.seal();
        Arc::new(KernelTrace::new(
            name,
            64,
            16,
            0,
            vec![CtaTrace::new(vec![w.clone(), w])],
        ))
    }

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.header().unwrap();
        w.u8(7).unwrap();
        w.u16(0xBEEF).unwrap();
        w.u32(0xDEAD_BEEF).unwrap();
        w.u64(u64::MAX).unwrap();
        w.i64(-42).unwrap();
        w.f64(0.1 + 0.2).unwrap();
        w.u128(1u128 << 99 | 3).unwrap();
        w.bool(true).unwrap();
        w.str("hello").unwrap();
        w.option(Some(&5u64), |w, v| w.u64(*v)).unwrap();
        w.option::<u64>(None, |w, v| w.u64(*v)).unwrap();

        let mut r = Reader::new(buf.as_slice());
        r.header().unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.u128().unwrap(), 1u128 << 99 | 3);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.option(|r| r.u64()).unwrap(), Some(5));
        assert_eq!(r.option(|r| r.u64()).unwrap(), None);
    }

    #[test]
    fn header_rejects_foreign_magic_with_both_names() {
        let mut buf = b"CRSP".to_vec();
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = Reader::new(buf.as_slice())
            .header()
            .unwrap_err()
            .to_string();
        assert!(err.contains("CRSP") && err.contains("CKPT"), "{err}");
    }

    #[test]
    fn header_rejects_future_version() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = Reader::new(buf.as_slice())
            .header()
            .unwrap_err()
            .to_string();
        assert!(err.contains("found 99"), "{err}");
    }

    #[test]
    fn len_cap_blocks_oversized_allocations() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX).unwrap();
        assert!(Reader::new(buf.as_slice()).len(1000).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags_error() {
        assert!(Reader::new([2u8].as_slice()).bool().is_err());
        assert!(Reader::new([9u8].as_slice()).option(|r| r.u8()).is_err());
    }

    #[test]
    fn kernel_table_interns_by_pointer_identity() {
        let a = kernel("a");
        let a2 = Arc::clone(&a);
        let b = kernel("a"); // structurally equal, different allocation
        let mut t = KernelTable::new();
        assert_eq!(t.intern(&a), 0);
        assert_eq!(t.intern(&a2), 0);
        assert_eq!(t.intern(&b), 1);
        assert_eq!(t.count(), 2);
        assert_eq!(t.index_of(&a2).unwrap(), 0);
        assert!(t.index_of(&kernel("x")).is_err());
    }

    #[test]
    fn kernel_table_roundtrip() {
        let mut t = KernelTable::new();
        t.intern(&kernel("vs_main"));
        t.intern(&kernel("vio"));
        let mut buf = Vec::new();
        t.save(&mut Writer::new(&mut buf)).unwrap();
        let back = KernelTable::restore(&mut Reader::new(buf.as_slice())).unwrap();
        assert_eq!(back.count(), 2);
        assert_eq!(back.get(0).unwrap().name, "vs_main");
        assert_eq!(back.get(1).unwrap().name, "vio");
        assert!(back.get(2).is_err());
    }
}
