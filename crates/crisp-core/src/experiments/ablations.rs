//! Ablations of the design choices DESIGN.md calls out: batch size,
//! L1 port width, MSHR capacity, warp-scheduler policy, and MiG bank
//! granularity.

use crisp_gfx::batch::vs_invocation_count;
use crisp_mem::Replacement;
use crisp_scenes::silicon::mape;
use crisp_scenes::{all_scenes, holo, Scene, SceneId};
use crisp_sim::{GpuConfig, PartitionSpec, SchedulerPolicy, Simulation, Telemetry};
use crisp_trace::TraceBundle;

use crate::report::{f3, pct, table};
use crate::{COMPUTE_STREAM, GRAPHICS_STREAM};

use super::ExpScale;

/// Batch-size sweep result.
#[derive(Debug, Clone)]
pub struct BatchSizeAblation {
    /// (batch size, total VS invocations, MAPE of per-draw counts vs the
    /// batch-96 reference).
    pub rows: Vec<(usize, u64, f64)>,
}

impl BatchSizeAblation {
    /// The batch size minimising the error against the 96-reference.
    pub fn best_batch(&self) -> usize {
        self.rows
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
            .expect("non-empty sweep")
            .0
    }

    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(b, inv, m)| vec![b.to_string(), inv.to_string(), pct(*m)])
            .collect();
        format!(
            "{}\n(paper: \"At batchsize = 96, we achieved the highest correlation on vertex shader invocation count\")\n",
            table(&["batch size", "VS invocations", "MAPE vs batch-96 hw"], &rows)
        )
    }
}

/// Sweep the vertex batch size; hardware reference counts use batch 96 —
/// the paper's tuning experiment ("we adopted vertex batching and tested
/// the model with incrementing batch size").
pub fn ablation_batch_size(scale: ExpScale) -> BatchSizeAblation {
    let scenes = all_scenes(scale.detail);
    let per_draw = |b: usize| -> Vec<f64> {
        scenes
            .iter()
            .flat_map(|s| {
                s.draws.iter().map(move |d| {
                    (d.instances.len() as u64 * vs_invocation_count(&d.mesh.indices, b)) as f64
                })
            })
            .collect()
    };
    let reference = per_draw(96);
    let rows = [8usize, 16, 32, 48, 64, 96, 128, 192, 384]
        .iter()
        .map(|&b| {
            let counts = per_draw(b);
            let total = counts.iter().sum::<f64>() as u64;
            (b, total, mape(&counts, &reference))
        })
        .collect();
    BatchSizeAblation { rows }
}

/// A (knob value, frame cycles) sweep over one hardware parameter.
#[derive(Debug, Clone)]
pub struct HwSweep {
    /// Which knob was swept.
    pub knob: &'static str,
    /// (value, simulated frame cycles).
    pub rows: Vec<(u64, u64)>,
}

impl HwSweep {
    /// Cycles at the smallest and largest knob values.
    pub fn endpoints(&self) -> (u64, u64) {
        (
            self.rows.first().expect("non-empty").1,
            self.rows.last().expect("non-empty").1,
        )
    }

    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let base = self.rows.last().expect("non-empty").1 as f64;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(v, c)| vec![v.to_string(), c.to_string(), f3(*c as f64 / base)])
            .collect();
        table(&[self.knob, "frame cycles", "vs largest"], &rows)
    }
}

fn sim_frame(gpu: &GpuConfig, scene: &Scene, scale: ExpScale) -> u64 {
    let (w, h) = scale.res.dims();
    let f = scene.render(w, h, false, GRAPHICS_STREAM);
    Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::greedy())
        .telemetry(Telemetry::NONE)
        .trace(TraceBundle::from_streams(vec![f.trace]))
        .run_or_panic()
        .cycles
}

/// Sweep the L1 data-port width (sectors/cycle) on the texture-heavy SPH
/// frame — the resource whose pressure the LoD case study quantifies.
pub fn ablation_l1_ports(scale: ExpScale) -> HwSweep {
    let scene = Scene::build(SceneId::SponzaPbr, scale.detail);
    let rows = [1u32, 2, 4, 8]
        .iter()
        .map(|&p| {
            let mut gpu = GpuConfig::rtx3070();
            gpu.sm.l1_ports = p;
            (p as u64, sim_frame(&gpu, &scene, scale))
        })
        .collect();
    HwSweep {
        knob: "l1 ports",
        rows,
    }
}

/// Sweep the L1 MSHR capacity (memory-level parallelism per SM).
pub fn ablation_mshr(scale: ExpScale) -> HwSweep {
    let scene = Scene::build(SceneId::SponzaPbr, scale.detail);
    let rows = [4usize, 8, 16, 32, 64, 128]
        .iter()
        .map(|&e| {
            let mut gpu = GpuConfig::rtx3070();
            gpu.l1_mshr_entries = e;
            (e as u64, sim_frame(&gpu, &scene, scale))
        })
        .collect();
    HwSweep {
        knob: "L1 MSHR entries",
        rows,
    }
}

/// GTO vs LRR warp scheduling on a graphics frame.
pub fn ablation_scheduler(scale: ExpScale) -> Vec<(&'static str, u64)> {
    let scene = Scene::build(SceneId::Pistol, scale.detail);
    [("GTO", SchedulerPolicy::Gto), ("LRR", SchedulerPolicy::Lrr)]
        .iter()
        .map(|&(name, pol)| {
            let mut gpu = GpuConfig::rtx3070();
            gpu.sm.scheduler = pol;
            (name, sim_frame(&gpu, &scene, scale))
        })
        .collect()
}

/// LRU vs pseudo-random L2 replacement on a texture-reuse-heavy frame
/// (the paper: "The baseline cache replacement policy, LRU, is efficient
/// enough"). The L2 is shrunk to 512 KB so the frame's working set
/// actually contends for capacity — at the full 4 MB the scaled frame fits
/// and the policies are indistinguishable.
pub fn ablation_replacement(scale: ExpScale) -> Vec<(&'static str, u64, f64)> {
    let scene = Scene::build(SceneId::SponzaPbr, scale.detail);
    [("LRU", Replacement::Lru), ("Random", Replacement::Random)]
        .iter()
        .map(|&(name, pol)| {
            let mut gpu = GpuConfig::rtx3070();
            gpu.l2_bytes = 512 << 10;
            gpu.l2_replacement = pol;
            let (w, h) = scale.res.dims();
            let f = scene.render(w, h, false, GRAPHICS_STREAM);
            let r = Simulation::builder()
                .gpu(gpu)
                .partition(PartitionSpec::greedy())
                .telemetry(Telemetry::NONE)
                .trace(TraceBundle::from_streams(vec![f.trace]))
                .run_or_panic();
            (name, r.cycles, r.l2_stats.total().hit_rate())
        })
        .collect()
}

/// MiG's bandwidth loss as a function of bank granularity: the fewer banks
/// the GPU has, the more a bank-level split costs (each side keeps only
/// half the banks' bandwidth).
pub fn ablation_mig_banks(scale: ExpScale) -> Vec<(u32, f64)> {
    let (w, h) = scale.res.dims();
    let scene = Scene::build(SceneId::SponzaPbr, scale.detail);
    [4u32, 8, 16, 32]
        .iter()
        .map(|&banks| {
            let mut gpu = GpuConfig::rtx3070();
            gpu.l2_banks = banks;
            let run = |spec: PartitionSpec| {
                let f = scene.render(w, h, false, GRAPHICS_STREAM);
                let c = holo(COMPUTE_STREAM, scale.compute);
                let r = Simulation::builder()
                    .gpu(gpu.clone())
                    .partition(spec)
                    .telemetry(Telemetry::NONE)
                    .trace(TraceBundle::from_streams(vec![f.trace, c]))
                    .run_or_panic();
                r.per_stream
                    .values()
                    .map(|s| s.stats.finish_cycle)
                    .max()
                    .expect("streams ran")
            };
            let mps = run(PartitionSpec::mps_even(
                &gpu,
                GRAPHICS_STREAM,
                COMPUTE_STREAM,
            ));
            let mig = run(PartitionSpec::mig_even(
                &gpu,
                GRAPHICS_STREAM,
                COMPUTE_STREAM,
            ));
            (banks, mps as f64 / mig as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_96_minimises_error_against_the_reference() {
        let r = ablation_batch_size(ExpScale::quick());
        assert_eq!(r.best_batch(), 96);
        // Invocations decrease monotonically with batch size.
        let counts: Vec<u64> = r.rows.iter().map(|(_, c, _)| *c).collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]), "{counts:?}");
        assert!(r.to_table().contains("96"));
    }

    #[test]
    fn narrower_l1_port_slows_texture_heavy_frames() {
        // Tiny frames are latency-dominated, so the quick-scale gap is
        // small; the paper-scale ablation binary shows the full spread.
        let r = ablation_l1_ports(ExpScale::quick());
        let (narrow, wide) = r.endpoints();
        assert!(
            narrow as f64 > wide as f64 * 1.03,
            "1 port must be measurably slower than 8: {narrow} vs {wide}"
        );
    }

    #[test]
    fn fewer_mshrs_cost_cycles() {
        let r = ablation_mshr(ExpScale::quick());
        let (few, many) = r.endpoints();
        assert!(few >= many, "4 MSHRs cannot beat 128: {few} vs {many}");
    }

    #[test]
    fn both_replacement_policies_complete() {
        let r = ablation_replacement(ExpScale::quick());
        assert_eq!(r.len(), 2);
        for (n, c, hit) in r {
            assert!(c > 0, "{n}");
            assert!((0.0..=1.0).contains(&hit), "{n}");
        }
    }

    #[test]
    fn both_schedulers_complete() {
        let r = ablation_scheduler(ExpScale::quick());
        assert_eq!(r.len(), 2);
        for (n, c) in r {
            assert!(c > 0, "{n} produced no cycles");
        }
    }
}
