//! L2-composition experiments: Figures 7 and 11.

use crisp_gfx::{FilterMode, Texture, TextureFormat, Vec2};
use crisp_scenes::{Scene, SceneId};
use crisp_sim::{GpuConfig, PartitionSpec, Simulation, Telemetry};
use crisp_trace::{DataClass, TraceBundle};

use crate::report::{pct, table};
use crate::GRAPHICS_STREAM;

use super::ExpScale;

/// Figure 7: the four-loads-merge-to-one mip demonstration.
#[derive(Debug, Clone)]
pub struct Fig07Result {
    /// Distinct texels referenced at mip 0.
    pub texels_level0: usize,
    /// Distinct texels referenced at mip 1.
    pub texels_level1: usize,
}

impl Fig07Result {
    /// Text rendering.
    pub fn to_table(&self) -> String {
        format!(
            "4x4 texture, four quad-spread UVs:\n  mip 0 -> {} distinct texels\n  mip 1 -> {} distinct texel(s)\n",
            self.texels_level0, self.texels_level1
        )
    }
}

/// Run the Figure 7 demonstration on the paper's 4×4 texture.
pub fn fig07_mip_merge() -> Fig07Result {
    let t = Texture::new(
        "fig7",
        4,
        4,
        1,
        TextureFormat::Rgba8,
        FilterMode::Nearest,
        0x1000,
    );
    let uvs = [
        Vec2::new(0.05, 0.05),
        Vec2::new(0.30, 0.05),
        Vec2::new(0.05, 0.30),
        Vec2::new(0.30, 0.30),
    ];
    let distinct = |lod: f32| {
        let mut a: Vec<u64> = uvs
            .iter()
            .flat_map(|&uv| t.sample_addrs(uv, lod, 0, false))
            .collect();
        a.sort_unstable();
        a.dedup();
        a.len()
    };
    Fig07Result {
        texels_level0: distinct(0.0),
        texels_level1: distinct(1.0),
    }
}

/// One scene's L2 breakdown (Figure 11).
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Scene analysed.
    pub scene: SceneId,
    /// Mean fraction of valid L2 lines holding texture data.
    pub texture_fraction: f64,
    /// Peak texture fraction over the sampled timeline.
    pub texture_fraction_peak: f64,
    /// Overall L2 hit rate.
    pub l2_hit_rate: f64,
}

/// Figure 11: L2 composition of PBR vs basic shading.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Pistol (PBR) and Sponza (basic) rows.
    pub rows: Vec<Fig11Row>,
}

impl Fig11Result {
    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scene.to_string(),
                    pct(r.texture_fraction),
                    pct(r.texture_fraction_peak),
                    pct(r.l2_hit_rate),
                ]
            })
            .collect();
        format!(
            "{}\npaper: Pistol avg 44% texture (peak 60%), hit rate 75%; Sponza far less texture, hit rate 90%\n",
            table(&["scene", "tex lines (avg)", "tex lines (peak)", "L2 hit rate"], &rows)
        )
    }

    /// Look up a row.
    pub fn row(&self, id: SceneId) -> &Fig11Row {
        self.rows
            .iter()
            .find(|r| r.scene == id)
            .expect("scene present")
    }
}

fn composition_run(scene: &Scene, scale: ExpScale) -> Fig11Row {
    let (w, h) = scale.res.dims();
    let f = scene.render(w, h, false, GRAPHICS_STREAM);
    let gpu = GpuConfig::rtx3070();
    let r = Simulation::builder()
        .gpu(gpu)
        .partition(PartitionSpec::greedy())
        .telemetry(Telemetry::COMPOSITION)
        .composition_interval(5_000)
        .trace(TraceBundle::from_streams(vec![f.trace]))
        .run_or_panic();
    let samples: Vec<f64> = r
        .l2_composition_timeline
        .iter()
        .map(|(_, c)| c.class_fraction(DataClass::Texture))
        .filter(|&f| f > 0.0)
        .collect();
    let avg = if samples.is_empty() {
        r.l2_composition.class_fraction(DataClass::Texture)
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    let peak = samples.iter().copied().fold(
        r.l2_composition.class_fraction(DataClass::Texture),
        f64::max,
    );
    Fig11Row {
        scene: scene.id,
        texture_fraction: avg,
        texture_fraction_peak: peak,
        l2_hit_rate: r.l2_stats.total().hit_rate(),
    }
}

/// Run Figure 11: L2 composition and hit rates of Pistol (PBR, 8 maps)
/// versus the Khronos Sponza (basic shading, one map per draw).
pub fn fig11_l2_composition(scale: ExpScale) -> Fig11Result {
    let rows = vec![
        composition_run(&Scene::build(SceneId::Pistol, scale.detail), scale),
        composition_run(&Scene::build(SceneId::SponzaKhronos, scale.detail), scale),
    ];
    Fig11Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_reproduces_the_merge() {
        let r = fig07_mip_merge();
        assert_eq!(r.texels_level0, 4);
        assert_eq!(r.texels_level1, 1);
        assert!(r.to_table().contains("mip 1"));
    }

    #[test]
    fn fig11_pbr_has_more_texture_lines() {
        let r = fig11_l2_composition(ExpScale::quick());
        let pt = r.row(SceneId::Pistol);
        let spl = r.row(SceneId::SponzaKhronos);
        assert!(
            pt.texture_fraction > spl.texture_fraction,
            "PBR must hold more texture lines: {} vs {}",
            pt.texture_fraction,
            spl.texture_fraction
        );
        assert!(pt.texture_fraction > 0.1);
    }
}
