//! Concurrent-execution experiments: Figures 12, 13, 14 and 15.

use crisp_scenes::{holo, nn, vio, ComputeScale, Scene, SceneId};
use crisp_sim::{
    GpuConfig, OccupancySample, PartitionSpec, SimResult, Simulation, SlicerConfig, TapConfig,
};
use crisp_trace::{DataClass, Stream, StreamId, TraceBundle};

use crate::report::{f3, pct, table};
use crate::{COMPUTE_STREAM, GRAPHICS_STREAM};

use super::ExpScale;

/// The paper's three compute workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeKind {
    /// Visual-inertial odometry (many small kernels).
    Vio,
    /// Hologram generation (compute-bound).
    Holo,
    /// RITnet principal kernels (memory-bound, shared-memory GEMMs).
    Nn,
}

impl ComputeKind {
    /// All kinds in paper order.
    pub const ALL: [ComputeKind; 3] = [ComputeKind::Vio, ComputeKind::Holo, ComputeKind::Nn];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            ComputeKind::Vio => "VIO",
            ComputeKind::Holo => "HOLO",
            ComputeKind::Nn => "NN",
        }
    }

    /// Build the workload's stream.
    pub fn build(self, stream: StreamId, scale: ComputeScale) -> Stream {
        match self {
            ComputeKind::Vio => vio(stream, scale),
            ComputeKind::Holo => holo(stream, scale),
            ComputeKind::Nn => nn(stream, scale),
        }
    }
}

impl std::fmt::Display for ComputeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Run one graphics+compute pair under `spec`; returns the full result.
fn run_pair(
    gpu: &GpuConfig,
    spec: PartitionSpec,
    scene: &Scene,
    compute: ComputeKind,
    scale: ExpScale,
    occupancy_interval: u64,
) -> SimResult {
    let (w, h) = scale.res.dims();
    let frame = scene.render(w, h, false, GRAPHICS_STREAM);
    let cstream = compute.build(COMPUTE_STREAM, scale.compute);
    Simulation::builder()
        .gpu(gpu.clone())
        .partition(spec)
        .occupancy_interval(occupancy_interval)
        .trace(TraceBundle::from_streams(vec![frame.trace, cstream]))
        .run_or_panic()
}

/// Makespan metric: cycles until both streams completed.
fn makespan(r: &SimResult) -> u64 {
    r.per_stream
        .values()
        .map(|s| s.stats.finish_cycle)
        .max()
        .unwrap_or(r.cycles)
}

/// One workload pair's normalized results.
#[derive(Debug, Clone)]
pub struct PairRow {
    /// Scene of the pair.
    pub scene: SceneId,
    /// Compute side of the pair.
    pub compute: ComputeKind,
    /// (policy label, speedup normalized to the first policy).
    pub speedups: Vec<(&'static str, f64)>,
}

/// Figure 12: warped-slicer vs the MPS and EVEN baselines on Jetson Orin.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// One row per workload pair; speedups normalized to MPS-even.
    pub rows: Vec<PairRow>,
}

impl Fig12Result {
    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut v = vec![format!("{}+{}", r.scene, r.compute)];
                v.extend(r.speedups.iter().map(|(_, s)| f3(*s)));
                v
            })
            .collect();
        format!(
            "{}\n(speedups normalized to MPS; paper: EVEN fastest overall, NN shows the highest concurrency speedup)\n",
            table(&["pair", "MPS", "EVEN", "Dynamic"], &rows)
        )
    }

    /// Geometric-mean speedup of one policy column.
    pub fn geomean(&self, policy: &str) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.speedups
                    .iter()
                    .find(|(p, _)| *p == policy)
                    .map(|(_, s)| *s)
            })
            .collect();
        assert!(!vals.is_empty(), "unknown policy {policy}");
        (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
    }
}

/// Scene list used for the pairing studies.
fn pair_scenes(scale: ExpScale) -> Vec<SceneId> {
    match scale.res {
        crate::Resolution::Tiny => vec![SceneId::SponzaPbr, SceneId::Pistol],
        _ => vec![
            SceneId::SponzaPbr,
            SceneId::Pistol,
            SceneId::SponzaKhronos,
            SceneId::Planets,
        ],
    }
}

/// Run Figure 12 on the Jetson Orin model: MPS-even vs intra-SM EVEN vs
/// warped-slicer Dynamic, all pairs, normalized to MPS.
pub fn fig12_warped_slicer(scale: ExpScale) -> Fig12Result {
    let gpu = GpuConfig::jetson_orin();
    let mut rows = Vec::new();
    for scene_id in pair_scenes(scale) {
        let scene = Scene::build(scene_id, scale.detail);
        for compute in ComputeKind::ALL {
            let mps = makespan(&run_pair(
                &gpu,
                PartitionSpec::mps_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
                &scene,
                compute,
                scale,
                0,
            ));
            let even = makespan(&run_pair(
                &gpu,
                PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
                &scene,
                compute,
                scale,
                0,
            ));
            let dynamic = makespan(&run_pair(
                &gpu,
                PartitionSpec::fg_dynamic(SlicerConfig::default()),
                &scene,
                compute,
                scale,
                0,
            ));
            rows.push(PairRow {
                scene: scene_id,
                compute,
                speedups: vec![
                    ("MPS", 1.0),
                    ("EVEN", mps as f64 / even as f64),
                    ("Dynamic", mps as f64 / dynamic as f64),
                ],
            });
        }
    }
    Fig12Result { rows }
}

/// Figure 13: the occupancy timeline of the dynamic partition (PT + VIO).
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Occupancy samples over time.
    pub occupancy: Vec<OccupancySample>,
    /// Warped-slicer ratio decisions (cycle, graphics fraction).
    pub slicer_history: Vec<(u64, f64)>,
}

impl Fig13Result {
    /// Text-table rendering (downsampled).
    pub fn to_table(&self) -> String {
        let step = (self.occupancy.len() / 24).max(1);
        let rows: Vec<Vec<String>> = self
            .occupancy
            .iter()
            .step_by(step)
            .map(|s| {
                let g = s.by_stream.get(&GRAPHICS_STREAM).copied().unwrap_or(0.0);
                let c = s.by_stream.get(&COMPUTE_STREAM).copied().unwrap_or(0.0);
                vec![s.cycle.to_string(), pct(g), pct(c), pct(s.total())]
            })
            .collect();
        format!(
            "{}\nslicer decisions: {:?}\n(paper: low-occupancy regions are register-limited)\n",
            table(&["cycle", "graphics occ", "compute occ", "total"], &rows),
            self.slicer_history,
        )
    }

    /// Peak total occupancy over the run.
    pub fn peak_total(&self) -> f64 {
        self.occupancy
            .iter()
            .map(OccupancySample::total)
            .fold(0.0, f64::max)
    }
}

/// Run Figure 13: PT + VIO under the dynamic partition on the Orin model,
/// sampling occupancy densely.
pub fn fig13_occupancy_timeline(scale: ExpScale) -> Fig13Result {
    let gpu = GpuConfig::jetson_orin();
    let scene = Scene::build(SceneId::Pistol, scale.detail);
    let r = run_pair(
        &gpu,
        PartitionSpec::fg_dynamic(SlicerConfig::default()),
        &scene,
        ComputeKind::Vio,
        scale,
        500,
    );
    Fig13Result {
        occupancy: r.occupancy,
        slicer_history: r.slicer_history,
    }
}

/// Figure 14: TAP vs MiG vs MPS on the RTX 3070 model.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// One row per pair; speedups normalized to MPS-even.
    pub rows: Vec<PairRow>,
}

impl Fig14Result {
    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut v = vec![format!("{}+{}", r.scene, r.compute)];
                v.extend(r.speedups.iter().map(|(_, s)| f3(*s)));
                v
            })
            .collect();
        format!(
            "{}\n(paper: TAP outperforms MiG and matches MPS — the pairs are bandwidth-bound, not capacity-bound)\n",
            table(&["pair", "MPS", "MiG", "TAP"], &rows)
        )
    }

    /// Mean speedup of a policy column.
    pub fn mean(&self, policy: &str) -> f64 {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter_map(|r| {
                r.speedups
                    .iter()
                    .find(|(p, _)| *p == policy)
                    .map(|(_, s)| *s)
            })
            .collect();
        assert!(!vals.is_empty(), "unknown policy {policy}");
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Run Figure 14 on the RTX 3070 model.
pub fn fig14_tap(scale: ExpScale) -> Fig14Result {
    let gpu = GpuConfig::rtx3070();
    // Long epochs: a set-window remap orphans resident lines (their
    // index changes), so repartitioning must be rare to amortise the
    // refill — mirroring TAP's slow epoch-level adaptation.
    let tap_cfg = TapConfig {
        epoch_accesses: 250_000,
        sample_every: 4,
        min_sets: 1,
    };
    let mut rows = Vec::new();
    for scene_id in pair_scenes(scale) {
        let scene = Scene::build(scene_id, scale.detail);
        for compute in ComputeKind::ALL {
            let mps = makespan(&run_pair(
                &gpu,
                PartitionSpec::mps_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
                &scene,
                compute,
                scale,
                0,
            ));
            let mig = makespan(&run_pair(
                &gpu,
                PartitionSpec::mig_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
                &scene,
                compute,
                scale,
                0,
            ));
            let tap = makespan(&run_pair(
                &gpu,
                PartitionSpec::tap_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM, tap_cfg),
                &scene,
                compute,
                scale,
                0,
            ));
            rows.push(PairRow {
                scene: scene_id,
                compute,
                speedups: vec![
                    ("MPS", 1.0),
                    ("MiG", mps as f64 / mig as f64),
                    ("TAP", mps as f64 / tap as f64),
                ],
            });
        }
    }
    Fig14Result { rows }
}

/// Figure 15: the L2 composition under TAP for SPH + HOLO.
#[derive(Debug, Clone)]
pub struct Fig15Result {
    /// Fraction of valid lines per (label, fraction) class.
    pub fractions: Vec<(&'static str, f64)>,
    /// TAP's final set allocation (stream, sets).
    pub tap_allocation: Vec<(StreamId, u64)>,
}

impl Fig15Result {
    /// Fraction of lines held by the rendering stream.
    pub fn rendering_fraction(&self) -> f64 {
        self.fractions
            .iter()
            .filter(|(l, _)| *l != "compute")
            .map(|(_, f)| f)
            .sum()
    }

    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .fractions
            .iter()
            .map(|(l, f)| vec![l.to_string(), pct(*f)])
            .collect();
        format!(
            "{}\nTAP allocation: {:?}\n(paper: TAP allocates most cache lines to rendering because HOLO is compute-bound)\n",
            table(&["class", "share of valid L2 lines"], &rows),
            self.tap_allocation,
        )
    }
}

/// Run Figure 15: SPH + HOLO with TAP on the RTX 3070 model, reporting the
/// final composition breakdown.
pub fn fig15_tap_composition(scale: ExpScale) -> Fig15Result {
    let gpu = GpuConfig::rtx3070();
    // A shorter epoch than Figure 14's: this run is a single frame and the
    // interesting output is the *allocation* TAP converges to, so the
    // controller must get at least one re-evaluation in.
    let tap_cfg = TapConfig {
        epoch_accesses: 40_000,
        sample_every: 4,
        min_sets: 1,
    };
    let scene = Scene::build(SceneId::SponzaPbr, scale.detail);
    let r = run_pair(
        &gpu,
        PartitionSpec::tap_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM, tap_cfg),
        &scene,
        ComputeKind::Holo,
        scale,
        0,
    );
    let comp = &r.l2_composition;
    let fractions = vec![
        ("texture", comp.class_fraction(DataClass::Texture)),
        ("pipeline", comp.class_fraction(DataClass::Pipeline)),
        ("compute", comp.class_fraction(DataClass::Compute)),
    ];
    Fig15Result {
        fractions,
        tap_allocation: r.tap_allocation.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_kinds_build() {
        for k in ComputeKind::ALL {
            let s = k.build(COMPUTE_STREAM, ComputeScale::tiny());
            assert!(s.kernel_count() > 0, "{k}");
        }
    }

    #[test]
    fn fig12_quick_produces_all_pairs() {
        let r = fig12_warped_slicer(ExpScale::quick());
        assert_eq!(r.rows.len(), 2 * 3, "2 scenes × 3 computes at quick scale");
        for row in &r.rows {
            for (p, s) in &row.speedups {
                assert!(*s > 0.1, "{p} speedup degenerate: {s}");
            }
        }
        // EVEN should at least compete with MPS on average (paper: EVEN is
        // the fastest of the three).
        assert!(
            r.geomean("EVEN") > 0.8,
            "EVEN geomean {}",
            r.geomean("EVEN")
        );
        assert!(r.to_table().contains("Dynamic"));
    }

    #[test]
    fn fig13_timeline_shows_both_streams() {
        let r = fig13_occupancy_timeline(ExpScale::quick());
        assert!(!r.occupancy.is_empty());
        assert!(r.peak_total() > 0.05);
    }

    #[test]
    fn fig14_quick_runs_all_policies() {
        let r = fig14_tap(ExpScale::quick());
        assert_eq!(r.rows.len(), 6);
        // TAP must not collapse (paper: TAP ≈ MPS).
        assert!(r.mean("TAP") > 0.6, "TAP mean {}", r.mean("TAP"));
    }

    #[test]
    fn fig15_rendering_dominates_the_l2() {
        let r = fig15_tap_composition(ExpScale::quick());
        let total: f64 = r.fractions.iter().map(|(_, f)| f).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {total}"
        );
        assert!(
            r.rendering_fraction() > 0.5,
            "rendering must dominate: {}",
            r.rendering_fraction()
        );
    }
}
