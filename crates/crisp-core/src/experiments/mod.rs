//! Experiment runners: one per table/figure of the paper.
//!
//! Every runner takes an [`ExpScale`] so the same code serves fast unit
//! tests ([`ExpScale::quick`]) and the full bench harness
//! ([`ExpScale::paper`]), and returns a typed result with a text-table
//! rendering. The `crisp-bench` binaries are thin wrappers over these.
//!
//! | Paper artifact | Runner |
//! |---|---|
//! | Figure 3 (VS invocation correlation) | [`fig03_vertex_batching`] |
//! | Figure 5/8 (rendered frames) | [`render_scene_to_ppm`] |
//! | Table II (configs) | [`table02_configs`] |
//! | Figure 6 (frame-time correlation) | [`fig06_frame_correlation`] |
//! | Figure 7 (mip merge demo) | [`fig07_mip_merge`] |
//! | Figure 9 (LoD MAPE) | [`fig09_lod_mape`] |
//! | Figure 10 (tex lines / CTA) | [`fig10_texlines_histogram`] |
//! | Figure 11 (L2 composition) | [`fig11_l2_composition`] |
//! | Figure 12 (warped-slicer) | [`fig12_warped_slicer`] |
//! | Figure 13 (occupancy timeline) | [`fig13_occupancy_timeline`] |
//! | Figure 14 (TAP vs MiG vs MPS) | [`fig14_tap`] |
//! | Figure 15 (TAP composition) | [`fig15_tap_composition`] |

mod ablations;
mod composition;
mod concurrent;
mod renders;
mod table02;
mod validation;

pub use ablations::{
    ablation_batch_size, ablation_l1_ports, ablation_mig_banks, ablation_mshr,
    ablation_replacement, ablation_scheduler, BatchSizeAblation, HwSweep,
};
pub use composition::{fig07_mip_merge, fig11_l2_composition, Fig07Result, Fig11Result, Fig11Row};
pub use concurrent::{
    fig12_warped_slicer, fig13_occupancy_timeline, fig14_tap, fig15_tap_composition, ComputeKind,
    Fig12Result, Fig13Result, Fig14Result, Fig15Result, PairRow,
};
pub use renders::render_scene_to_ppm;
pub use table02::{table02_configs, Table02Result};
pub use validation::{
    fig03_vertex_batching, fig06_frame_correlation, fig09_lod_mape, fig10_texlines_histogram,
    Fig03Result, Fig06Result, Fig09Result, Fig10Result,
};

use crisp_scenes::ComputeScale;

use crate::Resolution;

/// Scaling knobs shared by the experiment runners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpScale {
    /// Scene tessellation detail (1.0 = evaluation size).
    pub detail: f32,
    /// Render resolution.
    pub res: Resolution,
    /// Compute workload grid scaling.
    pub compute: ComputeScale,
}

impl ExpScale {
    /// Tiny sizes for unit/integration tests (seconds, not minutes).
    pub fn quick() -> Self {
        ExpScale {
            detail: 0.2,
            res: Resolution::Tiny,
            compute: ComputeScale::tiny(),
        }
    }

    /// The default evaluation scale used by the bench harness.
    pub fn paper() -> Self {
        ExpScale {
            detail: 1.0,
            res: Resolution::Scaled2K,
            compute: ComputeScale::default(),
        }
    }
}
