//! Frame renders: Figures 5 (Planets) and 8 (Sponza LoD on/off).

use std::path::Path;

use crisp_scenes::{Scene, SceneId};

use crate::{Resolution, GRAPHICS_STREAM};

/// Render `scene` and write the frame as a PPM image; returns the
/// framebuffer coverage so callers can sanity-check the output.
///
/// # Errors
///
/// Propagates I/O errors from the PPM writer.
pub fn render_scene_to_ppm(
    id: SceneId,
    detail: f32,
    res: Resolution,
    lod0: bool,
    path: impl AsRef<Path>,
) -> std::io::Result<f64> {
    let (w, h) = res.dims();
    let scene = Scene::build(id, detail);
    let f = scene.render(w, h, lod0, GRAPHICS_STREAM);
    f.framebuffer.write_ppm(path)?;
    Ok(f.framebuffer.coverage())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planets_render_writes_a_ppm() {
        let p = std::env::temp_dir().join("crisp_fig05_test.ppm");
        let cov = render_scene_to_ppm(SceneId::Planets, 0.2, Resolution::Tiny, false, &p).unwrap();
        assert!(cov > 0.02, "planets frame too empty: {cov}");
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P6"));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn lod_toggle_changes_the_image() {
        let pa = std::env::temp_dir().join("crisp_fig08_on.ppm");
        let pb = std::env::temp_dir().join("crisp_fig08_off.ppm");
        let _ =
            render_scene_to_ppm(SceneId::SponzaKhronos, 0.2, Resolution::Tiny, false, &pa).unwrap();
        let _ =
            render_scene_to_ppm(SceneId::SponzaKhronos, 0.2, Resolution::Tiny, true, &pb).unwrap();
        let a = std::fs::read(&pa).unwrap();
        let b = std::fs::read(&pb).unwrap();
        assert_ne!(a, b, "mip-0 sampling must change texel colours");
        let _ = std::fs::remove_file(pa);
        let _ = std::fs::remove_file(pb);
    }
}
