//! Table II: the two simulated GPU configurations.

use crisp_sim::GpuConfig;

use crate::report::table;

/// Table II rendered from the live config presets.
#[derive(Debug, Clone)]
pub struct Table02Result {
    /// The two configurations.
    pub configs: Vec<GpuConfig>,
}

impl Table02Result {
    /// Text-table rendering matching the paper's rows.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = vec![
            row("# SMs", &self.configs, |c| c.n_sms.to_string()),
            row("# Registers / SM", &self.configs, |c| {
                c.sm.max_regs.to_string()
            }),
            row("L1D + Shared / SM", &self.configs, |c| {
                format!("{} KB", (c.l1_bytes + c.sm.max_smem as u64) >> 10)
            }),
            row("Warps / SM", &self.configs, |c| c.sm.max_warps.to_string()),
            row("Schedulers / SM", &self.configs, |c| {
                c.sm.schedulers.to_string()
            }),
            row("Exec units", &self.configs, |c| {
                format!(
                    "{} FP, {} SFU, {} INT, {} TENSOR",
                    c.sm.fp_units, c.sm.sfu_units, c.sm.int_units, c.sm.tensor_units
                )
            }),
            row("L2 cache", &self.configs, |c| {
                format!("{} MB", c.l2_bytes >> 20)
            }),
            row("Core clock", &self.configs, |c| {
                format!("{} MHz", c.core_clock_mhz)
            }),
            row("Memory BW", &self.configs, |c| {
                format!("{} GB/s", c.dram_gbps)
            }),
        ];
        let headers: Vec<&str> = std::iter::once("")
            .chain(self.configs.iter().map(|c| c.name.as_str()))
            .collect();
        table(&headers, &rows)
    }
}

fn row(label: &str, configs: &[GpuConfig], f: impl Fn(&GpuConfig) -> String) -> Vec<String> {
    std::iter::once(label.to_string())
        .chain(configs.iter().map(f))
        .collect()
}

/// Produce Table II from the Jetson Orin and RTX 3070 presets.
pub fn table02_configs() -> Table02Result {
    Table02Result {
        configs: vec![GpuConfig::jetson_orin(), GpuConfig::rtx3070()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_headline_numbers() {
        let t = table02_configs();
        let s = t.to_table();
        assert!(s.contains("Jetson Orin"));
        assert!(s.contains("RTX 3070"));
        assert!(s.contains("14"));
        assert!(s.contains("46"));
        assert!(s.contains("65536"));
        assert!(s.contains("4 MB"));
        assert!(s.contains("200 GB/s"));
        assert!(s.contains("448 GB/s"));
    }
}
