//! Validation experiments: Figures 3, 6, 9 and 10.

use crisp_scenes::silicon::{correlation, mape, Silicon};
use crisp_scenes::{all_scenes, Scene, SceneId};
use crisp_sim::{GpuConfig, PartitionSpec, Simulation, Telemetry};
use crisp_trace::{KernelTrace, Space, Stream, TexLinesHistogram, TraceBundle, SECTOR_BYTES};

use crate::report::{f3, pct, table};
use crate::{Resolution, GRAPHICS_STREAM};

use super::ExpScale;

/// Figure 3: vertex-shader invocation correlation at batch size 96.
#[derive(Debug, Clone)]
pub struct Fig03Result {
    /// (drawcall label, hardware-profiler threads, simulator threads).
    pub points: Vec<(String, u64, u64)>,
    /// Pearson correlation between the two series.
    pub correlation: f64,
}

impl Fig03Result {
    /// Render as a text table plus the headline number.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|(n, hw, sim)| vec![n.clone(), hw.to_string(), sim.to_string()])
            .collect();
        format!(
            "{}\ncorrelation = {}\n",
            table(&["drawcall", "hw threads", "sim threads"], &rows),
            f3(self.correlation)
        )
    }
}

/// Run Figure 3: render every scene, compare per-drawcall VS invocation
/// counts (profiler = true thread count; simulator = launched warps × 32,
/// the source of the paper's bottom-left deviation).
pub fn fig03_vertex_batching(scale: ExpScale) -> Fig03Result {
    let (w, h) = scale.res.dims();
    let mut points = Vec::new();
    for scene in all_scenes(scale.detail) {
        let f = scene.render(w, h, false, GRAPHICS_STREAM);
        for d in &f.stats.draws {
            points.push((
                format!("{}:{}", scene.id, d.name),
                Silicon::vs_thread_count(d.vs_invocations),
                d.vs_threads_from_warps,
            ));
        }
    }
    let xs: Vec<f64> = points.iter().map(|p| p.1 as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.2 as f64).collect();
    Fig03Result {
        correlation: correlation(&xs, &ys),
        points,
    }
}

/// One Figure 6 data point.
#[derive(Debug, Clone)]
pub struct Fig06Row {
    /// Scene label.
    pub scene: SceneId,
    /// Resolution label ("2K"/"4K").
    pub res: &'static str,
    /// Hardware-reference frame time (ms).
    pub hw_ms: f64,
    /// Simulated frame time (ms).
    pub sim_ms: f64,
}

/// Figure 6: frame-time correlation against the silicon reference.
#[derive(Debug, Clone)]
pub struct Fig06Result {
    /// All (scene, resolution) points.
    pub rows: Vec<Fig06Row>,
    /// Pearson correlation (paper: 94.8%).
    pub correlation: f64,
    /// Fraction of points where the simulator is slower than hardware
    /// (paper: "the simulated frame time is always longer").
    pub sim_longer_fraction: f64,
}

impl Fig06Result {
    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scene.to_string(),
                    r.res.to_string(),
                    f3(r.hw_ms),
                    f3(r.sim_ms),
                    f3(r.sim_ms / r.hw_ms),
                ]
            })
            .collect();
        format!(
            "{}\ncorrelation = {}  (paper: 0.948)\nsim longer than hw on {} of points\n",
            table(&["scene", "res", "hw ms", "sim ms", "sim/hw"], &rows),
            f3(self.correlation),
            pct(self.sim_longer_fraction),
        )
    }
}

/// Simulate a graphics-only frame and return total cycles.
fn simulate_frame(gpu: &GpuConfig, trace: Stream) -> u64 {
    Simulation::builder()
        .gpu(gpu.clone())
        .partition(PartitionSpec::greedy())
        .telemetry(Telemetry::NONE)
        .trace(TraceBundle::from_streams(vec![trace]))
        .run_or_panic()
        .cycles
}

/// Run Figure 6 on the RTX 3070 model: every scene at the 2K- and 4K-class
/// resolutions (quick scale simulates at reduced sizes).
pub fn fig06_frame_correlation(scale: ExpScale) -> Fig06Result {
    let gpu = GpuConfig::rtx3070();
    let resolutions: Vec<Resolution> = match scale.res {
        Resolution::Tiny => vec![Resolution::Tiny],
        _ => vec![Resolution::Scaled2K, Resolution::Scaled4K],
    };
    let mut rows = Vec::new();
    for scene in all_scenes(scale.detail) {
        for &res in &resolutions {
            let (w, h) = res.dims();
            let f = scene.render(w, h, false, GRAPHICS_STREAM);
            let hw_ms = Silicon::frame_time_ms(
                &format!("{}@{}", scene.id, res.label()),
                &scene.draws,
                &f.stats,
                gpu.n_sms,
                gpu.core_clock_mhz,
                gpu.dram_gbps,
            );
            let cycles = simulate_frame(&gpu, f.trace);
            rows.push(Fig06Row {
                scene: scene.id,
                res: res.label(),
                hw_ms,
                sim_ms: gpu.cycles_to_ms(cycles),
            });
        }
    }
    let xs: Vec<f64> = rows.iter().map(|r| r.hw_ms).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r.sim_ms).collect();
    let longer = rows.iter().filter(|r| r.sim_ms > r.hw_ms).count();
    Fig06Result {
        correlation: correlation(&xs, &ys),
        sim_longer_fraction: longer as f64 / rows.len() as f64,
        rows,
    }
}

/// L1 texture sector requests per fragment kernel of a trace (what the LSU
/// presents to the unified L1): the simulator-side series of Figure 9.
fn tex_sectors_per_draw(trace: &Stream) -> Vec<(String, u64)> {
    trace
        .kernels()
        .filter(|k| k.name.starts_with("fs:"))
        .map(|k| (k.name.clone(), tex_sectors(k)))
        .collect()
}

fn tex_sectors(k: &KernelTrace) -> u64 {
    let mut n = 0;
    for cta in &k.ctas {
        for w in &cta.warps {
            for i in w.iter() {
                if let Some(m) = &i.mem {
                    if m.space == Space::Tex {
                        n += m.distinct_chunks(SECTOR_BYTES).len() as u64;
                    }
                }
            }
        }
    }
    n
}

/// Figure 9: L1 texture-access error with and without LoD.
#[derive(Debug, Clone)]
pub struct Fig09Result {
    /// (drawcall, hw reference, sim LoD on, sim LoD off).
    pub rows: Vec<(String, f64, u64, u64)>,
    /// MAPE of the LoD-on model (paper: 33%).
    pub mape_lod_on: f64,
    /// MAPE of the LoD-off model (paper: 219%).
    pub mape_lod_off: f64,
}

impl Fig09Result {
    /// MAPE improvement factor (paper: 6.6×).
    pub fn improvement(&self) -> f64 {
        self.mape_lod_off / self.mape_lod_on.max(1e-9)
    }

    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(n, hw, on, off)| {
                vec![
                    n.clone(),
                    format!("{hw:.0}"),
                    on.to_string(),
                    off.to_string(),
                ]
            })
            .collect();
        format!(
            "{}\nMAPE LoD on  = {} (paper 33%)\nMAPE LoD off = {} (paper 219%)\nimprovement  = {:.1}x (paper 6.6x)\n",
            table(&["drawcall", "hw tex accesses", "sim (LoD on)", "sim (LoD off)"], &rows),
            pct(self.mape_lod_on),
            pct(self.mape_lod_off),
            self.improvement(),
        )
    }
}

/// Run Figure 9: per-drawcall L1 texture sector counts with LoD on/off
/// versus the silicon reference counters.
pub fn fig09_lod_mape(scale: ExpScale) -> Fig09Result {
    let (w, h) = scale.res.dims();
    let mut rows = Vec::new();
    for scene in all_scenes(scale.detail) {
        let on = scene.render(w, h, false, GRAPHICS_STREAM);
        let off = scene.render(w, h, true, GRAPHICS_STREAM);
        let on_draws = tex_sectors_per_draw(&on.trace);
        let off_draws = tex_sectors_per_draw(&off.trace);
        assert_eq!(on_draws.len(), off_draws.len());
        for ((name, s_on), (_, s_off)) in on_draws.into_iter().zip(off_draws) {
            if s_on == 0 {
                continue;
            }
            let label = format!("{}:{}", scene.id, name);
            let hw = Silicon::l1_tex_accesses(&label, s_on);
            rows.push((label, hw, s_on, s_off));
        }
    }
    let hw: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let on: Vec<f64> = rows.iter().map(|r| r.2 as f64).collect();
    let off: Vec<f64> = rows.iter().map(|r| r.3 as f64).collect();
    Fig09Result {
        mape_lod_on: mape(&on, &hw),
        mape_lod_off: mape(&off, &hw),
        rows,
    }
}

/// Figure 10: the histogram of texture cache lines per CTA for one
/// drawcall of Sponza.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Kernel analysed.
    pub kernel: String,
    /// The per-CTA histogram.
    pub histogram: TexLinesHistogram,
}

impl Fig10Result {
    /// Text-table rendering.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .histogram
            .buckets()
            .map(|(lines, ctas)| vec![lines.to_string(), ctas.to_string()])
            .collect();
        format!(
            "kernel: {}\n{}\nmean = {} lines/tex-instr per CTA (paper range 2.54-21.19)\n",
            self.kernel,
            table(&["tex lines / instr", "CTAs"], &rows),
            f3(self.histogram.mean()),
        )
    }
}

/// Run Figure 10 on the largest fragment kernel of a Sponza frame.
pub fn fig10_texlines_histogram(scale: ExpScale) -> Fig10Result {
    let (w, h) = scale.res.dims();
    let scene = Scene::build(SceneId::SponzaKhronos, scale.detail);
    let f = scene.render(w, h, false, GRAPHICS_STREAM);
    let kernel = f
        .trace
        .kernels()
        .filter(|k| k.name.starts_with("fs:"))
        .max_by_key(|k| k.grid())
        .expect("scene has fragment kernels");
    Fig10Result {
        kernel: kernel.name.clone(),
        histogram: TexLinesHistogram::of_kernel(kernel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_correlates_strongly() {
        let r = fig03_vertex_batching(ExpScale::quick());
        assert!(
            r.points.len() >= 20,
            "need many drawcalls, got {}",
            r.points.len()
        );
        assert!(
            r.correlation > 0.95,
            "warps×32 must track true threads: {}",
            r.correlation
        );
        // Simulator-side counts round up, so sim >= hw everywhere.
        assert!(r.points.iter().all(|(_, hw, sim)| sim >= hw));
        assert!(r.to_table().contains("correlation"));
    }

    #[test]
    fn fig09_lod_off_is_much_worse() {
        let r = fig09_lod_mape(ExpScale::quick());
        assert!(
            r.mape_lod_on < 0.6,
            "LoD-on MAPE too big: {}",
            r.mape_lod_on
        );
        assert!(
            r.mape_lod_off > 2.0 * r.mape_lod_on,
            "LoD-off must be far worse: {} vs {}",
            r.mape_lod_off,
            r.mape_lod_on
        );
        assert!(r.improvement() > 2.0);
    }

    #[test]
    fn fig10_histogram_has_mass() {
        let r = fig10_texlines_histogram(ExpScale::quick());
        assert!(r.histogram.total_ctas() > 0);
        assert!(r.histogram.mean() >= 1.0);
        assert!(r.to_table().contains("CTAs"));
    }

    #[test]
    fn fig06_quick_correlates() {
        // At the tiny test scale, frames are drain-dominated and the
        // scene-to-scene spread is mostly noise, so only weak correlation
        // is expected here; the paper-scale run reaches ~0.95 (see
        // EXPERIMENTS.md).
        let r = fig06_frame_correlation(ExpScale::quick());
        assert_eq!(r.rows.len(), 6, "six scenes at tiny res");
        assert!(
            r.correlation > 0.2,
            "correlation too low: {}",
            r.correlation
        );
        assert!(r.rows.iter().all(|row| row.sim_ms > 0.0 && row.hw_ms > 0.0));
        // The "sim is always longer than hw" property is a paper-scale
        // claim (throughput-bound frames); drain-bound tiny frames don't
        // exhibit it, so it is asserted by the bench run, not here.
    }
}
