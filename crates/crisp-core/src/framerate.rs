//! Frame-rate simulation: drive an animated scene through the simulator
//! and report per-frame times.
//!
//! Renders an orbiting-camera sequence ([`crisp_scenes::Scene::render_sequence`]),
//! replays it (optionally alongside a per-frame compute workload), and
//! splits the kernel timeline back into frames using the drawcall
//! boundaries — the frames-per-second view a game developer gets from the
//! profiler.

use crisp_scenes::Scene;
use crisp_sim::{GpuConfig, PartitionSpec, SimResult, Simulation, Telemetry};
use crisp_trace::{Stream, TraceBundle};

use crate::GRAPHICS_STREAM;

/// Per-frame timing extracted from a sequence run.
#[derive(Debug, Clone)]
pub struct FrameTimes {
    /// Cycle at which each frame's last kernel committed.
    pub frame_end_cycles: Vec<u64>,
    /// The full simulation result.
    pub result: SimResult,
}

impl FrameTimes {
    /// Duration of frame `i` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame_cycles(&self, i: usize) -> u64 {
        let end = self.frame_end_cycles[i];
        let start = if i == 0 {
            0
        } else {
            self.frame_end_cycles[i - 1]
        };
        end - start
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.frame_end_cycles.len()
    }

    /// Mean frames per second at the GPU's clock.
    pub fn fps(&self, gpu: &GpuConfig) -> f64 {
        let total_ms: f64 = gpu.cycles_to_ms(*self.frame_end_cycles.last().expect("frames"));
        self.frames() as f64 / (total_ms / 1e3)
    }
}

/// Simulate `n_frames` of `scene` at `width`×`height`, optionally running
/// `companion` (a compute stream) concurrently under `spec`.
///
/// # Panics
///
/// Panics if `n_frames` is zero (via `render_sequence`).
pub fn simulate_frames(
    scene: &Scene,
    width: u32,
    height: u32,
    n_frames: usize,
    gpu: &GpuConfig,
    spec: PartitionSpec,
    companion: Option<Stream>,
) -> FrameTimes {
    let (trace, per_frame_stats) =
        scene.render_sequence(width, height, false, GRAPHICS_STREAM, n_frames);
    let kernels_per_frame: Vec<usize> = per_frame_stats.iter().map(|s| s.draws.len() * 2).collect();
    let mut streams = vec![trace];
    if let Some(c) = companion {
        streams.push(c);
    }
    let result = Simulation::builder()
        .gpu(gpu.clone())
        .partition(spec)
        .telemetry(Telemetry::NONE)
        .trace(TraceBundle::from_streams(streams))
        .run_or_panic();

    // Split the graphics kernel log back into frames.
    let gfx_ends: Vec<u64> = result
        .kernel_log
        .iter()
        .filter(|k| k.stream == GRAPHICS_STREAM)
        .map(|k| k.end_cycle)
        .collect();
    let mut frame_end_cycles = Vec::with_capacity(n_frames);
    let mut idx = 0;
    for &n in &kernels_per_frame {
        idx += n;
        frame_end_cycles.push(gfx_ends[idx - 1]);
    }
    FrameTimes {
        frame_end_cycles,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::COMPUTE_STREAM;
    use crisp_scenes::{vio, ComputeScale, SceneId};

    #[test]
    fn frame_boundaries_are_monotone() {
        let scene = Scene::build(SceneId::Platformer, 0.2);
        let gpu = GpuConfig::test_tiny();
        let ft = simulate_frames(&scene, 96, 54, 3, &gpu, PartitionSpec::greedy(), None);
        assert_eq!(ft.frames(), 3);
        assert!(ft.frame_end_cycles.windows(2).all(|w| w[0] < w[1]));
        for i in 0..3 {
            assert!(ft.frame_cycles(i) > 0);
        }
        assert!(ft.fps(&gpu) > 0.0);
    }

    #[test]
    fn companion_compute_runs_alongside_the_sequence() {
        let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
        let gpu = GpuConfig::jetson_orin();
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
        let ft = simulate_frames(
            &scene,
            96,
            54,
            2,
            &gpu,
            spec,
            Some(vio(COMPUTE_STREAM, ComputeScale::tiny())),
        );
        assert_eq!(ft.frames(), 2);
        assert!(ft.result.per_stream[&COMPUTE_STREAM].stats.instructions > 0);
    }
}
