//! CRISP: a Concurrent Rendering and Compute Simulation Platform for GPUs.
//!
//! This is the top-level crate of the CRISP reproduction: it ties the
//! functional graphics pipeline (`crisp-gfx`), the workload suite
//! (`crisp-scenes`) and the cycle-level concurrent GPU simulator
//! (`crisp-sim`) into one API, and hosts the experiment runners that
//! regenerate every figure of the paper (see [`experiments`]).
//!
//! # Quickstart
//!
//! Render a frame of the Sponza scene, pair it with the VIO compute
//! workload, and simulate both concurrently on a Jetson Orin under a
//! fine-grained intra-SM partition:
//!
//! ```
//! use crisp_core::prelude::*;
//!
//! // Graphics: one frame of Sponza at a tiny test resolution.
//! let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
//! let frame = scene.render(96, 54, false, GRAPHICS_STREAM);
//!
//! // Compute: the VIO kernel chain.
//! let compute = vio(COMPUTE_STREAM, ComputeScale::tiny());
//!
//! // Concurrent simulation under an even intra-SM split.
//! let gpu = GpuConfig::test_tiny();
//! let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
//! let result = simulate(gpu, spec, concurrent_bundle(frame.trace, compute));
//! assert!(result.cycles > 0);
//! ```

pub mod experiments;
pub mod framerate;
pub mod qos;
pub mod report;

use crisp_sim::Simulation;
use crisp_trace::{Stream, StreamId, TraceBundle};

/// The stream id CRISP uses for rendering work.
pub const GRAPHICS_STREAM: StreamId = StreamId(0);

/// The stream id CRISP uses for general compute work.
pub const COMPUTE_STREAM: StreamId = StreamId(1);

/// Scaled evaluation resolutions. The paper samples scenes at 2K
/// (2560×1440) and 4K (3840×2160); this reproduction renders at 1/4 linear
/// scale (1/16 of the pixels) to keep cycle-level simulation tractable —
/// the same concession the paper's artifact makes by tracing at 480p — and
/// preserves the paper's 4× pixel ratio between the two points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 2K-class evaluation point (640×360 at 1/4 scale).
    Scaled2K,
    /// 4K-class evaluation point (1280×720 at 1/4 scale).
    Scaled4K,
    /// Tiny resolution for unit/integration tests.
    Tiny,
}

impl Resolution {
    /// (width, height) in pixels.
    pub fn dims(self) -> (u32, u32) {
        match self {
            Resolution::Scaled2K => (640, 360),
            Resolution::Scaled4K => (1280, 720),
            Resolution::Tiny => (160, 90),
        }
    }

    /// Label used in reports ("2K"/"4K" per the paper's naming).
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Scaled2K => "2K",
            Resolution::Scaled4K => "4K",
            Resolution::Tiny => "tiny",
        }
    }
}

/// Bundle one graphics stream and one compute stream for concurrent replay.
///
/// # Panics
///
/// Panics if the two streams share an id.
pub fn concurrent_bundle(graphics: Stream, compute: Stream) -> TraceBundle {
    TraceBundle::from_streams(vec![graphics, compute])
}

/// Build, load and run a simulation in one call.
pub fn simulate(
    gpu: crisp_sim::GpuConfig,
    spec: crisp_sim::PartitionSpec,
    bundle: TraceBundle,
) -> crisp_sim::SimResult {
    Simulation::builder()
        .gpu(gpu)
        .partition(spec)
        .trace(bundle)
        .run_or_panic()
}

/// Everything a CRISP user typically needs.
pub mod prelude {
    pub use crate::framerate::{simulate_frames, FrameTimes};
    pub use crate::qos::{Deadline, QosReport};
    pub use crate::{concurrent_bundle, simulate, Resolution, COMPUTE_STREAM, GRAPHICS_STREAM};
    pub use crisp_gfx::{
        DrawCall, FragmentShader, FrameStats, Framebuffer, RenderConfig, Renderer, Texture,
        VertexShader,
    };
    pub use crisp_scenes::{holo, nn, vio, ComputeScale, Scene, SceneId, Silicon};
    pub use crisp_sim::{
        DeadlockReport, GpuConfig, GpuSim, L2Policy, PartitionSpec, SimError, SimResult,
        Simulation, SimulationBuilder, SlicerConfig, SmPartition, TapConfig, Telemetry,
    };
    pub use crisp_trace::{DataClass, Stream, StreamId, StreamKind, TraceBundle};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn resolutions_keep_the_4x_pixel_ratio() {
        let (w2, h2) = Resolution::Scaled2K.dims();
        let (w4, h4) = Resolution::Scaled4K.dims();
        assert_eq!(w4 as u64 * h4 as u64, 4 * w2 as u64 * h2 as u64);
        assert_eq!(Resolution::Scaled2K.label(), "2K");
    }

    #[test]
    fn quickstart_pair_runs_concurrently() {
        let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
        let frame = scene.render(96, 54, false, GRAPHICS_STREAM);
        let compute = vio(COMPUTE_STREAM, ComputeScale::tiny());
        let gpu = GpuConfig::test_tiny();
        let spec = PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM);
        let r = simulate(gpu, spec, concurrent_bundle(frame.trace, compute));
        assert!(r.per_stream[&GRAPHICS_STREAM].stats.instructions > 0);
        assert!(r.per_stream[&COMPUTE_STREAM].stats.instructions > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate stream ids")]
    fn bundle_rejects_same_id() {
        let a = Stream::new(StreamId(0), StreamKind::Graphics);
        let b = Stream::new(StreamId(0), StreamKind::Compute);
        let _ = concurrent_bundle(a, b);
    }
}
