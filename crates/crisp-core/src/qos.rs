//! Quality-of-service analysis for concurrent XR workloads.
//!
//! The paper's conclusion names this as the open problem CRISP enables:
//! "XR workloads have distinct quality-of-service requirements, which must
//! be considered in the system design as well." This module evaluates a
//! [`crisp_sim::SimResult`] against per-stream deadlines — the
//! motion-to-photon (MTP) budget for rendering/timewarp, the camera frame
//! interval for VIO — and reports slack or violations.

use std::collections::BTreeMap;

use crisp_sim::{GpuConfig, SimResult};
use crisp_trace::StreamId;

/// A per-stream latency requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// Budget in milliseconds from stream start to completion.
    pub budget_ms: f64,
}

impl Deadline {
    /// The 15–20 ms motion-to-photon budget; use the strict end ("the
    /// required 15-20 ms MTP to prevent user sickness").
    pub fn motion_to_photon() -> Self {
        Deadline { budget_ms: 15.0 }
    }

    /// A 30 Hz camera pipeline (VIO must keep up with frame arrival).
    pub fn camera_30hz() -> Self {
        Deadline { budget_ms: 33.3 }
    }

    /// A custom budget.
    pub fn ms(budget_ms: f64) -> Self {
        assert!(budget_ms > 0.0, "budget must be positive");
        Deadline { budget_ms }
    }
}

/// One stream's QoS verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosVerdict {
    /// The latency actually achieved (ms, stream start → finish).
    pub latency_ms: f64,
    /// The budget it was held to.
    pub budget_ms: f64,
}

impl QosVerdict {
    /// Remaining slack (negative = violated).
    pub fn slack_ms(&self) -> f64 {
        self.budget_ms - self.latency_ms
    }

    /// Whether the deadline was met.
    pub fn met(&self) -> bool {
        self.latency_ms <= self.budget_ms
    }

    /// Fraction of the budget consumed.
    pub fn utilisation(&self) -> f64 {
        self.latency_ms / self.budget_ms
    }
}

/// QoS report over all constrained streams.
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Per-stream verdicts.
    pub verdicts: BTreeMap<StreamId, QosVerdict>,
}

impl QosReport {
    /// Evaluate a simulation against per-stream deadlines. Streams without
    /// a deadline are unconstrained (best-effort).
    ///
    /// # Panics
    ///
    /// Panics if a deadline references a stream the simulation didn't run.
    pub fn evaluate(
        result: &SimResult,
        gpu: &GpuConfig,
        deadlines: impl IntoIterator<Item = (StreamId, Deadline)>,
    ) -> Self {
        let mut verdicts = BTreeMap::new();
        for (id, d) in deadlines {
            let stream = result
                .per_stream
                .get(&id)
                .unwrap_or_else(|| panic!("deadline for unknown stream {id}"));
            let latency_ms = gpu.cycles_to_ms(stream.stats.elapsed());
            verdicts.insert(
                id,
                QosVerdict {
                    latency_ms,
                    budget_ms: d.budget_ms,
                },
            );
        }
        QosReport { verdicts }
    }

    /// Whether every constrained stream met its deadline.
    pub fn all_met(&self) -> bool {
        self.verdicts.values().all(QosVerdict::met)
    }

    /// The tightest verdict (smallest slack), if any stream is constrained.
    pub fn critical(&self) -> Option<(StreamId, QosVerdict)> {
        self.verdicts
            .iter()
            .min_by(|a, b| {
                a.1.slack_ms()
                    .partial_cmp(&b.1.slack_ms())
                    .expect("finite slack")
            })
            .map(|(&id, &v)| (id, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::{concurrent_bundle, simulate, COMPUTE_STREAM, GRAPHICS_STREAM};

    fn run() -> (SimResult, GpuConfig) {
        let gpu = GpuConfig::jetson_orin();
        let f = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, GRAPHICS_STREAM);
        let r = simulate(
            gpu.clone(),
            PartitionSpec::fg_even(&gpu, GRAPHICS_STREAM, COMPUTE_STREAM),
            concurrent_bundle(f.trace, vio(COMPUTE_STREAM, ComputeScale::tiny())),
        );
        (r, gpu)
    }

    #[test]
    fn tiny_frames_meet_the_mtp_budget() {
        let (r, gpu) = run();
        let report = QosReport::evaluate(
            &r,
            &gpu,
            [
                (GRAPHICS_STREAM, Deadline::motion_to_photon()),
                (COMPUTE_STREAM, Deadline::camera_30hz()),
            ],
        );
        assert!(report.all_met(), "{report:?}");
        let (_, crit) = report.critical().expect("constrained streams exist");
        assert!(crit.slack_ms() > 0.0);
        assert!(crit.utilisation() < 1.0);
    }

    #[test]
    fn impossible_budget_is_violated() {
        let (r, gpu) = run();
        let report = QosReport::evaluate(&r, &gpu, [(GRAPHICS_STREAM, Deadline::ms(1e-6))]);
        assert!(!report.all_met());
        let v = report.verdicts[&GRAPHICS_STREAM];
        assert!(v.slack_ms() < 0.0);
        assert!(v.utilisation() > 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn deadline_for_missing_stream_panics() {
        let (r, gpu) = run();
        let _ = QosReport::evaluate(&r, &gpu, [(StreamId(42), Deadline::ms(1.0))]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_budget_rejected() {
        let _ = Deadline::ms(0.0);
    }
}
