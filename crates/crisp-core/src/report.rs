//! Plain-text tables and CSV output for the experiment runners.

use std::io::Write;
use std::path::Path;

/// Render an aligned text table.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for r in rows {
        assert_eq!(r.len(), headers.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!("{c:<w$}  "));
        }
        line.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Write rows as CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for r in rows {
        let escaped: Vec<String> = r
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(f, "{}", escaped.join(","))?;
    }
    f.flush()
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn csv_escapes_commas() {
        let p = std::env::temp_dir().join("crisp_report_test.csv");
        write_csv(&p, &["a", "b"], &[vec!["x,y".into(), "2".into()]]).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.contains("\"x,y\",2"));
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.948), "94.8%");
    }
}
