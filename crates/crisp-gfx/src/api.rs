//! A Vulkan-flavoured command-recording front end.
//!
//! Mirrors the paper's Figure 1 flow: "the CPU records commands (draw
//! calls, state changes, resource bindings, etc) and saves them in a
//! command buffer. ... After all commands needed for one frame are saved,
//! the CPU calls vkQueueSubmit to submit the command buffer to the GPU,
//! which triggers the simulation of the frame."
//!
//! The [`Device`] owns resources (meshes, textures) and the render state;
//! a [`CommandBuffer`] records state changes and draws; `queue_submit`
//! executes the frame through the [`Renderer`] and returns the graphics
//! stream trace.
//!
//! # Example
//!
//! ```
//! use crisp_gfx::api::Device;
//! use crisp_gfx::{FragmentShader, Mat4, RenderConfig, TextureFormat, FilterMode, Vec2, Vec3, Vertex};
//!
//! let mut dev = Device::new(RenderConfig::new(64, 64));
//! let tri = dev.create_mesh(
//!     "tri",
//!     vec![
//!         Vertex { pos: Vec3::new(-1.0, -1.0, 0.0), normal: Vec3::new(0.0, 0.0, 1.0), uv: Vec2::new(0.0, 0.0), layer: 0 },
//!         Vertex { pos: Vec3::new(1.0, -1.0, 0.0), normal: Vec3::new(0.0, 0.0, 1.0), uv: Vec2::new(1.0, 0.0), layer: 0 },
//!         Vertex { pos: Vec3::new(0.0, 1.0, 0.0), normal: Vec3::new(0.0, 0.0, 1.0), uv: Vec2::new(0.5, 1.0), layer: 0 },
//!     ],
//!     vec![0, 1, 2],
//! );
//! let tex = dev.create_texture("albedo", 64, 64, 1, TextureFormat::Rgba8, FilterMode::Bilinear);
//!
//! let mut cb = dev.begin_commands();
//! cb.set_view_proj(Mat4::identity());
//! cb.bind_fragment_shader(FragmentShader::basic_textured());
//! cb.bind_texture(0, tex);
//! cb.draw(tri, Mat4::identity());
//! let frame = dev.queue_submit(cb);
//! assert_eq!(frame.trace.kernel_count(), 2); // VS + FS kernels
//! ```

use crate::compute::{dispatch, ComputeShader};
use crate::math::Mat4;
use crate::mesh::{AddressAllocator, Mesh, Vertex};
use crate::pipeline::{DrawCall, FrameStats, Instance, RenderConfig, Renderer, INSTANCE_STRIDE};
use crate::shader::{FragmentShader, VertexShader};
use crate::texture::{FilterMode, Texture, TextureFormat};
use crate::Framebuffer;
use crisp_trace::{KernelTrace, Stream, StreamId, StreamKind};

/// Handle to a device-owned mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshHandle(usize);

/// Handle to a device-owned texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextureHandle(usize);

/// A submitted frame: the emitted trace plus functional outputs.
#[derive(Debug)]
pub struct SubmittedFrame {
    /// The graphics stream to feed the simulator.
    pub trace: Stream,
    /// Frame statistics.
    pub stats: FrameStats,
    /// The shaded framebuffer.
    pub framebuffer: Framebuffer,
}

/// One recorded command.
#[derive(Debug, Clone)]
enum Cmd {
    SetViewProj(Mat4),
    BindFs(FragmentShader),
    BindVs(VertexShader),
    BindTexture(usize, TextureHandle),
    Draw {
        mesh: MeshHandle,
        model: Mat4,
    },
    DrawInstanced {
        mesh: MeshHandle,
        model: Mat4,
        instances: Vec<Instance>,
    },
}

/// A command buffer in the recording state.
#[derive(Debug, Default)]
pub struct CommandBuffer {
    cmds: Vec<Cmd>,
}

impl CommandBuffer {
    /// Set the frame's view-projection matrix.
    pub fn set_view_proj(&mut self, vp: Mat4) -> &mut Self {
        self.cmds.push(Cmd::SetViewProj(vp));
        self
    }

    /// Bind the fragment shader for subsequent draws.
    pub fn bind_fragment_shader(&mut self, fs: FragmentShader) -> &mut Self {
        self.cmds.push(Cmd::BindFs(fs));
        self
    }

    /// Bind the vertex shader for subsequent draws.
    pub fn bind_vertex_shader(&mut self, vs: VertexShader) -> &mut Self {
        self.cmds.push(Cmd::BindVs(vs));
        self
    }

    /// Bind `tex` to texture `slot`.
    pub fn bind_texture(&mut self, slot: usize, tex: TextureHandle) -> &mut Self {
        self.cmds.push(Cmd::BindTexture(slot, tex));
        self
    }

    /// Record a drawcall with the current state.
    pub fn draw(&mut self, mesh: MeshHandle, model: Mat4) -> &mut Self {
        self.cmds.push(Cmd::Draw { mesh, model });
        self
    }

    /// Record an instanced drawcall.
    pub fn draw_instanced(
        &mut self,
        mesh: MeshHandle,
        model: Mat4,
        instances: Vec<Instance>,
    ) -> &mut Self {
        self.cmds.push(Cmd::DrawInstanced {
            mesh,
            model,
            instances,
        });
        self
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }
}

/// The device: owns resources, render state and the renderer.
#[derive(Debug)]
pub struct Device {
    cfg: RenderConfig,
    buffer_alloc: AddressAllocator,
    texture_alloc: AddressAllocator,
    instance_alloc: AddressAllocator,
    meshes: Vec<Mesh>,
    textures: Vec<Texture>,
    frame_index: u64,
}

impl Device {
    /// A device rendering at the configuration's resolution.
    pub fn new(cfg: RenderConfig) -> Self {
        Device {
            cfg,
            buffer_alloc: AddressAllocator::standard_layout(),
            texture_alloc: AddressAllocator::new(AddressAllocator::TEXTURE_BASE),
            instance_alloc: AddressAllocator::new(0x3000_0000),
            meshes: Vec::new(),
            textures: Vec::new(),
            frame_index: 0,
        }
    }

    /// Upload a mesh; its buffers are placed in the device address space.
    pub fn create_mesh(
        &mut self,
        name: &str,
        vertices: Vec<Vertex>,
        indices: Vec<u32>,
    ) -> MeshHandle {
        self.meshes
            .push(Mesh::new(name, vertices, indices, &mut self.buffer_alloc));
        MeshHandle(self.meshes.len() - 1)
    }

    /// Create a texture with a full mip chain.
    pub fn create_texture(
        &mut self,
        name: &str,
        width: u32,
        height: u32,
        layers: u32,
        format: TextureFormat,
        filter: FilterMode,
    ) -> TextureHandle {
        let probe = Texture::new(name, width, height, layers, format, filter, 0);
        let base = self.texture_alloc.alloc(probe.size_bytes(), 256);
        self.textures.push(Texture::new(
            name, width, height, layers, format, filter, base,
        ));
        TextureHandle(self.textures.len() - 1)
    }

    /// Begin recording a command buffer.
    pub fn begin_commands(&self) -> CommandBuffer {
        CommandBuffer::default()
    }

    /// Record one Vulkan-style compute dispatch as a kernel trace; chain
    /// several into a [`Stream`] with [`Device::compute_stream`] to pair
    /// with rendering via async compute.
    pub fn dispatch_compute(
        &mut self,
        name: &str,
        shader: &ComputeShader,
        grid: usize,
        warps_per_cta: usize,
    ) -> KernelTrace {
        let input = self.instance_alloc.alloc(1 << 20, 256);
        let output = self.instance_alloc.alloc(1 << 20, 256);
        dispatch(name, shader, grid, warps_per_cta, input, output)
    }

    /// Wrap dispatched kernels into a compute stream for concurrent replay.
    pub fn compute_stream(&self, id: StreamId, kernels: Vec<KernelTrace>) -> Stream {
        let mut s = Stream::new(id, StreamKind::Compute);
        for k in kernels {
            s.launch(k);
        }
        s
    }

    /// Execute a recorded frame (`vkQueueSubmit`): replays the commands
    /// through the pipeline, producing the trace and the shaded image.
    ///
    /// # Panics
    ///
    /// Panics if a draw is recorded before a fragment shader + enough
    /// textures are bound, or a handle is stale.
    pub fn queue_submit(&mut self, cb: CommandBuffer) -> SubmittedFrame {
        let mut view_proj = Mat4::identity();
        let mut fs = FragmentShader::basic_textured();
        let mut vs = VertexShader::transform();
        let mut bound: Vec<Option<TextureHandle>> = vec![None; 16];
        let mut draws: Vec<DrawCall> = Vec::new();
        let frame = self.frame_index;
        self.frame_index += 1;
        for (i, cmd) in cb.cmds.into_iter().enumerate() {
            match cmd {
                Cmd::SetViewProj(m) => view_proj = m,
                Cmd::BindFs(f) => fs = f,
                Cmd::BindVs(v) => vs = v,
                Cmd::BindTexture(slot, t) => {
                    assert!(slot < bound.len(), "texture slot {slot} out of range");
                    assert!(t.0 < self.textures.len(), "stale texture handle");
                    bound[slot] = Some(t);
                }
                Cmd::Draw { mesh, model } => {
                    draws.push(self.build_draw(
                        format!("f{frame}_d{i}"),
                        mesh,
                        model,
                        vs,
                        fs,
                        &bound,
                        vec![Instance::identity()],
                        0,
                    ));
                }
                Cmd::DrawInstanced {
                    mesh,
                    model,
                    instances,
                } => {
                    let ibuf = self
                        .instance_alloc
                        .alloc(instances.len() as u64 * INSTANCE_STRIDE, 256);
                    draws.push(self.build_draw(
                        format!("f{frame}_d{i}"),
                        mesh,
                        model,
                        vs,
                        fs,
                        &bound,
                        instances,
                        ibuf,
                    ));
                }
            }
        }
        let mut renderer = Renderer::new(self.cfg.clone());
        let trace = renderer.render(&draws, &view_proj);
        let stats = renderer.stats().clone();
        SubmittedFrame {
            trace,
            stats,
            framebuffer: renderer.into_framebuffer(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_draw(
        &self,
        name: String,
        mesh: MeshHandle,
        model: Mat4,
        vs: VertexShader,
        fs: FragmentShader,
        bound: &[Option<TextureHandle>],
        instances: Vec<Instance>,
        instance_buffer: u64,
    ) -> DrawCall {
        assert!(mesh.0 < self.meshes.len(), "stale mesh handle");
        let textures: Vec<Texture> = (0..fs.map_slots)
            .map(|slot| {
                let h = bound[slot]
                    .unwrap_or_else(|| panic!("draw needs a texture bound at slot {slot}"));
                self.textures[h.0].clone()
            })
            .collect();
        DrawCall {
            name,
            mesh: self.meshes[mesh.0].clone(),
            textures,
            vs,
            fs,
            model,
            instances,
            instance_buffer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{Vec2, Vec3};

    fn quad_verts() -> Vec<Vertex> {
        let v = |x: f32, y: f32| Vertex {
            pos: Vec3::new(x, y, 0.0),
            normal: Vec3::new(0.0, 0.0, 1.0),
            uv: Vec2::new(x * 0.5 + 0.5, y * 0.5 + 0.5),
            layer: 0,
        };
        vec![v(-1.0, -1.0), v(1.0, -1.0), v(1.0, 1.0), v(-1.0, 1.0)]
    }

    fn device() -> Device {
        Device::new(RenderConfig::new(64, 64))
    }

    #[test]
    fn record_and_submit_renders_a_frame() {
        let mut dev = device();
        let mesh = dev.create_mesh("q", quad_verts(), vec![0, 1, 2, 0, 2, 3]);
        let tex = dev.create_texture("t", 64, 64, 1, TextureFormat::Rgba8, FilterMode::Bilinear);
        let mut cb = dev.begin_commands();
        cb.bind_fragment_shader(FragmentShader::basic_textured())
            .bind_texture(0, tex)
            .draw(mesh, Mat4::identity());
        assert_eq!(cb.len(), 3);
        let f = dev.queue_submit(cb);
        assert!(f.stats.fragments() > 0);
        assert!(f.framebuffer.coverage() > 0.5, "full-screen quad");
        assert_eq!(f.trace.kernel_count(), 2);
    }

    #[test]
    fn state_persists_across_draws() {
        let mut dev = device();
        let mesh = dev.create_mesh("q", quad_verts(), vec![0, 1, 2]);
        let tex = dev.create_texture("t", 32, 32, 1, TextureFormat::Rgba8, FilterMode::Nearest);
        let mut cb = dev.begin_commands();
        cb.bind_fragment_shader(FragmentShader::phong());
        cb.bind_texture(0, tex);
        cb.draw(mesh, Mat4::identity());
        cb.draw(mesh, Mat4::translate(Vec3::new(0.1, 0.0, 0.0)));
        let f = dev.queue_submit(cb);
        assert_eq!(f.stats.draws.len(), 2, "both draws use the bound state");
    }

    #[test]
    fn texture_allocations_do_not_overlap() {
        let mut dev = device();
        let a = dev.create_texture("a", 128, 128, 1, TextureFormat::Rgba8, FilterMode::Nearest);
        let b = dev.create_texture("b", 128, 128, 1, TextureFormat::Rgba8, FilterMode::Nearest);
        let ta = dev.textures[a.0].clone();
        let tb = dev.textures[b.0].clone();
        assert!(tb.base_addr >= ta.base_addr + ta.size_bytes());
    }

    #[test]
    fn instanced_draw_records_instances() {
        let mut dev = device();
        let mesh = dev.create_mesh("q", quad_verts(), vec![0, 1, 2]);
        let tex = dev.create_texture("t", 32, 32, 4, TextureFormat::Rgba8, FilterMode::Nearest);
        let mut cb = dev.begin_commands();
        cb.bind_fragment_shader(FragmentShader::basic_textured());
        cb.bind_texture(0, tex);
        let instances: Vec<Instance> = (0..3)
            .map(|i| Instance {
                transform: Mat4::translate(Vec3::new(i as f32 * 0.2, 0.0, 0.0)),
                layer: i,
            })
            .collect();
        cb.draw_instanced(mesh, Mat4::identity(), instances);
        let f = dev.queue_submit(cb);
        assert_eq!(f.stats.draws[0].prims, 3, "one triangle × 3 instances");
    }

    #[test]
    #[should_panic(expected = "texture bound at slot")]
    fn draw_without_texture_panics() {
        let mut dev = device();
        let mesh = dev.create_mesh("q", quad_verts(), vec![0, 1, 2]);
        let mut cb = dev.begin_commands();
        cb.bind_fragment_shader(FragmentShader::basic_textured());
        cb.draw(mesh, Mat4::identity());
        let _ = dev.queue_submit(cb);
    }

    #[test]
    fn compute_dispatches_form_a_stream() {
        let mut dev = device();
        let k1 = dev.dispatch_compute("copy", &ComputeShader::streaming(), 4, 2);
        let k2 = dev.dispatch_compute("gemm", &ComputeShader::gemm(), 2, 4);
        let s = dev.compute_stream(crisp_trace::StreamId(1), vec![k1, k2]);
        assert_eq!(s.kernel_count(), 2);
        assert_eq!(s.kind, StreamKind::Compute);
        // Dispatches get disjoint buffers from the device allocator.
        let firsts: Vec<u64> = s
            .kernels()
            .map(|k| {
                k.ctas[0].warps[0]
                    .iter()
                    .find_map(|i| i.mem.as_ref())
                    .expect("loads")
                    .addrs[0]
            })
            .collect();
        assert_ne!(firsts[0], firsts[1]);
    }

    #[test]
    fn frame_indices_name_the_kernels_uniquely() {
        let mut dev = device();
        let mesh = dev.create_mesh("q", quad_verts(), vec![0, 1, 2]);
        let tex = dev.create_texture("t", 32, 32, 1, TextureFormat::Rgba8, FilterMode::Nearest);
        let submit = |dev: &mut Device| {
            let mut cb = dev.begin_commands();
            cb.bind_fragment_shader(FragmentShader::basic_textured());
            cb.bind_texture(0, tex);
            cb.draw(mesh, Mat4::identity());
            dev.queue_submit(cb)
        };
        let f0 = submit(&mut dev);
        let f1 = submit(&mut dev);
        let n0 = f0.trace.kernels().next().unwrap().name.clone();
        let n1 = f1.trace.kernels().next().unwrap().name.clone();
        assert_ne!(n0, n1, "frames are distinguishable in the trace");
    }
}
