//! Batch-based vertex shading.
//!
//! Contemporary GPUs no longer keep a global post-transform vertex cache;
//! instead the index stream is split into batches and duplicate vertices are
//! eliminated *only within a batch* (Kerbl et al. 2018; paper Figure 2 ②).
//! CRISP found the highest vertex-shader invocation correlation at a batch
//! size of 96 unique vertices, matching Kerbl's observation for NVIDIA
//! hardware.

/// Unique vertices per batch ("At batchsize = 96, we achieved the highest
/// correlation on vertex shader invocation count").
pub const BATCH_SIZE: usize = 96;

/// One vertex-shading batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    /// Unique mesh-level vertex indices, in first-use order. Each entry is
    /// one vertex-shader invocation.
    pub unique: Vec<u32>,
    /// Triangles as positions into `unique`.
    pub prims: Vec<[u32; 3]>,
}

impl Batch {
    /// Vertex-shader invocations this batch causes.
    pub fn vs_invocations(&self) -> usize {
        self.unique.len()
    }
}

/// Split a triangle-list index stream into batches of at most `batch_size`
/// unique vertices, deduplicating only within each batch.
///
/// # Panics
///
/// Panics if `indices` is not a multiple of 3 or `batch_size < 3`.
pub fn vertex_batches(indices: &[u32], batch_size: usize) -> Vec<Batch> {
    assert!(indices.len().is_multiple_of(3), "triangle list required");
    assert!(batch_size >= 3, "a batch must fit at least one triangle");
    let mut batches = Vec::new();
    let mut cur = Batch::default();
    // Batch-local dedup map; cleared at batch boundaries (no reuse across
    // batches — that is the whole point of the model).
    let mut local: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();

    for tri in indices.chunks_exact(3) {
        // How many of this triangle's vertices are new to the current batch?
        let new_count = {
            let mut seen = [false; 3];
            for (i, &v) in tri.iter().enumerate() {
                seen[i] = !local.contains_key(&v) && !tri[..i].contains(&v);
            }
            seen.iter().filter(|&&b| b).count()
        };
        if cur.unique.len() + new_count > batch_size && !cur.prims.is_empty() {
            batches.push(std::mem::take(&mut cur));
            local.clear();
        }
        let mut slots = [0u32; 3];
        for (i, &v) in tri.iter().enumerate() {
            let slot = *local.entry(v).or_insert_with(|| {
                cur.unique.push(v);
                (cur.unique.len() - 1) as u32
            });
            slots[i] = slot;
        }
        cur.prims.push(slots);
    }
    if !cur.prims.is_empty() {
        batches.push(cur);
    }
    batches
}

/// Total vertex-shader invocations for an index stream at `batch_size` —
/// the simulator-side quantity of the paper's Figure 3.
pub fn vs_invocation_count(indices: &[u32], batch_size: usize) -> u64 {
    vertex_batches(indices, batch_size)
        .iter()
        .map(|b| b.vs_invocations() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle strip over a W×H vertex grid — the canonical high-reuse
    /// index stream (each interior vertex is referenced up to 6 times).
    fn grid_indices(w: u32, h: u32) -> Vec<u32> {
        let mut idx = Vec::new();
        for y in 0..h - 1 {
            for x in 0..w - 1 {
                let a = y * w + x;
                let b = a + 1;
                let c = a + w;
                let d = c + 1;
                idx.extend_from_slice(&[a, b, c, b, d, c]);
            }
        }
        idx
    }

    #[test]
    fn dedup_within_batch() {
        // Two triangles sharing an edge: 4 unique vertices, not 6.
        let idx = vec![0, 1, 2, 1, 3, 2];
        let b = vertex_batches(&idx, BATCH_SIZE);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].vs_invocations(), 4);
        assert_eq!(b[0].prims.len(), 2);
    }

    #[test]
    fn no_reuse_across_batches() {
        // Same two triangles but batch_size 3 → every triangle re-shades
        // its vertices: 6 invocations.
        let idx = vec![0, 1, 2, 1, 3, 2];
        assert_eq!(vs_invocation_count(&idx, 3), 6);
    }

    #[test]
    fn batch_never_exceeds_size() {
        let idx = grid_indices(40, 40);
        for b in vertex_batches(&idx, BATCH_SIZE) {
            assert!(b.vs_invocations() <= BATCH_SIZE);
            assert!(!b.prims.is_empty());
        }
    }

    #[test]
    fn invocations_decrease_with_batch_size() {
        let idx = grid_indices(30, 30);
        let tiny = vs_invocation_count(&idx, 3);
        let small = vs_invocation_count(&idx, 24);
        let big = vs_invocation_count(&idx, 96);
        let unique = 30 * 30;
        assert!(tiny > small, "{tiny} > {small}");
        assert!(small > big, "{small} > {big}");
        assert!(big >= unique, "cannot beat perfect reuse");
        // With batch=96, reuse should recover a large share of duplicates.
        assert!(
            (big as f64) < (tiny as f64) * 0.55,
            "batching must reclaim reuse: tiny {tiny}, big {big}"
        );
    }

    #[test]
    fn prim_slots_reference_unique_list() {
        let idx = grid_indices(10, 10);
        for b in vertex_batches(&idx, BATCH_SIZE) {
            for p in &b.prims {
                for &s in p {
                    assert!((s as usize) < b.unique.len());
                }
            }
        }
    }

    #[test]
    fn invocation_count_matches_batches() {
        let idx = grid_indices(17, 9);
        let total: u64 = vertex_batches(&idx, 96)
            .iter()
            .map(|b| b.vs_invocations() as u64)
            .sum();
        assert_eq!(total, vs_invocation_count(&idx, 96));
    }

    #[test]
    #[should_panic(expected = "at least one triangle")]
    fn rejects_tiny_batch_size() {
        let _ = vertex_batches(&[0, 1, 2], 2);
    }

    #[test]
    fn degenerate_triangle_with_repeated_vertex() {
        // A triangle that repeats a vertex within itself must count it once.
        let idx = vec![5, 5, 6];
        let b = vertex_batches(&idx, 96);
        assert_eq!(b[0].vs_invocations(), 2);
    }
}
