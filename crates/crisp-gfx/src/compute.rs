//! Vulkan-style compute shaders.
//!
//! "Compute shaders have been integrated into contemporary graphics APIs
//! to support general-purpose computing" (paper Section II). This module
//! is the compute-side counterpart of [`crate::shader`]: a
//! [`ComputeShader`] describes one dispatch's per-warp behaviour — memory
//! streams, ALU mix, shared-memory staging, tensor work — and
//! [`dispatch`] turns it into a kernel trace the simulator replays.
//! Together with [`crate::api::Device`] this covers both halves of the
//! async-compute pairing the paper studies.

use crisp_trace::{CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, WARP_SIZE};

/// Per-warp cost model of a compute shader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeShader {
    /// Coalesced global loads per warp (each 32 lanes × `load_width`).
    pub loads: u32,
    /// Bytes per lane per load.
    pub load_width: u8,
    /// Stride between consecutive loads in bytes (0 = dense streaming).
    pub load_stride: u64,
    /// Global stores per warp.
    pub stores: u32,
    /// FMA-class operations per warp.
    pub fp_ops: u32,
    /// Integer operations per warp.
    pub int_ops: u32,
    /// SFU operations per warp.
    pub sfu_ops: u32,
    /// Tensor-core MMA operations per warp.
    pub tensor_ops: u32,
    /// Shared-memory staging round trips (store + barrier + load).
    pub smem_rounds: u32,
    /// Registers per thread.
    pub regs: u32,
    /// Shared memory bytes per CTA.
    pub smem_per_cta: u32,
}

impl ComputeShader {
    /// A memory-streaming kernel (copy/transform class).
    pub fn streaming() -> Self {
        ComputeShader {
            loads: 8,
            load_width: 4,
            load_stride: 0,
            stores: 4,
            fp_ops: 16,
            int_ops: 8,
            sfu_ops: 0,
            tensor_ops: 0,
            smem_rounds: 0,
            regs: 24,
            smem_per_cta: 0,
        }
    }

    /// An arithmetically-dense kernel (the HOLO class).
    pub fn compute_bound() -> Self {
        ComputeShader {
            loads: 1,
            load_width: 8,
            load_stride: 0,
            stores: 1,
            fp_ops: 220,
            int_ops: 8,
            sfu_ops: 80,
            tensor_ops: 0,
            smem_rounds: 0,
            regs: 40,
            smem_per_cta: 0,
        }
    }

    /// A tiled-GEMM kernel (shared memory + tensor cores).
    pub fn gemm() -> Self {
        ComputeShader {
            loads: 8,
            load_width: 4,
            load_stride: 0,
            stores: 1,
            fp_ops: 16,
            int_ops: 4,
            sfu_ops: 0,
            tensor_ops: 48,
            smem_rounds: 4,
            regs: 64,
            smem_per_cta: 24 << 10,
        }
    }
}

/// Build the kernel trace for one dispatch of `shader` over
/// `grid` CTAs × `warps_per_cta` warps, reading from `input` and writing
/// to `output` in the simulated address space.
///
/// # Panics
///
/// Panics if `grid` or `warps_per_cta` is zero.
pub fn dispatch(
    name: impl Into<String>,
    shader: &ComputeShader,
    grid: usize,
    warps_per_cta: usize,
    input: u64,
    output: u64,
) -> KernelTrace {
    assert!(grid > 0 && warps_per_cta > 0, "dispatch must be non-empty");
    let row_bytes = WARP_SIZE as u64 * shader.load_width as u64;
    let stride = if shader.load_stride == 0 {
        row_bytes
    } else {
        shader.load_stride
    };
    // Destination of the most recent value-producing instruction: the ALU
    // blocks chain through it so every write is later read (clean under
    // crisp-analyze's dataflow lints) without changing the instruction mix.
    fn last_def(w: &crisp_trace::WarpTrace) -> Option<Reg> {
        w.iter().rev().find_map(|i| i.dst)
    }
    // Live input registers the ALU blocks may read: r2..r9 rotate over up
    // to eight in-flight loads.
    let load_slots = shader.loads.clamp(1, 8) as u16;
    let ctas = (0..grid)
        .map(|c| {
            let warps = (0..warps_per_cta)
                .map(|wi| {
                    let mut w = crisp_trace::WarpTrace::new();
                    let warp_base =
                        input + (c * warps_per_cta + wi) as u64 * shader.loads as u64 * stride;
                    for l in 0..shader.loads {
                        w.push(Instr::load(
                            Reg(2 + (l % 8) as u16),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                shader.load_width,
                                warp_base + l as u64 * stride,
                                WARP_SIZE,
                            ),
                        ));
                    }
                    for r in 0..shader.smem_rounds {
                        // Each warp stages into — and rereads — its own
                        // 128 B slot. With a single barrier per round, a
                        // round's load shares a barrier interval with the
                        // next round's stores, so only the warp's own slot
                        // is race-free to touch there.
                        let src = last_def(&w).unwrap_or(Reg(2));
                        w.push(Instr::store(
                            src,
                            MemAccess::coalesced(
                                Space::Shared,
                                DataClass::Compute,
                                4,
                                wi as u64 * 128,
                                WARP_SIZE,
                            ),
                        ));
                        w.push(Instr::bar());
                        w.push(Instr::load(
                            Reg(20 + (r % 2) as u16),
                            MemAccess::coalesced(
                                Space::Shared,
                                DataClass::Compute,
                                4,
                                wi as u64 * 128,
                                WARP_SIZE,
                            ),
                        ));
                    }
                    for i in 0..shader.fp_ops {
                        let prev = last_def(&w).unwrap_or(Reg(2));
                        w.push(Instr::alu(
                            Op::FpFma,
                            Reg(10 + (i % 10) as u16),
                            &[Reg(2 + (i as u16 % load_slots)), prev],
                        ));
                    }
                    for i in 0..shader.int_ops {
                        let prev = last_def(&w).unwrap_or(Reg(2));
                        w.push(Instr::alu(
                            Op::IntAlu,
                            Reg(24 + (i % 4) as u16),
                            &[Reg(2), prev],
                        ));
                    }
                    for i in 0..shader.sfu_ops {
                        let prev = last_def(&w).unwrap_or(Reg(2));
                        w.push(Instr::alu(Op::Sfu, Reg(6 + (i % 2) as u16), &[prev]));
                    }
                    for i in 0..shader.tensor_ops {
                        let staged = if shader.smem_rounds > 0 {
                            Reg(20 + (i % 2) as u16)
                        } else {
                            Reg(2 + (i as u16 % load_slots))
                        };
                        let prev = last_def(&w).unwrap_or(staged);
                        w.push(Instr::alu(
                            Op::Tensor,
                            Reg(30 + (i % 4) as u16),
                            &[staged, prev],
                        ));
                    }
                    let result = last_def(&w).unwrap_or(Reg(2));
                    for s in 0..shader.stores {
                        let base = output
                            + (c * warps_per_cta + wi) as u64 * shader.stores as u64 * row_bytes;
                        w.push(Instr::store(
                            result,
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                shader.load_width,
                                base + s as u64 * row_bytes,
                                WARP_SIZE,
                            ),
                        ));
                    }
                    w.seal();
                    w
                })
                .collect();
            CtaTrace::new(warps)
        })
        .collect();
    KernelTrace::new(
        name,
        (warps_per_cta * WARP_SIZE) as u32,
        shader.regs,
        shader.smem_per_cta,
        ctas,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::InstrMix;

    #[test]
    fn dispatch_geometry_matches_arguments() {
        let k = dispatch("k", &ComputeShader::streaming(), 6, 4, 0x1000, 0x2000);
        assert_eq!(k.grid(), 6);
        assert_eq!(k.warps_per_cta(), 4);
        assert_eq!(k.block_threads, 128);
    }

    #[test]
    fn presets_have_their_signatures() {
        let cb = dispatch("cb", &ComputeShader::compute_bound(), 2, 2, 0, 0x1000);
        let m = InstrMix::of_kernel(&cb);
        assert!(
            m.fp + m.sfu > (m.global_mem + m.shared_mem) * 20,
            "compute-bound"
        );

        let gemm = dispatch("g", &ComputeShader::gemm(), 2, 2, 0, 0x1000);
        let m = InstrMix::of_kernel(&gemm);
        assert!(m.tensor > 0);
        assert!(m.shared_mem > 0);
        assert_eq!(gemm.smem_per_cta, 24 << 10);

        let s = dispatch("s", &ComputeShader::streaming(), 2, 2, 0, 0x1000);
        let m = InstrMix::of_kernel(&s);
        assert!(m.global_mem as f64 > m.total() as f64 * 0.2, "memory-heavy");
    }

    #[test]
    fn warps_read_disjoint_streaming_ranges() {
        let k = dispatch("k", &ComputeShader::streaming(), 2, 2, 0x1_0000, 0x8_0000);
        let mut firsts = Vec::new();
        for cta in &k.ctas {
            for w in &cta.warps {
                let first = w
                    .iter()
                    .find_map(|i| i.mem.as_ref().filter(|m| m.space == Space::Global))
                    .expect("has loads")
                    .addrs[0];
                firsts.push(first);
            }
        }
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 4, "each warp streams its own range");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dispatch_rejected() {
        let _ = dispatch("k", &ComputeShader::streaming(), 0, 1, 0, 0);
    }
}
