//! Functional framebuffer: colour + depth, with PPM export.
//!
//! The timing model skips the ROP entirely (paper Section III), but the
//! functional model still produces an image so rendered scenes can be
//! inspected (Figures 5 and 8).

use std::io::Write;
use std::path::Path;

use crate::mesh::AddressAllocator;

/// A colour+depth framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    color: Vec<[u8; 3]>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// A cleared framebuffer (black, depth 1.0).
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "framebuffer dims must be positive");
        Framebuffer {
            width,
            height,
            color: vec![[0, 0, 0]; (width * height) as usize],
            depth: vec![1.0; (width * height) as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Clear colour and depth.
    pub fn clear(&mut self) {
        self.color.fill([0, 0, 0]);
        self.depth.fill(1.0);
    }

    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y * self.width + x) as usize
    }

    /// Depth-test `z` at `(x, y)`; on pass, write the depth and return
    /// `true` (the early-Z test-and-set).
    pub fn depth_test_and_set(&mut self, x: u32, y: u32, z: f32) -> bool {
        let i = self.idx(x, y);
        if z < self.depth[i] {
            self.depth[i] = z;
            true
        } else {
            false
        }
    }

    /// Write a colour.
    pub fn set_color(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        let i = self.idx(x, y);
        self.color[i] = rgb;
    }

    /// Read a colour.
    pub fn color_at(&self, x: u32, y: u32) -> [u8; 3] {
        self.color[self.idx(x, y)]
    }

    /// Read a depth value.
    pub fn depth_at(&self, x: u32, y: u32) -> f32 {
        self.depth[self.idx(x, y)]
    }

    /// Fraction of pixels that received any geometry (depth < 1).
    pub fn coverage(&self) -> f64 {
        let covered = self.depth.iter().filter(|&&d| d < 1.0).count();
        covered as f64 / self.depth.len() as f64
    }

    /// Simulated byte address of pixel `(x, y)`'s colour in the framebuffer
    /// region (4 bytes/pixel, row-major).
    pub fn pixel_addr(&self, x: u32, y: u32) -> u64 {
        AddressAllocator::FRAMEBUFFER_BASE + (y as u64 * self.width as u64 + x as u64) * 4
    }

    /// Peak signal-to-noise ratio against another framebuffer of the same
    /// size, in dB (infinite for identical images) — used to quantify the
    /// LoD on/off image difference of the paper's Figure 8.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn psnr(&self, other: &Framebuffer) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "framebuffer dimensions must match"
        );
        let mut se = 0.0f64;
        for (a, b) in self.color.iter().zip(&other.color) {
            for c in 0..3 {
                let d = a[c] as f64 - b[c] as f64;
                se += d * d;
            }
        }
        let mse = se / (self.color.len() as f64 * 3.0);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    /// Write the depth buffer as a grayscale PPM (near = bright), for
    /// inspecting early-Z behaviour.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_depth_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        for &d in &self.depth {
            let v = ((1.0 - d.clamp(0.0, 1.0)) * 255.0) as u8;
            f.write_all(&[v, v, v])?;
        }
        f.flush()
    }

    /// Write the colour buffer as a binary PPM (P6).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_ppm(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        for px in &self.color {
            f.write_all(px)?;
        }
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test_keeps_nearest() {
        let mut fb = Framebuffer::new(4, 4);
        assert!(fb.depth_test_and_set(1, 1, 0.5));
        assert!(!fb.depth_test_and_set(1, 1, 0.7), "farther fails");
        assert!(fb.depth_test_and_set(1, 1, 0.2), "closer passes");
        assert_eq!(fb.depth_at(1, 1), 0.2);
    }

    #[test]
    fn coverage_counts_touched_pixels() {
        let mut fb = Framebuffer::new(2, 2);
        assert_eq!(fb.coverage(), 0.0);
        fb.depth_test_and_set(0, 0, 0.5);
        assert!((fb.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set_color(0, 0, [9, 9, 9]);
        fb.depth_test_and_set(0, 0, 0.1);
        fb.clear();
        assert_eq!(fb.color_at(0, 0), [0, 0, 0]);
        assert_eq!(fb.depth_at(0, 0), 1.0);
    }

    #[test]
    fn pixel_addresses_are_row_major() {
        let fb = Framebuffer::new(10, 10);
        assert_eq!(fb.pixel_addr(0, 0), AddressAllocator::FRAMEBUFFER_BASE);
        assert_eq!(fb.pixel_addr(1, 0) - fb.pixel_addr(0, 0), 4);
        assert_eq!(fb.pixel_addr(0, 1) - fb.pixel_addr(0, 0), 40);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let fb = Framebuffer::new(4, 4);
        assert!(fb.psnr(&fb).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_difference() {
        let a = Framebuffer::new(4, 4);
        let mut b = Framebuffer::new(4, 4);
        b.set_color(0, 0, [10, 10, 10]);
        let mut c = Framebuffer::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                c.set_color(x, y, [200, 0, 0]);
            }
        }
        assert!(a.psnr(&b) > a.psnr(&c), "bigger difference, lower PSNR");
        assert!(a.psnr(&c) > 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn psnr_requires_equal_sizes() {
        let _ = Framebuffer::new(4, 4).psnr(&Framebuffer::new(8, 8));
    }

    #[test]
    fn depth_ppm_encodes_nearness() {
        let mut fb = Framebuffer::new(2, 1);
        fb.depth_test_and_set(0, 0, 0.0); // near → white
        let p = std::env::temp_dir().join("crisp_depth_test.ppm");
        fb.write_depth_ppm(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let px = &bytes[bytes.len() - 6..];
        assert_eq!(&px[0..3], &[255, 255, 255], "near pixel bright");
        assert_eq!(&px[3..6], &[0, 0, 0], "untouched pixel dark");
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn ppm_roundtrip_writes_header_and_pixels() {
        let mut fb = Framebuffer::new(3, 2);
        fb.set_color(0, 0, [255, 0, 0]);
        let dir = std::env::temp_dir().join("crisp_fb_test.ppm");
        fb.write_ppm(&dir).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
        let _ = std::fs::remove_file(dir);
    }
}
