//! Functional Vulkan-style rasterization pipeline for CRISP.
//!
//! Implements the rendering pipeline of the paper's Figure 2 as a
//! *functional* model that emits instruction traces for the timing
//! simulator, mirroring how CRISP extends GPGPU-Sim to functionally
//! simulate rendering and save SASS-compatible traces:
//!
//! 1. **Drawcall execution** at queue submit ([`pipeline::Renderer`]).
//! 2. **Vertex batching** — batches of at most 96 *unique* vertices with
//!    batch-local deduplication, the contemporary replacement for the
//!    global post-transform vertex cache ([`batch`]).
//! 3. **Vertex shading** on the SMs — each batch becomes a kernel trace.
//! 4. **Primitive assembly & rasterization** — clipping/culling, Immediate
//!    Tiled Rendering screen tiles, early-Z, and per-quad LoD computed at
//!    rasterization time ([`raster`]).
//! 5. **Fragment shading** on the SMs — fragments grouped into warps in
//!    tile order (quads form naturally), sampling mipmapped textures
//!    through the unified L1 ([`texture`], [`shader`]).
//! 6. Fixed-function stages are black boxes that only generate their L2
//!    traffic; the ROP is skipped entirely — both are the paper's own
//!    modelling decisions.
//!
//! The crate also renders a real image (framebuffer + PPM dump) so scenes
//! like the paper's Figure 5/8 can be inspected visually.

pub mod api;
pub mod batch;
pub mod compute;
pub mod fb;
pub mod math;
pub mod mesh;
pub mod pipeline;
pub mod raster;
pub mod shader;
pub mod texture;

pub use api::{CommandBuffer, Device, MeshHandle, SubmittedFrame, TextureHandle};
pub use batch::{vertex_batches, Batch, BATCH_SIZE};
pub use compute::{dispatch, ComputeShader};
pub use fb::Framebuffer;
pub use math::{Mat4, Vec2, Vec3, Vec4};
pub use mesh::{AddressAllocator, Mesh, Vertex};
pub use pipeline::{DrawCall, DrawStats, FrameStats, RenderConfig, Renderer};
pub use raster::{Fragment, TileGrid, TILE_SIZE};
pub use shader::{FragmentShader, ShaderKind, VertexShader};
pub use texture::{FilterMode, Texture, TextureFormat};
