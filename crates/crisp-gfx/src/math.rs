//! Minimal vector/matrix math for the rendering pipeline.
//!
//! Column-major 4×4 matrices and the handful of operations rasterization
//! needs: perspective projection, look-at view matrices, and point/vector
//! transforms. No external math crate is used.

/// A 2-component vector (texture coordinates, screen positions).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Vec2 {
    /// X / U component.
    pub x: f32,
    /// Y / V component.
    pub y: f32,
}

impl Vec2 {
    /// Construct from components.
    pub fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Component-wise scale.
    pub fn scale(self, s: f32) -> Self {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;

    /// Component-wise subtraction.
    fn sub(self, o: Vec2) -> Self {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

/// A 3-component vector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// Construct from components.
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Uniform scale.
    pub fn scale(self, s: f32) -> Self {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Self {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Does not panic; returns zero for the zero vector.
    pub fn normalized(self) -> Self {
        let l = self.length();
        if l <= f32::EPSILON {
            Vec3::ZERO
        } else {
            self.scale(1.0 / l)
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;

    /// Vector addition.
    fn add(self, o: Vec3) -> Self {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;

    /// Vector subtraction.
    fn sub(self, o: Vec3) -> Self {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

/// A 4-component homogeneous vector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl Vec4 {
    /// Construct from components.
    pub fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Promote a point (w = 1).
    pub fn from_point(v: Vec3) -> Self {
        Vec4::new(v.x, v.y, v.z, 1.0)
    }

    /// The 3-component prefix.
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

/// A column-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::identity()
    }
}

impl Mat4 {
    /// The identity matrix.
    pub fn identity() -> Self {
        Mat4 {
            cols: [
                Vec4::new(1.0, 0.0, 0.0, 0.0),
                Vec4::new(0.0, 1.0, 0.0, 0.0),
                Vec4::new(0.0, 0.0, 1.0, 0.0),
                Vec4::new(0.0, 0.0, 0.0, 1.0),
            ],
        }
    }

    /// Translation matrix.
    pub fn translate(t: Vec3) -> Self {
        let mut m = Mat4::identity();
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Self {
        let mut m = Mat4::identity();
        m.cols[0].x = s.x;
        m.cols[1].y = s.y;
        m.cols[2].z = s.z;
        m
    }

    /// Rotation about the Y axis by `rad` radians.
    pub fn rotate_y(rad: f32) -> Self {
        let (s, c) = rad.sin_cos();
        let mut m = Mat4::identity();
        m.cols[0] = Vec4::new(c, 0.0, -s, 0.0);
        m.cols[2] = Vec4::new(s, 0.0, c, 0.0);
        m
    }

    /// Rotation about the X axis by `rad` radians.
    pub fn rotate_x(rad: f32) -> Self {
        let (s, c) = rad.sin_cos();
        let mut m = Mat4::identity();
        m.cols[1] = Vec4::new(0.0, c, s, 0.0);
        m.cols[2] = Vec4::new(0.0, -s, c, 0.0);
        m
    }

    /// Right-handed perspective projection (depth 0..1).
    ///
    /// # Panics
    ///
    /// Panics if `aspect`, `near` or `far` are non-positive or equal.
    pub fn perspective(fov_y_rad: f32, aspect: f32, near: f32, far: f32) -> Self {
        assert!(
            aspect > 0.0 && near > 0.0 && far > near,
            "bad projection parameters"
        );
        let f = 1.0 / (fov_y_rad / 2.0).tan();
        let mut m = Mat4 {
            cols: [Vec4::default(); 4],
        };
        m.cols[0].x = f / aspect;
        m.cols[1].y = f;
        m.cols[2].z = far / (near - far);
        m.cols[2].w = -1.0;
        m.cols[3].z = near * far / (near - far);
        m
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Self {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Mat4 {
            cols: [
                Vec4::new(s.x, u.x, -f.x, 0.0),
                Vec4::new(s.y, u.y, -f.y, 0.0),
                Vec4::new(s.z, u.z, -f.z, 0.0),
                Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
            ],
        }
    }

    /// Matrix × vector.
    pub fn mul_vec(&self, v: Vec4) -> Vec4 {
        let c = &self.cols;
        Vec4::new(
            c[0].x * v.x + c[1].x * v.y + c[2].x * v.z + c[3].x * v.w,
            c[0].y * v.x + c[1].y * v.y + c[2].y * v.z + c[3].y * v.w,
            c[0].z * v.x + c[1].z * v.y + c[2].z * v.z + c[3].z * v.w,
            c[0].w * v.x + c[1].w * v.y + c[2].w * v.z + c[3].w * v.w,
        )
    }

    /// Matrix × matrix.
    pub fn mul(&self, o: &Mat4) -> Mat4 {
        Mat4 {
            cols: [0, 1, 2, 3].map(|i| self.mul_vec(o.cols[i])),
        }
    }

    /// Transform a point (w = 1) and return the homogeneous result.
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        self.mul_vec(Vec4::from_point(p))
    }

    /// Transform a direction (w = 0), ignoring translation.
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec(Vec4::new(d.x, d.y, d.z, 0.0)).xyz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vec3_products() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert!(close(Vec3::new(3.0, 4.0, 0.0).length(), 5.0));
        assert!(close(Vec3::new(10.0, 0.0, 0.0).normalized().x, 1.0));
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn identity_preserves_points() {
        let p = Vec3::new(1.5, -2.0, 3.0);
        let t = Mat4::identity().transform_point(p);
        assert_eq!(t.xyz(), p);
        assert_eq!(t.w, 1.0);
    }

    #[test]
    fn translation_moves_points_not_directions() {
        let m = Mat4::translate(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(
            m.transform_point(Vec3::ZERO).xyz(),
            Vec3::new(1.0, 2.0, 3.0)
        );
        assert_eq!(
            m.transform_dir(Vec3::new(1.0, 0.0, 0.0)),
            Vec3::new(1.0, 0.0, 0.0)
        );
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotate_y(std::f32::consts::FRAC_PI_2);
        let r = m.transform_point(Vec3::new(1.0, 0.0, 0.0)).xyz();
        assert!(close(r.x, 0.0) && close(r.z, -1.0), "{r:?}");
    }

    #[test]
    fn matrix_multiply_composes() {
        let t = Mat4::translate(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::new(2.0, 2.0, 2.0));
        // (t*s) applies scale first, then translation.
        let p = t.mul(&s).transform_point(Vec3::new(1.0, 1.0, 1.0)).xyz();
        assert_eq!(p, Vec3::new(3.0, 2.0, 2.0));
    }

    #[test]
    fn perspective_maps_depth_range() {
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        // A point on the near plane maps to ndc z = 0 after divide.
        let near = m.transform_point(Vec3::new(0.0, 0.0, -1.0));
        assert!(close(near.z / near.w, 0.0), "near z: {}", near.z / near.w);
        let far = m.transform_point(Vec3::new(0.0, 0.0, -100.0));
        assert!(close(far.z / far.w, 1.0), "far z: {}", far.z / far.w);
    }

    #[test]
    fn look_at_centers_the_target() {
        let v = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let c = v.transform_point(Vec3::ZERO).xyz();
        assert!(
            close(c.x, 0.0) && close(c.y, 0.0) && close(c.z, -5.0),
            "{c:?}"
        );
    }

    #[test]
    #[should_panic(expected = "bad projection")]
    fn perspective_rejects_bad_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }
}
