//! Meshes, vertex layout, and the simulated address space.

use crate::math::{Vec2, Vec3};

/// One vertex: position, normal, texture coordinates and a texture-array
/// layer (Planets indexes a layered texture per instance through a vertex
/// attribute — "an index in the vertex attribute describes the layer of the
/// texture to use").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Vertex {
    /// Object-space position.
    pub pos: Vec3,
    /// Object-space normal.
    pub normal: Vec3,
    /// Texture coordinates.
    pub uv: Vec2,
    /// Texture-array layer.
    pub layer: u32,
}

/// Bytes one vertex occupies in the simulated vertex buffer:
/// 3+3 floats + 2 floats + u32 = 36, padded to 48 for alignment.
pub const VERTEX_STRIDE: u64 = 48;

/// Bytes one index occupies.
pub const INDEX_STRIDE: u64 = 4;

/// Bytes of post-transform attributes one vertex writes to the L2 between
/// pipeline stages (clip position + normal + uv as vec4s).
pub const ATTR_STRIDE: u64 = 48;

/// An indexed triangle mesh plus its simulated buffer addresses.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Debug name.
    pub name: String,
    /// Vertex data.
    pub vertices: Vec<Vertex>,
    /// Triangle list (3 indices per triangle).
    pub indices: Vec<u32>,
    /// Base address of the vertex buffer.
    pub vb_addr: u64,
    /// Base address of the index buffer.
    pub ib_addr: u64,
}

impl Mesh {
    /// A mesh with buffers placed by `alloc`.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` is not a multiple of 3 or references a
    /// vertex out of range.
    pub fn new(
        name: impl Into<String>,
        vertices: Vec<Vertex>,
        indices: Vec<u32>,
        alloc: &mut AddressAllocator,
    ) -> Self {
        assert!(indices.len().is_multiple_of(3), "triangle list required");
        let n = vertices.len() as u32;
        assert!(indices.iter().all(|&i| i < n), "index out of range");
        let vb_addr = alloc.alloc(vertices.len() as u64 * VERTEX_STRIDE, 256);
        let ib_addr = alloc.alloc(indices.len() as u64 * INDEX_STRIDE, 256);
        Mesh {
            name: name.into(),
            vertices,
            indices,
            vb_addr,
            ib_addr,
        }
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Byte address of vertex `i`'s record in the vertex buffer.
    pub fn vertex_addr(&self, i: u32) -> u64 {
        self.vb_addr + i as u64 * VERTEX_STRIDE
    }

    /// Byte address of index `i` in the index buffer.
    pub fn index_addr(&self, i: usize) -> u64 {
        self.ib_addr + i as u64 * INDEX_STRIDE
    }
}

/// Bump allocator for the simulated GPU virtual address space.
///
/// Regions: buffers and textures are placed wherever the allocator is
/// seeded; the conventional layout puts vertex/index data at 256 MiB,
/// textures at 1 GiB, inter-stage attributes at 2 GiB and the framebuffer
/// at 3 GiB (see [`AddressAllocator::standard_layout`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressAllocator {
    next: u64,
}

impl AddressAllocator {
    /// An allocator starting at `base`.
    pub fn new(base: u64) -> Self {
        AddressAllocator { next: base }
    }

    /// Allocator for the buffer region of the standard layout (256 MiB).
    pub fn standard_layout() -> AddressAllocator {
        AddressAllocator::new(0x1000_0000)
    }

    /// Base of the texture region (1 GiB).
    pub const TEXTURE_BASE: u64 = 0x4000_0000;

    /// Base of the inter-stage attribute region (2 GiB).
    pub const ATTR_BASE: u64 = 0x8000_0000;

    /// Base of the framebuffer region (3 GiB).
    pub const FRAMEBUFFER_BASE: u64 = 0xC000_0000;

    /// Reserve `size` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + size;
        base
    }

    /// The next free address (watermark).
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(alloc: &mut AddressAllocator) -> Mesh {
        let v = |x: f32, y: f32| Vertex {
            pos: Vec3::new(x, y, 0.0),
            normal: Vec3::new(0.0, 0.0, 1.0),
            uv: Vec2::new(x, y),
            layer: 0,
        };
        Mesh::new(
            "quad",
            vec![v(0.0, 0.0), v(1.0, 0.0), v(1.0, 1.0), v(0.0, 1.0)],
            vec![0, 1, 2, 0, 2, 3],
            alloc,
        )
    }

    #[test]
    fn mesh_addresses_are_strided() {
        let mut a = AddressAllocator::standard_layout();
        let m = quad(&mut a);
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertex_addr(1) - m.vertex_addr(0), VERTEX_STRIDE);
        assert_eq!(m.index_addr(1) - m.index_addr(0), INDEX_STRIDE);
        assert!(
            m.ib_addr >= m.vb_addr + 4 * VERTEX_STRIDE,
            "buffers must not overlap"
        );
    }

    #[test]
    fn allocator_aligns() {
        let mut a = AddressAllocator::new(0x100);
        let x = a.alloc(10, 64);
        assert_eq!(x % 64, 0);
        let y = a.alloc(10, 64);
        assert!(y >= x + 10);
        assert_eq!(y % 64, 0);
    }

    #[test]
    #[should_panic(expected = "triangle list")]
    fn mesh_rejects_ragged_indices() {
        let mut a = AddressAllocator::standard_layout();
        let _ = Mesh::new("bad", vec![Vertex::default()], vec![0, 0], &mut a);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn mesh_rejects_bad_indices() {
        let mut a = AddressAllocator::standard_layout();
        let _ = Mesh::new("bad", vec![Vertex::default()], vec![0, 0, 1], &mut a);
    }
}
