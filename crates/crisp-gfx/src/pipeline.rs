//! The rendering-pipeline driver: executes drawcalls functionally and emits
//! the instruction traces the timing model replays.
//!
//! Per drawcall (paper Figure 2):
//! 1. the index stream is split into 96-vertex batches (②);
//! 2. each batch becomes one CTA of the drawcall's **vertex-shading
//!    kernel** (③) — attribute fetches, transform ALU, and attribute
//!    stores into the L2 attribute ring (`Pipeline` data class);
//! 3. primitives are assembled, backface/near-plane culled, and
//!    rasterized with early-Z; per-fragment LoD is computed here from the
//!    triangle's uv derivatives (④);
//! 4. surviving fragments are sorted in tile/quad order and packed 32 to a
//!    warp into the **fragment-shading kernel** (⑤–⑥): attribute fetch
//!    from the L2, interpolation SFU work, mipmapped texture sampling
//!    through the unified L1, lighting ALU, and a colour store;
//! 5. the ROP is skipped (paper Section III).
//!
//! The same pass also shades pixels functionally into a [`Framebuffer`] so
//! frames can be dumped as PPM images (Figures 5, 8).

use crisp_trace::{
    CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamId,
    StreamKind, WarpTrace, WARP_SIZE,
};

use crate::batch::{vertex_batches, Batch, BATCH_SIZE};
use crate::fb::Framebuffer;
use crate::math::{Mat4, Vec3};
use crate::mesh::{AddressAllocator, Mesh, ATTR_STRIDE};
use crate::raster::{is_backface, rasterize, Fragment, ScreenVertex, TileGrid};
use crate::shader::{FragmentShader, ShaderKind, VertexShader};
use crate::texture::Texture;

/// Bytes of one per-instance record (transform + layer index).
pub const INSTANCE_STRIDE: u64 = 80;

/// One instance of an instanced draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instance {
    /// Instance transform (applied after the drawcall's model matrix).
    pub transform: Mat4,
    /// Texture-array layer this instance samples (Planets' pattern).
    pub layer: u32,
}

impl Instance {
    /// An identity instance using layer 0.
    pub fn identity() -> Self {
        Instance {
            transform: Mat4::identity(),
            layer: 0,
        }
    }
}

/// One recorded drawcall.
#[derive(Debug, Clone)]
pub struct DrawCall {
    /// Debug name (shows up in kernel names and markers).
    pub name: String,
    /// Geometry.
    pub mesh: Mesh,
    /// Bound texture maps; at least `fs.map_slots` entries.
    pub textures: Vec<Texture>,
    /// Vertex-shader cost model.
    pub vs: VertexShader,
    /// Fragment-shader cost model.
    pub fs: FragmentShader,
    /// Model matrix.
    pub model: Mat4,
    /// Instances (a single identity instance for plain draws).
    pub instances: Vec<Instance>,
    /// Base address of the per-instance data buffer.
    pub instance_buffer: u64,
}

impl DrawCall {
    /// A plain single-instance drawcall.
    pub fn simple(
        name: impl Into<String>,
        mesh: Mesh,
        textures: Vec<Texture>,
        fs: FragmentShader,
        model: Mat4,
    ) -> Self {
        DrawCall {
            name: name.into(),
            mesh,
            textures,
            vs: VertexShader::transform(),
            fs,
            model,
            instances: vec![Instance::identity()],
            instance_buffer: 0,
        }
    }
}

/// Statistics for one executed drawcall.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrawStats {
    /// Drawcall name.
    pub name: String,
    /// True vertex-shader invocations (what the hardware profiler reports
    /// as thread count).
    pub vs_invocations: u64,
    /// Threads implied by launched warps (what the simulator reports —
    /// the Figure 3 bottom-left discrepancy).
    pub vs_threads_from_warps: u64,
    /// Vertex batches formed.
    pub batches: u64,
    /// Primitives before culling (after instancing).
    pub prims: u64,
    /// Primitives culled (backface + clip).
    pub culled: u64,
    /// Fragments shaded (post early-Z).
    pub fragments: u64,
    /// Texture-fetch instructions emitted.
    pub tex_instrs: u64,
    /// 32 B sectors those fetches present to the L1 (post-coalescing).
    pub tex_sectors: u64,
    /// Distinct 2 KB DRAM rows the texture footprint spans.
    pub tex_rows: u64,
}

/// Statistics for a full frame.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameStats {
    /// Per-drawcall stats in submission order.
    pub draws: Vec<DrawStats>,
}

impl FrameStats {
    /// Total vertex-shader invocations.
    pub fn vs_invocations(&self) -> u64 {
        self.draws.iter().map(|d| d.vs_invocations).sum()
    }

    /// Total fragments shaded.
    pub fn fragments(&self) -> u64 {
        self.draws.iter().map(|d| d.fragments).sum()
    }

    /// Total texture instructions.
    pub fn tex_instrs(&self) -> u64 {
        self.draws.iter().map(|d| d.tex_instrs).sum()
    }
}

/// Renderer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderConfig {
    /// Framebuffer width in pixels.
    pub width: u32,
    /// Framebuffer height.
    pub height: u32,
    /// Force mip level 0 (the Figure 9 "LoD off" ablation).
    pub lod0: bool,
    /// Warps per fragment-shading CTA.
    pub fs_warps_per_cta: usize,
    /// Stream id for the emitted trace.
    pub stream: StreamId,
    /// Directional light for functional shading.
    pub light_dir: Vec3,
    /// Viewport rectangle `(x, y, w, h)`; `None` = the full framebuffer.
    /// Stereo XR renders each eye into its own half.
    pub viewport: Option<(u32, u32, u32, u32)>,
}

impl RenderConfig {
    /// A renderer at the given resolution with defaults matching the paper
    /// (LoD on, 8 warps per fragment CTA).
    pub fn new(width: u32, height: u32) -> Self {
        RenderConfig {
            width,
            height,
            lod0: false,
            fs_warps_per_cta: 8,
            stream: StreamId(0),
            light_dir: Vec3::new(0.4, 0.8, 0.45).normalized(),
            viewport: None,
        }
    }
}

/// The pipeline driver. Create one per frame (or call
/// [`Renderer::reset`] between frames).
#[derive(Debug)]
pub struct Renderer {
    cfg: RenderConfig,
    fb: Framebuffer,
    attr_cursor: u64,
    stats: FrameStats,
}

impl Renderer {
    /// A renderer with a cleared framebuffer.
    pub fn new(cfg: RenderConfig) -> Self {
        let fb = Framebuffer::new(cfg.width, cfg.height);
        Renderer {
            cfg,
            fb,
            attr_cursor: AddressAllocator::ATTR_BASE,
            stats: FrameStats::default(),
        }
    }

    /// The functional framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Consume the renderer, keeping the shaded framebuffer.
    pub fn into_framebuffer(self) -> Framebuffer {
        self.fb
    }

    /// Frame statistics so far.
    pub fn stats(&self) -> &FrameStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.cfg
    }

    /// Change the viewport for subsequent [`Renderer::render`] calls
    /// (`None` = full framebuffer). Stereo rendering draws each eye into
    /// its own half without clearing in between.
    pub fn set_viewport(&mut self, viewport: Option<(u32, u32, u32, u32)>) {
        self.cfg.viewport = viewport;
    }

    /// Clear framebuffer, stats and the attribute ring for a new frame.
    pub fn reset(&mut self) {
        self.fb.clear();
        self.stats = FrameStats::default();
        self.attr_cursor = AddressAllocator::ATTR_BASE;
    }

    /// Execute a frame's drawcalls (`vkQueueSubmit`): shades the
    /// framebuffer and returns the graphics stream trace — one marker plus
    /// a vertex-shading and a fragment-shading kernel per drawcall.
    pub fn render(&mut self, draws: &[DrawCall], view_proj: &Mat4) -> Stream {
        let mut stream = Stream::new(self.cfg.stream, StreamKind::Graphics);
        for d in draws {
            stream.marker(format!("draw:{}", d.name));
            self.draw(d, view_proj, &mut stream);
        }
        stream
    }

    fn draw(&mut self, d: &DrawCall, view_proj: &Mat4, stream: &mut Stream) {
        assert!(
            d.textures.len() >= d.fs.map_slots,
            "drawcall '{}' binds {} textures but the shader samples {}",
            d.name,
            d.textures.len(),
            d.fs.map_slots
        );
        let mut ds = DrawStats {
            name: d.name.clone(),
            ..DrawStats::default()
        };
        let batches = vertex_batches(&d.mesh.indices, BATCH_SIZE);
        ds.batches = (batches.len() * d.instances.len()) as u64;

        let mut vs_ctas: Vec<CtaTrace> = Vec::new();
        // (fragment, attribute address of its primitive) pairs.
        let mut frags: Vec<(Fragment, u64)> = Vec::new();
        let grid = TileGrid::new(self.cfg.width, self.cfg.height);

        let mut index_pos = 0u64; // running cursor into the index buffer
        for (inst_idx, inst) in d.instances.iter().enumerate() {
            let mvp = view_proj.mul(&d.model).mul(&inst.transform);
            let normal_m = d.model.mul(&inst.transform);
            let inst_addr = d.instance_buffer + inst_idx as u64 * INSTANCE_STRIDE;
            let instanced = d.instances.len() > 1 || d.instance_buffer != 0;
            for b in &batches {
                // Attribute ring slots for this batch's outputs.
                let attr_base = self.attr_cursor;
                self.attr_cursor += b.unique.len() as u64 * ATTR_STRIDE;

                vs_ctas.push(self.vs_cta(d, b, inst_addr, instanced, attr_base, &mut index_pos));
                ds.vs_invocations += b.vs_invocations() as u64;
                ds.vs_threads_from_warps += (b.unique.len().div_ceil(WARP_SIZE) * WARP_SIZE) as u64;

                // Functional transform of the batch's unique vertices.
                let screen: Vec<Option<ScreenVertex>> = b
                    .unique
                    .iter()
                    .map(|&vi| {
                        let v = d.mesh.vertices[vi as usize];
                        let clip = mvp.transform_point(v.pos);
                        let n = normal_m.transform_dir(v.normal).normalized();
                        let layer = if instanced { inst.layer } else { v.layer };
                        ScreenVertex::from_clip_viewport(
                            clip,
                            v.uv,
                            n,
                            layer,
                            self.cfg
                                .viewport
                                .unwrap_or((0, 0, self.cfg.width, self.cfg.height)),
                        )
                    })
                    .collect();

                for p in &b.prims {
                    ds.prims += 1;
                    let (Some(v0), Some(v1), Some(v2)) = (
                        screen[p[0] as usize],
                        screen[p[1] as usize],
                        screen[p[2] as usize],
                    ) else {
                        ds.culled += 1; // near-plane clip
                        continue;
                    };
                    let tri = [v0, v1, v2];
                    if is_backface(&tri) || offscreen(&tri, self.cfg.width, self.cfg.height) {
                        ds.culled += 1;
                        continue;
                    }
                    let attr_addr = attr_base + p[0] as u64 * ATTR_STRIDE;
                    for f in rasterize(&tri, &mut self.fb) {
                        frags.push((f, attr_addr));
                    }
                }
            }
        }
        ds.fragments = frags.len() as u64;
        let mut tex_rows: std::collections::HashSet<u64> = std::collections::HashSet::new();

        // Tile/quad-order sort: fragments grouped by screen locality so
        // quads form naturally within warps (paper's approximated quads).
        frags.sort_by_key(|(f, _)| {
            (
                f.tile(grid.tiles_x),
                (f.y & !1, f.x & !1),
                (f.y & 1, f.x & 1),
            )
        });

        let fs_ctas = self.fs_ctas(d, &frags, &mut ds, &mut tex_rows);
        ds.tex_rows = tex_rows.len() as u64;
        let vs_kernel = KernelTrace::new(
            format!("vs:{}", d.name),
            BATCH_SIZE as u32, // 96 → 3 warps per CTA
            d.vs.regs,
            0,
            vs_ctas,
        );
        let fs_kernel = KernelTrace::new(
            format!("fs:{}", d.name),
            (self.cfg.fs_warps_per_cta * WARP_SIZE) as u32,
            d.fs.regs,
            0,
            fs_ctas,
        );
        stream.launch(vs_kernel);
        stream.launch(fs_kernel);
        self.stats.draws.push(ds);
    }

    /// Build the vertex-shading CTA trace for one batch.
    fn vs_cta(
        &self,
        d: &DrawCall,
        b: &Batch,
        inst_addr: u64,
        instanced: bool,
        attr_base: u64,
        index_pos: &mut u64,
    ) -> CtaTrace {
        let stream = self.cfg.stream;
        let mut warps = Vec::new();
        for (w_idx, chunk) in b.unique.chunks(WARP_SIZE).enumerate() {
            let mut w = WarpTrace::new();
            let lanes = chunk.len();
            // Index fetch: lanes read consecutive u32s from the index buffer.
            w.push(Instr::load(
                Reg(1),
                MemAccess::coalesced(
                    Space::Global,
                    DataClass::Pipeline,
                    4,
                    d.mesh
                        .index_addr((*index_pos + (w_idx * WARP_SIZE) as u64) as usize),
                    lanes,
                ),
            ));
            // Attribute fetches: position, normal, uv per unique vertex.
            for (reg, off, width) in [(2u16, 0u64, 12u8), (3, 12, 12), (4, 24, 8)] {
                let addrs: Vec<u64> = chunk
                    .iter()
                    .map(|&vi| d.mesh.vertex_addr(vi) + off)
                    .collect();
                w.push(Instr::load(
                    Reg(reg),
                    MemAccess::scattered(Space::Global, DataClass::Pipeline, width, addrs),
                ));
            }
            if instanced {
                // All lanes read the same per-instance record: temporal
                // locality across batches, streaming across instances.
                w.push(Instr::load(
                    Reg(5),
                    MemAccess::scattered(
                        Space::Global,
                        DataClass::Pipeline,
                        64,
                        vec![inst_addr; lanes],
                    ),
                ));
            }
            // Transform ALU: one dependence chain through r8..r15, seeded
            // by the attribute registers (every write is read by the next
            // op, so the trace is clean under the dataflow lints).
            for i in 0..d.vs.fp_ops {
                let dst = Reg(8 + (i % 8) as u16);
                let attr = Reg(2 + (i % 3) as u16);
                if i == 0 {
                    w.push(Instr::alu(Op::FpFma, dst, &[attr]));
                } else {
                    w.push(Instr::alu(
                        Op::FpFma,
                        dst,
                        &[attr, Reg(8 + ((i - 1) % 8) as u16)],
                    ));
                }
            }
            for i in 0..d.vs.int_ops {
                let dst = Reg(16 + (i % 4) as u16);
                if i == 0 {
                    w.push(Instr::alu(Op::IntAlu, dst, &[Reg(1)]));
                } else {
                    w.push(Instr::alu(
                        Op::IntAlu,
                        dst,
                        &[Reg(1), Reg(16 + ((i - 1) % 4) as u16)],
                    ));
                }
            }
            // Store post-transform attributes to the L2 attribute ring.
            let attr_addrs: Vec<u64> = (0..lanes)
                .map(|l| attr_base + (w_idx * WARP_SIZE + l) as u64 * ATTR_STRIDE)
                .collect();
            let result = if d.vs.fp_ops > 0 { Reg(8) } else { Reg(1) };
            w.push(Instr::store(
                result,
                MemAccess::scattered(Space::Global, DataClass::Pipeline, 48, attr_addrs),
            ));
            w.seal();
            warps.push(w);
        }
        *index_pos += (b.prims.len() * 3) as u64;
        let _ = stream;
        CtaTrace::new(warps)
    }

    /// Build the fragment-shading kernel CTAs and shade the framebuffer.
    fn fs_ctas(
        &mut self,
        d: &DrawCall,
        frags: &[(Fragment, u64)],
        ds: &mut DrawStats,
        tex_rows: &mut std::collections::HashSet<u64>,
    ) -> Vec<CtaTrace> {
        let mut ctas = Vec::new();
        let mut warps: Vec<WarpTrace> = Vec::new();
        for chunk in frags.chunks(WARP_SIZE) {
            warps.push(self.fs_warp(d, chunk, ds, tex_rows));
            if warps.len() == self.cfg.fs_warps_per_cta {
                ctas.push(CtaTrace::new(std::mem::take(&mut warps)));
            }
        }
        if !warps.is_empty() {
            ctas.push(CtaTrace::new(warps));
        }
        ctas
    }

    fn fs_warp(
        &mut self,
        d: &DrawCall,
        chunk: &[(Fragment, u64)],
        ds: &mut DrawStats,
        tex_rows: &mut std::collections::HashSet<u64>,
    ) -> WarpTrace {
        let mut w = WarpTrace::new();
        let lanes = chunk.len();
        // Fetch the primitive's post-transform attributes from the L2
        // (the inter-stage communication the composition figures show).
        let attr_addrs: Vec<u64> = chunk.iter().map(|(_, a)| *a).collect();
        w.push(Instr::load(
            Reg(1),
            MemAccess::scattered(Space::Global, DataClass::Pipeline, 48, attr_addrs),
        ));
        // Attribute interpolation on the SFU (ipa), chained so each
        // intermediate is consumed before its register is reused.
        for i in 0..6u16 {
            let dst = Reg(2 + i % 3);
            if i == 0 {
                w.push(Instr::alu(Op::Sfu, dst, &[Reg(1)]));
            } else {
                w.push(Instr::alu(Op::Sfu, dst, &[Reg(1), Reg(2 + (i - 1) % 3)]));
            }
        }
        // Texture sampling: for each bound map, the texture unit looks up
        // the LoD pre-computed at rasterization and reads the footprint
        // texels at that mip level through the unified L1. Destination
        // registers rotate so independent fetches overlap (MLP).
        let mut tex_reg = 0u16;
        let mut last_int: Option<Reg> = None;
        for tex in d.textures.iter().take(d.fs.map_slots) {
            for i in 0..d.fs.int_ops.min(2) {
                let dst = Reg(20 + i as u16);
                match last_int {
                    Some(prev) => w.push(Instr::alu(Op::IntAlu, dst, &[Reg(2), prev])),
                    None => w.push(Instr::alu(Op::IntAlu, dst, &[Reg(2)])),
                }
                last_int = Some(dst);
            }
            // Per-lane footprints, emitted as one tex instruction per
            // footprint round (k-th texel of every lane).
            let footprints: Vec<Vec<u64>> = chunk
                .iter()
                .map(|(f, _)| {
                    let lod = tex.lod_from_derivatives(f.duv_dx, f.duv_dy);
                    tex.sample_addrs(f.uv, lod, f.layer.min(tex.layers - 1), self.cfg.lod0)
                })
                .collect();
            let max_fp = footprints.iter().map(Vec::len).max().unwrap_or(0);
            for k in 0..max_fp {
                let addrs: Vec<u64> = footprints
                    .iter()
                    .filter_map(|f| f.get(k).copied())
                    .collect();
                if addrs.is_empty() {
                    continue;
                }
                let access = MemAccess::scattered(
                    Space::Tex,
                    DataClass::Texture,
                    tex.format.bytes() as u8,
                    addrs,
                );
                ds.tex_sectors += access.distinct_chunks(32).len() as u64;
                tex_rows.extend(access.addrs.iter().map(|a| a / 2048));
                w.push(Instr::load(Reg(40 + tex_reg % 12), access));
                tex_reg += 1;
                ds.tex_instrs += 1;
            }
        }
        // Lighting math (consumes the sampled texels). Only registers a
        // tex fetch actually wrote are read; the accumulator chains so
        // each intermediate is consumed before its register is reused.
        let live_tex = tex_reg.min(12);
        for i in 0..d.fs.fp_ops {
            let dst = Reg(8 + (i % 12) as u16);
            let sampled = if live_tex > 0 {
                Reg(40 + (i as u16 % live_tex))
            } else {
                Reg(2)
            };
            let prev = if i == 0 {
                Reg(4)
            } else {
                Reg(8 + ((i - 1) % 12) as u16)
            };
            w.push(Instr::alu(Op::FpFma, dst, &[sampled, prev]));
        }
        let lit = if d.fs.fp_ops > 0 { Reg(8) } else { Reg(2) };
        for i in 0..d.fs.sfu_ops {
            let dst = Reg(6 + (i % 2) as u16);
            let prev = if i == 0 {
                lit
            } else {
                Reg(6 + ((i - 1) % 2) as u16)
            };
            w.push(Instr::alu(Op::Sfu, dst, &[prev]));
        }
        for i in 0..d.fs.int_ops.saturating_sub(2) {
            let dst = Reg(22 + (i % 2) as u16);
            let prev = if i == 0 {
                lit
            } else {
                Reg(22 + ((i - 1) % 2) as u16)
            };
            w.push(Instr::alu(Op::IntAlu, dst, &[prev]));
        }
        // Colour store (the black-box output write; ROP itself is skipped).
        let px_addrs: Vec<u64> = chunk
            .iter()
            .map(|(f, _)| self.fb.pixel_addr(f.x, f.y))
            .collect();
        w.push(Instr::store(
            lit,
            MemAccess::scattered(Space::Global, DataClass::Pipeline, 4, px_addrs),
        ));
        w.seal();
        debug_assert_eq!(lanes.min(WARP_SIZE), lanes);

        // Functional shading into the framebuffer.
        for (f, _) in chunk {
            let rgb = self.shade(d, f);
            self.fb.set_color(f.x, f.y, rgb);
        }
        w
    }

    /// Functional per-fragment colour.
    fn shade(&self, d: &DrawCall, f: &Fragment) -> [u8; 3] {
        let albedo_slot = match d.fs.kind {
            ShaderKind::Pbr => 2.min(d.textures.len() - 1),
            _ => 0,
        };
        let tex = &d.textures[albedo_slot];
        let lod = tex.lod_from_derivatives(f.duv_dx, f.duv_dy);
        let level = tex.select_level(lod, self.cfg.lod0);
        let (tw, th) = tex.level_dims(level);
        let x = ((f.uv.x.rem_euclid(1.0) * tw as f32) as u32).min(tw - 1);
        let y = ((f.uv.y.rem_euclid(1.0) * th as f32) as u32).min(th - 1);
        let base = tex.texel_color(f.layer.min(tex.layers - 1), level, x, y);
        let n_dot_l = f.normal.normalized().dot(self.cfg.light_dir).max(0.0);
        let ambient = 0.25;
        let spec = match d.fs.kind {
            ShaderKind::BasicTextured => 0.0,
            ShaderKind::Phong => n_dot_l.powi(16) * 0.35,
            ShaderKind::Pbr => n_dot_l.powi(8) * 0.25,
        };
        let scale = |c: u8| -> u8 {
            let v = c as f32 * (ambient + 0.75 * n_dot_l) + spec * 255.0;
            v.min(255.0) as u8
        };
        [scale(base[0]), scale(base[1]), scale(base[2])]
    }
}

fn offscreen(tri: &[ScreenVertex; 3], w: u32, h: u32) -> bool {
    let (wf, hf) = (w as f32, h as f32);
    tri.iter().all(|v| v.sx < 0.0)
        || tri.iter().all(|v| v.sx >= wf)
        || tri.iter().all(|v| v.sy < 0.0)
        || tri.iter().all(|v| v.sy >= hf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Vec2;
    use crate::mesh::Vertex;
    use crate::texture::{FilterMode, TextureFormat};
    use crisp_trace::InstrMix;

    fn quad_mesh(alloc: &mut AddressAllocator) -> Mesh {
        let v = |x: f32, y: f32, u: f32, vv: f32| Vertex {
            pos: Vec3::new(x, y, 0.0),
            normal: Vec3::new(0.0, 0.0, 1.0),
            uv: Vec2::new(u, vv),
            layer: 0,
        };
        Mesh::new(
            "quad",
            vec![
                v(-1.0, -1.0, 0.0, 0.0),
                v(1.0, -1.0, 1.0, 0.0),
                v(1.0, 1.0, 1.0, 1.0),
                v(-1.0, 1.0, 0.0, 1.0),
            ],
            vec![0, 1, 2, 0, 2, 3],
            alloc,
        )
    }

    fn tex(alloc: &mut AddressAllocator) -> Texture {
        let base = alloc.alloc(1 << 20, 256);
        Texture::new(
            "t",
            256,
            256,
            1,
            TextureFormat::Rgba8,
            FilterMode::Nearest,
            base,
        )
    }

    fn camera() -> Mat4 {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let view = Mat4::look_at(
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        proj.mul(&view)
    }

    fn render_quad(lod0: bool) -> (Stream, FrameStats, f64) {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let t = tex(&mut alloc);
        let mut cfg = RenderConfig::new(64, 64);
        cfg.lod0 = lod0;
        let mut r = Renderer::new(cfg);
        let d = DrawCall::simple(
            "q",
            mesh,
            vec![t],
            FragmentShader::basic_textured(),
            Mat4::identity(),
        );
        let s = r.render(&[d], &camera());
        let cov = r.framebuffer().coverage();
        (s, r.stats().clone(), cov)
    }

    #[test]
    fn quad_renders_and_emits_two_kernels() {
        let (s, stats, cov) = render_quad(false);
        assert_eq!(s.kernel_count(), 2, "one VS + one FS kernel");
        assert_eq!(stats.draws.len(), 1);
        let d = &stats.draws[0];
        assert_eq!(d.vs_invocations, 4, "four unique vertices in one batch");
        assert_eq!(d.batches, 1);
        assert_eq!(d.prims, 2);
        assert_eq!(d.culled, 0);
        assert!(d.fragments > 0);
        assert!(
            cov > 0.2,
            "quad must cover a good part of the screen: {cov}"
        );
    }

    #[test]
    fn fragments_match_framebuffer_coverage() {
        let (_, stats, cov) = render_quad(false);
        let d = &stats.draws[0];
        let covered_px = (cov * 64.0 * 64.0).round() as u64;
        assert_eq!(d.fragments, covered_px, "no overdraw on a single quad");
    }

    #[test]
    fn backfaces_are_culled() {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let t = tex(&mut alloc);
        let mut r = Renderer::new(RenderConfig::new(32, 32));
        // Flip the winding by rotating the quad 180° about Y.
        let d = DrawCall::simple(
            "back",
            mesh,
            vec![t],
            FragmentShader::basic_textured(),
            Mat4::rotate_y(std::f32::consts::PI),
        );
        let _ = r.render(&[d], &camera());
        let ds = &r.stats().draws[0];
        assert_eq!(ds.culled, 2, "both triangles face away");
        assert_eq!(ds.fragments, 0);
    }

    #[test]
    fn lod0_increases_texture_footprint_pressure() {
        // With a 256² texture on a 64² screen the quad is minified; LoD
        // selects a high mip and merges texels. Forcing mip 0 must spread
        // accesses over far more distinct cache lines.
        let (s_on, stats_on, _) = render_quad(false);
        let (s_off, stats_off, _) = render_quad(true);
        assert_eq!(stats_on.fragments(), stats_off.fragments());
        let lines = |s: &Stream| {
            let mut f = crisp_trace::ClassFootprint::new();
            for k in s.kernels() {
                f.add_kernel(k);
            }
            f.lines(DataClass::Texture)
        };
        let on = lines(&s_on);
        let off = lines(&s_off);
        assert!(
            off as f64 > on as f64 * 3.0,
            "mip-0 footprint must blow up: on={on} lines, off={off} lines"
        );
    }

    #[test]
    fn pbr_emits_more_texture_instructions() {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let maps: Vec<Texture> = (0..8).map(|_| tex(&mut alloc)).collect();
        let mut r = Renderer::new(RenderConfig::new(64, 64));
        let d = DrawCall::simple("pbr", mesh, maps, FragmentShader::pbr(), Mat4::identity());
        let s = r.render(&[d], &camera());
        let pbr_tex = r.stats().draws[0].tex_instrs;
        let (_, basic_stats, _) = render_quad(false);
        assert!(
            pbr_tex >= basic_stats.draws[0].tex_instrs * 6,
            "8 maps must multiply texture work: pbr {pbr_tex} vs basic {}",
            basic_stats.draws[0].tex_instrs
        );
        // Instruction mix sanity: FS kernel dominated by FP with tex loads.
        let fs_kernel = s.kernels().nth(1).unwrap();
        let mix = InstrMix::of_kernel(fs_kernel);
        assert!(mix.tex > 0 && mix.fp > mix.tex);
    }

    #[test]
    fn instanced_draws_scale_vs_work() {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let t = Texture::new(
            "layers",
            128,
            128,
            4,
            TextureFormat::Rgba8,
            FilterMode::Nearest,
            alloc.alloc(1 << 22, 256),
        );
        let ibuf = alloc.alloc(4096, 256);
        let mut d = DrawCall::simple(
            "inst",
            mesh,
            vec![t],
            FragmentShader::basic_textured(),
            Mat4::identity(),
        );
        d.instance_buffer = ibuf;
        d.instances = (0..5)
            .map(|i| Instance {
                transform: Mat4::translate(Vec3::new(i as f32 * 0.2 - 0.4, 0.0, 0.0)),
                layer: i as u32 % 4,
            })
            .collect();
        let mut r = Renderer::new(RenderConfig::new(64, 64));
        let _ = r.render(&[d], &camera());
        let ds = &r.stats().draws[0];
        assert_eq!(
            ds.vs_invocations,
            4 * 5,
            "each instance re-shades the batch"
        );
        assert_eq!(ds.prims, 10);
    }

    #[test]
    fn marker_precedes_kernels() {
        let (s, _, _) = render_quad(false);
        assert!(matches!(s.commands[0], crisp_trace::Command::Marker(_)));
        assert_eq!(s.commands.len(), 3);
    }

    #[test]
    fn reset_clears_frame_state() {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let t = tex(&mut alloc);
        let mut r = Renderer::new(RenderConfig::new(32, 32));
        let d = DrawCall::simple(
            "q",
            mesh,
            vec![t],
            FragmentShader::basic_textured(),
            Mat4::identity(),
        );
        let _ = r.render(std::slice::from_ref(&d), &camera());
        assert!(!r.stats().draws.is_empty());
        r.reset();
        assert!(r.stats().draws.is_empty());
        assert_eq!(r.framebuffer().coverage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "binds 0 textures")]
    fn missing_textures_panic() {
        let mut alloc = AddressAllocator::standard_layout();
        let mesh = quad_mesh(&mut alloc);
        let mut r = Renderer::new(RenderConfig::new(32, 32));
        let d = DrawCall::simple(
            "bad",
            mesh,
            vec![],
            FragmentShader::basic_textured(),
            Mat4::identity(),
        );
        let _ = r.render(&[d], &camera());
    }

    #[test]
    fn vs_threads_from_warps_round_up() {
        let (_, stats, _) = render_quad(false);
        let d = &stats.draws[0];
        // 4 unique vertices → 1 warp → 32 threads reported by the sim side.
        assert_eq!(d.vs_threads_from_warps, 32);
        assert!(d.vs_threads_from_warps >= d.vs_invocations);
    }
}
