//! Rasterization: edge functions, tiles, early-Z, rasterization-time LoD.
//!
//! Implements the paper's Figure 2 stage ④: primitives are transformed from
//! 3-D to 2-D and filled with linear interpolation; the early-Z test
//! eliminates occluded pixels before shading; and because approximated quads
//! cannot compute runtime derivatives, "the LoD for each fragment is
//! calculated during rasterization" and later looked up by the texture unit.

use crate::fb::Framebuffer;
use crate::math::{Vec2, Vec3, Vec4};

/// Screen tile edge in pixels (Immediate Tiled Rendering grid).
pub const TILE_SIZE: u32 = 16;

/// A vertex after the vertex shader, in clip space plus screen mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenVertex {
    /// Clip-space position.
    pub clip: Vec4,
    /// Screen-space x in pixels.
    pub sx: f32,
    /// Screen-space y in pixels.
    pub sy: f32,
    /// NDC depth in [0, 1].
    pub z: f32,
    /// Texture coordinates.
    pub uv: Vec2,
    /// World-space normal.
    pub normal: Vec3,
    /// Texture-array layer.
    pub layer: u32,
}

impl ScreenVertex {
    /// Map a clip-space vertex to the screen. Returns `None` when behind
    /// the camera (w <= 0), which the caller must treat as clipped.
    pub fn from_clip(
        clip: Vec4,
        uv: Vec2,
        normal: Vec3,
        layer: u32,
        width: u32,
        height: u32,
    ) -> Option<Self> {
        Self::from_clip_viewport(clip, uv, normal, layer, (0, 0, width, height))
    }

    /// [`ScreenVertex::from_clip`] into an explicit viewport rectangle
    /// `(x, y, w, h)` — stereo XR rendering maps each eye into its own
    /// half of the framebuffer.
    pub fn from_clip_viewport(
        clip: Vec4,
        uv: Vec2,
        normal: Vec3,
        layer: u32,
        viewport: (u32, u32, u32, u32),
    ) -> Option<Self> {
        if clip.w <= 1e-6 {
            return None;
        }
        let (vx, vy, vw, vh) = viewport;
        let inv_w = 1.0 / clip.w;
        let ndc_x = clip.x * inv_w;
        let ndc_y = clip.y * inv_w;
        let z = clip.z * inv_w;
        Some(ScreenVertex {
            clip,
            sx: vx as f32 + (ndc_x * 0.5 + 0.5) * vw as f32,
            sy: vy as f32 + (0.5 - ndc_y * 0.5) * vh as f32,
            z,
            uv,
            normal,
            layer,
        })
    }
}

/// One fragment produced by the rasterizer, carrying its pre-computed LoD
/// derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fragment {
    /// Pixel x.
    pub x: u32,
    /// Pixel y.
    pub y: u32,
    /// Depth in [0, 1] (smaller = closer).
    pub z: f32,
    /// Interpolated texture coordinates.
    pub uv: Vec2,
    /// d(uv)/dx over the triangle (constant per primitive).
    pub duv_dx: Vec2,
    /// d(uv)/dy over the triangle.
    pub duv_dy: Vec2,
    /// Interpolated normal.
    pub normal: Vec3,
    /// Texture-array layer.
    pub layer: u32,
}

impl Fragment {
    /// The tile this fragment belongs to.
    pub fn tile(&self, tiles_x: u32) -> u32 {
        (self.y / TILE_SIZE) * tiles_x + (self.x / TILE_SIZE)
    }
}

/// Signed double-area of a screen triangle (positive = counter-clockwise in
/// screen space, which with y-down means clockwise in NDC).
pub fn signed_area2(a: (f32, f32), b: (f32, f32), c: (f32, f32)) -> f32 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// Whether a triangle is back-facing (culled) for the given winding.
pub fn is_backface(v: &[ScreenVertex; 3]) -> bool {
    signed_area2((v[0].sx, v[0].sy), (v[1].sx, v[1].sy), (v[2].sx, v[2].sy)) >= 0.0
}

/// Rasterize one triangle with early-Z against `fb`'s depth buffer.
///
/// Fragments that fail the depth test are eliminated before shading ("the
/// early-Z test eliminates the pixels that are blocked to reduce the total
/// number of pixels that need to be rendered"); survivors update the depth
/// buffer immediately.
pub fn rasterize(v: &[ScreenVertex; 3], fb: &mut Framebuffer) -> Vec<Fragment> {
    let (w, h) = (fb.width(), fb.height());
    let (ax, ay) = (v[0].sx, v[0].sy);
    let (bx, by) = (v[1].sx, v[1].sy);
    let (cx, cy) = (v[2].sx, v[2].sy);
    let area = signed_area2((ax, ay), (bx, by), (cx, cy));
    if area.abs() < 1e-9 {
        return Vec::new();
    }
    // Per-triangle constant uv derivatives (affine approximation — the
    // paper's approximated-quads LoD has the same granularity).
    let e1 = (bx - ax, by - ay);
    let e2 = (cx - ax, cy - ay);
    let det = e1.0 * e2.1 - e1.1 * e2.0;
    let duv1 = v[1].uv - v[0].uv;
    let duv2 = v[2].uv - v[0].uv;
    let inv_det = 1.0 / det;
    let duv_dx = Vec2::new(
        (duv1.x * e2.1 - duv2.x * e1.1) * inv_det,
        (duv1.y * e2.1 - duv2.y * e1.1) * inv_det,
    );
    let duv_dy = Vec2::new(
        (duv2.x * e1.0 - duv1.x * e2.0) * inv_det,
        (duv2.y * e1.0 - duv1.y * e2.0) * inv_det,
    );

    let min_x = ax.min(bx).min(cx).floor().max(0.0) as u32;
    let max_x = (ax.max(bx).max(cx).ceil() as i64).clamp(0, w as i64) as u32;
    let min_y = ay.min(by).min(cy).floor().max(0.0) as u32;
    let max_y = (ay.max(by).max(cy).ceil() as i64).clamp(0, h as i64) as u32;

    let inv_area = 1.0 / area;
    let mut frags = Vec::new();
    for py in min_y..max_y {
        for px in min_x..max_x {
            let p = (px as f32 + 0.5, py as f32 + 0.5);
            let w0 = signed_area2((bx, by), (cx, cy), p) * inv_area;
            let w1 = signed_area2((cx, cy), (ax, ay), p) * inv_area;
            let w2 = signed_area2((ax, ay), (bx, by), p) * inv_area;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let z = w0 * v[0].z + w1 * v[1].z + w2 * v[2].z;
            if !(0.0..=1.0).contains(&z) {
                continue; // outside the depth range (near/far clipped)
            }
            // Early-Z: test and update before any shading happens.
            if !fb.depth_test_and_set(px, py, z) {
                continue;
            }
            let uv = Vec2::new(
                w0 * v[0].uv.x + w1 * v[1].uv.x + w2 * v[2].uv.x,
                w0 * v[0].uv.y + w1 * v[1].uv.y + w2 * v[2].uv.y,
            );
            let normal = Vec3::new(
                w0 * v[0].normal.x + w1 * v[1].normal.x + w2 * v[2].normal.x,
                w0 * v[0].normal.y + w1 * v[1].normal.y + w2 * v[2].normal.y,
                w0 * v[0].normal.z + w1 * v[1].normal.z + w2 * v[2].normal.z,
            );
            frags.push(Fragment {
                x: px,
                y: py,
                z,
                uv,
                duv_dx,
                duv_dy,
                normal,
                layer: v[0].layer,
            });
        }
    }
    frags
}

/// The ITR screen-tile grid: maps fragments/primitives to tiles and tiles
/// to the SM that rasterizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Tiles per row.
    pub tiles_x: u32,
    /// Tile rows.
    pub tiles_y: u32,
}

impl TileGrid {
    /// The grid covering a `width`×`height` screen.
    pub fn new(width: u32, height: u32) -> Self {
        TileGrid {
            tiles_x: width.div_ceil(TILE_SIZE),
            tiles_y: height.div_ceil(TILE_SIZE),
        }
    }

    /// Total tiles.
    pub fn count(&self) -> u32 {
        self.tiles_x * self.tiles_y
    }

    /// Tiles overlapped by a screen-space bounding box.
    pub fn tiles_for_bbox(&self, min_x: f32, min_y: f32, max_x: f32, max_y: f32) -> Vec<u32> {
        let tx0 = (min_x.max(0.0) as u32 / TILE_SIZE).min(self.tiles_x.saturating_sub(1));
        let ty0 = (min_y.max(0.0) as u32 / TILE_SIZE).min(self.tiles_y.saturating_sub(1));
        let tx1 = ((max_x.max(0.0) as u32) / TILE_SIZE).min(self.tiles_x.saturating_sub(1));
        let ty1 = ((max_y.max(0.0) as u32) / TILE_SIZE).min(self.tiles_y.saturating_sub(1));
        let mut out = Vec::new();
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                out.push(ty * self.tiles_x + tx);
            }
        }
        out
    }

    /// Round-robin tile → SM assignment (survivor redistribution over the
    /// interconnect, stage ④).
    pub fn sm_for_tile(&self, tile: u32, n_sms: usize) -> usize {
        (tile as usize) % n_sms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(sx: f32, sy: f32, z: f32, uv: Vec2) -> ScreenVertex {
        ScreenVertex {
            clip: Vec4::new(0.0, 0.0, 0.0, 1.0),
            sx,
            sy,
            z,
            uv,
            normal: Vec3::new(0.0, 0.0, 1.0),
            layer: 0,
        }
    }

    fn full_quad_tris(size: f32) -> [[ScreenVertex; 3]; 2] {
        // Two triangles covering [0,size)². Screen-space CCW in y-down
        // coordinates (negative signed area) to pass is_backface.
        let a = sv(0.0, 0.0, 0.5, Vec2::new(0.0, 0.0));
        let b = sv(size, 0.0, 0.5, Vec2::new(1.0, 0.0));
        let c = sv(size, size, 0.5, Vec2::new(1.0, 1.0));
        let d = sv(0.0, size, 0.5, Vec2::new(0.0, 1.0));
        [[a, c, b], [a, d, c]]
    }

    #[test]
    fn full_screen_quad_covers_every_pixel() {
        let mut fb = Framebuffer::new(16, 16);
        let tris = full_quad_tris(16.0);
        let n: usize = tris.iter().map(|t| rasterize(t, &mut fb).len()).sum();
        assert_eq!(n, 256, "every pixel covered exactly once");
    }

    #[test]
    fn early_z_eliminates_occluded_fragments() {
        let mut fb = Framebuffer::new(8, 8);
        let mut near = full_quad_tris(8.0);
        for t in &mut near {
            for v in t.iter_mut() {
                v.z = 0.2;
            }
        }
        let n_near: usize = near.iter().map(|t| rasterize(t, &mut fb).len()).sum();
        assert_eq!(n_near, 64);
        // A farther quad drawn after is fully occluded.
        let far = full_quad_tris(8.0);
        let n_far: usize = far.iter().map(|t| rasterize(t, &mut fb).len()).sum();
        assert_eq!(n_far, 0, "early-Z must kill occluded fragments");
    }

    #[test]
    fn closer_geometry_still_passes() {
        let mut fb = Framebuffer::new(8, 8);
        let far = full_quad_tris(8.0);
        for t in &far {
            let _ = rasterize(t, &mut fb);
        }
        let mut near = full_quad_tris(8.0);
        for t in &mut near {
            for v in t.iter_mut() {
                v.z = 0.1;
            }
        }
        let n: usize = near.iter().map(|t| rasterize(t, &mut fb).len()).sum();
        assert_eq!(n, 64, "closer fragments replace farther ones");
    }

    #[test]
    fn uv_interpolation_spans_the_quad() {
        let mut fb = Framebuffer::new(16, 16);
        let tris = full_quad_tris(16.0);
        let frags: Vec<Fragment> = tris.iter().flat_map(|t| rasterize(t, &mut fb)).collect();
        let corner = frags.iter().find(|f| f.x == 0 && f.y == 0).unwrap();
        assert!(corner.uv.x < 0.1 && corner.uv.y < 0.1);
        let opposite = frags.iter().find(|f| f.x == 15 && f.y == 15).unwrap();
        assert!(opposite.uv.x > 0.9 && opposite.uv.y > 0.9);
    }

    #[test]
    fn derivatives_match_screen_mapping() {
        // uv spans 1.0 over 16 pixels → |duv/dx| = 1/16 per pixel.
        let mut fb = Framebuffer::new(16, 16);
        let tris = full_quad_tris(16.0);
        let frags = rasterize(&tris[0], &mut fb);
        let f = &frags[0];
        assert!((f.duv_dx.x - 1.0 / 16.0).abs() < 1e-4, "{:?}", f.duv_dx);
        assert!((f.duv_dy.y - 1.0 / 16.0).abs() < 1e-4, "{:?}", f.duv_dy);
    }

    #[test]
    fn degenerate_triangle_produces_nothing() {
        let mut fb = Framebuffer::new(8, 8);
        let a = sv(1.0, 1.0, 0.5, Vec2::default());
        let t = [a, a, a];
        assert!(rasterize(&t, &mut fb).is_empty());
    }

    #[test]
    fn backface_detection() {
        let tris = full_quad_tris(8.0);
        assert!(!is_backface(&tris[0]));
        let flipped = [tris[0][0], tris[0][2], tris[0][1]];
        assert!(is_backface(&flipped));
    }

    #[test]
    fn from_clip_rejects_behind_camera() {
        let v = ScreenVertex::from_clip(
            Vec4::new(0.0, 0.0, 0.0, -1.0),
            Vec2::default(),
            Vec3::ZERO,
            0,
            64,
            64,
        );
        assert!(v.is_none());
    }

    #[test]
    fn viewport_offsets_the_mapping() {
        // NDC origin lands at the viewport's centre, not the screen's.
        let v = ScreenVertex::from_clip_viewport(
            Vec4::new(0.0, 0.0, 0.5, 1.0),
            Vec2::default(),
            Vec3::ZERO,
            0,
            (100, 20, 50, 40),
        )
        .unwrap();
        assert!((v.sx - 125.0).abs() < 1e-4);
        assert!((v.sy - 40.0).abs() < 1e-4);
    }

    #[test]
    fn from_clip_maps_ndc_to_pixels() {
        let v = ScreenVertex::from_clip(
            Vec4::new(0.0, 0.0, 0.5, 1.0),
            Vec2::default(),
            Vec3::ZERO,
            0,
            100,
            50,
        )
        .unwrap();
        assert!((v.sx - 50.0).abs() < 1e-4);
        assert!((v.sy - 25.0).abs() < 1e-4);
        assert!((v.z - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tile_grid_covers_screen() {
        let g = TileGrid::new(100, 60);
        assert_eq!(g.tiles_x, 7);
        assert_eq!(g.tiles_y, 4);
        assert_eq!(g.count(), 28);
        let all = g.tiles_for_bbox(0.0, 0.0, 99.0, 59.0);
        assert_eq!(all.len(), 28);
        let one = g.tiles_for_bbox(2.0, 2.0, 10.0, 10.0);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn fragments_know_their_tile() {
        let f = Fragment {
            x: 33,
            y: 17,
            z: 0.0,
            uv: Vec2::default(),
            duv_dx: Vec2::default(),
            duv_dy: Vec2::default(),
            normal: Vec3::ZERO,
            layer: 0,
        };
        let g = TileGrid::new(64, 64);
        assert_eq!(f.tile(g.tiles_x), 4 + (33 / 16));
    }

    #[test]
    fn tile_to_sm_round_robin() {
        let g = TileGrid::new(64, 64);
        assert_eq!(g.sm_for_tile(0, 4), 0);
        assert_eq!(g.sm_for_tile(5, 4), 1);
    }
}
