//! Shader descriptors.
//!
//! CRISP's timing model consumes *traces*, so a shader is characterised by
//! the instruction mix it emits per invocation and the texture maps it
//! samples — the properties that drive every case study (ALU/SFU pressure,
//! register occupancy limits, texture traffic). The functional colour
//! computation lives in the pipeline.
//!
//! Presets mirror the paper's workloads: the Khronos Sponza uses "a simpler
//! shader ... only one texture is referenced per drawcall", while the PBR
//! scenes (Godot Sponza, Pistol) sample eight maps and run the full
//! physically-based lighting math.

/// Which lighting model the functional shader applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShaderKind {
    /// Albedo texture × N·L diffuse — the Khronos-samples style shader.
    BasicTextured,
    /// Per-fragment specular Phong.
    Phong,
    /// Physically-based rendering with the 8-map set the Pistol scene
    /// binds: irradiance, BRDF LUT, albedo, normal, prefilter, AO,
    /// metallic, roughness.
    Pbr,
}

/// Vertex-shader cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexShader {
    /// FMA-class operations per vertex.
    pub fp_ops: u32,
    /// Integer operations per vertex (index/address math).
    pub int_ops: u32,
    /// Registers per thread.
    pub regs: u32,
}

impl VertexShader {
    /// The standard model-view-projection transform plus normal transform:
    /// two 4×4 matrix multiplies and a 3×3 (≈ 28 FMA).
    pub fn transform() -> Self {
        VertexShader {
            fp_ops: 28,
            int_ops: 6,
            regs: 32,
        }
    }

    /// A heavier vertex shader (skinning-like workloads).
    pub fn skinned() -> Self {
        VertexShader {
            fp_ops: 96,
            int_ops: 14,
            regs: 48,
        }
    }
}

/// Fragment-shader cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentShader {
    /// Lighting model for functional shading.
    pub kind: ShaderKind,
    /// FMA-class operations per fragment.
    pub fp_ops: u32,
    /// SFU operations per fragment (pow, rsqrt, attribute interpolation).
    pub sfu_ops: u32,
    /// Integer operations per fragment (texture addressing).
    pub int_ops: u32,
    /// Registers per thread — PBR's pressure is what causes the
    /// register-limited occupancy dips of Figure 13.
    pub regs: u32,
    /// Texture maps sampled (must match the bound texture count).
    pub map_slots: usize,
}

impl FragmentShader {
    /// The Khronos-samples basic shader: one albedo map, diffuse lighting.
    pub fn basic_textured() -> Self {
        FragmentShader {
            kind: ShaderKind::BasicTextured,
            fp_ops: 18,
            sfu_ops: 6,
            int_ops: 6,
            regs: 24,
            map_slots: 1,
        }
    }

    /// Phong with one map.
    pub fn phong() -> Self {
        FragmentShader {
            kind: ShaderKind::Phong,
            fp_ops: 34,
            sfu_ops: 10,
            int_ops: 8,
            regs: 32,
            map_slots: 1,
        }
    }

    /// Full PBR with the eight-map material set.
    pub fn pbr() -> Self {
        FragmentShader {
            kind: ShaderKind::Pbr,
            fp_ops: 150,
            sfu_ops: 26,
            int_ops: 18,
            regs: 64,
            map_slots: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pbr_is_heavier_than_basic_in_every_dimension() {
        let b = FragmentShader::basic_textured();
        let p = FragmentShader::pbr();
        assert!(p.fp_ops > b.fp_ops);
        assert!(p.sfu_ops > b.sfu_ops);
        assert!(p.regs > b.regs);
        assert_eq!(p.map_slots, 8, "the Pistol material binds 8 maps");
        assert_eq!(b.map_slots, 1, "Sponza references one texture per drawcall");
    }

    #[test]
    fn vertex_presets() {
        assert!(VertexShader::skinned().fp_ops > VertexShader::transform().fp_ops);
    }
}
