//! Sectored set-associative cache tag array.
//!
//! 128 B lines split into four 32 B sectors, matching NVIDIA's L1/L2
//! organisation modelled by Accel-Sim: tags are allocated per line but data
//! is fetched and validated per sector, so a "line hit, sector miss" fetches
//! only the missing sector.

use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId, LINE_BYTES};

use crate::req::MemReq;
use crate::stats::{CompositionSnapshot, MemStats};

/// Size/associativity of a cache. Line size is fixed at 128 B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: u32,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a whole number of `assoc`-way sets.
    pub fn sets(&self) -> u64 {
        let denom = LINE_BYTES * self.assoc as u64;
        assert!(
            self.size_bytes.is_multiple_of(denom) && self.size_bytes > 0,
            "capacity {}B is not a multiple of assoc*line ({}B)",
            self.size_bytes,
            denom
        );
        self.size_bytes / denom
    }

    /// Total line capacity.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

/// Victim-selection policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Evict the least-recently-used way (the paper's baseline: "The
    /// baseline cache replacement policy, LRU, is efficient enough").
    Lru,
    /// Evict a pseudo-random way (cheap hardware approximation; GPUs often
    /// ship non-LRU L2s). Deterministic: derived from the access clock.
    Random,
}

/// How an access intends to use the line (read or write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load: needs the sector's data.
    Read,
    /// Store with write-validate semantics: the sector becomes valid and
    /// dirty without a fill (GPGPU-Sim's lazy-fetch-on-read policy).
    WriteValidate,
    /// Store that updates the sector only if present (L1 write-through,
    /// no-allocate).
    WriteNoAllocate,
}

/// Result of probing the tag array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Tag and sector present.
    Hit,
    /// Tag present but the sector is invalid: fetch one sector.
    SectorMiss,
    /// Tag absent: a fill will allocate (possibly evicting).
    LineMiss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid_sectors: u8,
    dirty_sectors: u8,
    last_use: u64,
    owner_stream: StreamId,
    owner_class: DataClass,
}

impl Line {
    const INVALID: Line = Line {
        tag: u64::MAX,
        valid_sectors: 0,
        dirty_sectors: 0,
        last_use: 0,
        owner_stream: StreamId(u32::MAX),
        owner_class: DataClass::Compute,
    };

    fn is_valid(&self) -> bool {
        self.valid_sectors != 0
    }
}

/// A dirty-line writeback produced by an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Line address of the evicted line.
    pub line_addr: u64,
    /// Number of dirty sectors to write to the next level.
    pub dirty_sectors: u32,
    /// Stream that owned the line (its bandwidth is charged).
    pub stream: StreamId,
}

/// The tag array plus LRU state and statistics.
///
/// Set-index computation accepts an explicit `(start, count)` set window so
/// the TAP controller can confine a stream to a subset of sets; pass
/// `(0, sets)` for an unpartitioned cache.
#[derive(Debug, Clone)]
pub struct CacheCore {
    geom: CacheGeometry,
    sets: u64,
    lines: Vec<Line>,
    clock: u64,
    stats: MemStats,
    replacement: Replacement,
}

impl CacheCore {
    /// An empty cache with the given geometry and LRU replacement.
    pub fn new(geom: CacheGeometry) -> Self {
        CacheCore::with_replacement(geom, Replacement::Lru)
    }

    /// An empty cache with an explicit replacement policy.
    pub fn with_replacement(geom: CacheGeometry, replacement: Replacement) -> Self {
        let sets = geom.sets();
        CacheCore {
            geom,
            sets,
            lines: vec![Line::INVALID; (sets * geom.assoc as u64) as usize],
            clock: 0,
            stats: MemStats::new(),
            replacement,
        }
    }

    /// Geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Total number of sets.
    pub fn num_sets(&self) -> u64 {
        self.sets
    }

    /// Access statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Reset statistics (tags are kept).
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// Record an access that merged onto an in-flight MSHR entry without
    /// probing the tag array (counted as an access and a miss).
    pub fn record_mshr_merge(&mut self, stream: StreamId, class: DataClass) {
        self.stats.record(stream, class, false);
    }

    fn set_index(&self, line_addr: u64, window: (u64, u64)) -> u64 {
        let (start, count) = window;
        debug_assert!(count >= 1 && start + count <= self.sets, "bad set window");
        // Fibonacci (multiplicative) hashing. The L2 bank interleave
        // consumes mid address bits, so a plain modulo (or xor-fold) set
        // index correlates with the bank id and collapses each bank's
        // resident lines onto a handful of sets; the multiplicative hash
        // decorrelates them (GPUs use xor-hash set functions for the same
        // reason).
        let blk = line_addr / LINE_BYTES;
        let h = blk.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        start + h % count
    }

    fn ways(&mut self, set: u64) -> &mut [Line] {
        let a = self.geom.assoc as usize;
        let base = set as usize * a;
        &mut self.lines[base..base + a]
    }

    /// Probe-and-update for one sector request.
    ///
    /// Records statistics, updates LRU on hits and applies store semantics.
    /// On `WriteValidate` misses the line/sector is allocated immediately and
    /// the outcome still reports the miss so bandwidth can be charged; any
    /// eviction this causes is returned through `fill`-style writeback in
    /// [`CacheCore::write_validate`] — use that method for L2 stores.
    pub fn access(&mut self, req: &MemReq, kind: AccessKind, window: (u64, u64)) -> AccessOutcome {
        self.clock += 1;
        let tag = req.line_addr();
        let sector_bit = 1u8 << req.sector_in_line();
        let set = self.set_index(tag, window);
        let clock = self.clock;
        let ways = self.ways(set);
        let outcome = match ways.iter_mut().find(|l| l.is_valid() && l.tag == tag) {
            Some(line) => {
                if line.valid_sectors & sector_bit != 0 {
                    line.last_use = clock;
                    // Write-validate marks dirty; write-through (no-allocate)
                    // keeps the line clean — the data is forwarded to the
                    // next level, so a later eviction must not re-send it.
                    if matches!(kind, AccessKind::WriteValidate) {
                        line.dirty_sectors |= sector_bit;
                    }
                    AccessOutcome::Hit
                } else {
                    line.last_use = clock;
                    AccessOutcome::SectorMiss
                }
            }
            None => AccessOutcome::LineMiss,
        };
        self.stats
            .record(req.stream, req.class, outcome == AccessOutcome::Hit);
        outcome
    }

    /// Install one sector (a fill returning from the next level, or a
    /// write-validate allocation). Returns the writeback of the victim line
    /// if a dirty line had to be evicted.
    pub fn fill(
        &mut self,
        line_addr: u64,
        sector: u64,
        stream: StreamId,
        class: DataClass,
        dirty: bool,
        window: (u64, u64),
    ) -> Option<Writeback> {
        self.clock += 1;
        let sector_bit = 1u8 << sector;
        let set = self.set_index(line_addr, window);
        let clock = self.clock;
        {
            let ways = self.ways(set);
            // Sector fill into an already-resident line.
            if let Some(line) = ways.iter_mut().find(|l| l.is_valid() && l.tag == line_addr) {
                line.valid_sectors |= sector_bit;
                if dirty {
                    line.dirty_sectors |= sector_bit;
                }
                line.last_use = clock;
                return None;
            }
        }
        // Allocate: prefer an invalid way, else evict per the policy.
        let replacement = self.replacement;
        let ways = self.ways(set);
        let victim = if let Some(inv) = ways.iter().position(|l| !l.is_valid()) {
            &mut ways[inv]
        } else {
            match replacement {
                Replacement::Lru => ways
                    .iter_mut()
                    .min_by_key(|l| l.last_use)
                    .expect("associativity >= 1"),
                Replacement::Random => {
                    // Deterministic pseudo-random way from the clock.
                    let n = ways.len();
                    let idx = (clock.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
                    &mut ways[idx]
                }
            }
        };
        let wb = if victim.is_valid() && victim.dirty_sectors != 0 {
            Some(Writeback {
                line_addr: victim.tag,
                dirty_sectors: victim.dirty_sectors.count_ones(),
                stream: victim.owner_stream,
            })
        } else {
            None
        };
        *victim = Line {
            tag: line_addr,
            valid_sectors: sector_bit,
            dirty_sectors: if dirty { sector_bit } else { 0 },
            last_use: clock,
            owner_stream: stream,
            owner_class: class,
        };
        wb
    }

    /// Apply a write with write-validate (allocate-on-write) semantics; used
    /// by the L2. Returns `(was_hit, eviction writeback)`.
    pub fn write_validate(
        &mut self,
        req: &MemReq,
        window: (u64, u64),
    ) -> (bool, Option<Writeback>) {
        let out = self.access(req, AccessKind::WriteValidate, window);
        match out {
            AccessOutcome::Hit => (true, None),
            AccessOutcome::SectorMiss | AccessOutcome::LineMiss => {
                let wb = self.fill(
                    req.line_addr(),
                    req.sector_in_line(),
                    req.stream,
                    req.class,
                    true,
                    window,
                );
                (false, wb)
            }
        }
    }

    /// Invalidate every line (statistics are kept).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::INVALID;
        }
    }

    /// Snapshot the composition of valid lines by `(stream, class)` owner —
    /// the measurement behind the paper's Figures 11 and 15.
    pub fn composition(&self) -> CompositionSnapshot {
        let mut c = CompositionSnapshot::new(self.geom.lines());
        for l in &self.lines {
            if l.is_valid() {
                c.add_line(l.owner_stream, l.owner_class);
            }
        }
        c
    }
}

impl CheckpointState for CacheCore {
    type SaveCtx<'a> = ();
    /// Geometry and replacement policy come from the configuration stored
    /// once at the top of the checkpoint, not per cache.
    type RestoreCtx<'a> = (CacheGeometry, Replacement);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.len(self.lines.len())?;
        for l in &self.lines {
            w.u64(l.tag)?;
            w.u8(l.valid_sectors)?;
            w.u8(l.dirty_sectors)?;
            w.u64(l.last_use)?;
            w.stream(l.owner_stream)?;
            w.class(l.owner_class)?;
        }
        // The access clock drives LRU ages and the deterministic Random
        // victim; it must survive bit-exactly.
        w.u64(self.clock)?;
        self.stats.save(w, ())
    }

    fn restore<R: io::Read>(
        r: &mut Reader<R>,
        (geom, replacement): (CacheGeometry, Replacement),
    ) -> io::Result<Self> {
        let sets = geom.sets();
        let expected = (sets * geom.assoc as u64) as usize;
        let n = r.len(expected)?;
        if n != expected {
            return Err(bad(format!(
                "cache has {n} lines, geometry implies {expected}"
            )));
        }
        let mut lines = Vec::with_capacity(n);
        for _ in 0..n {
            lines.push(Line {
                tag: r.u64()?,
                valid_sectors: r.u8()?,
                dirty_sectors: r.u8()?,
                last_use: r.u64()?,
                owner_stream: r.stream()?,
                owner_class: r.class()?,
            });
        }
        Ok(CacheCore {
            geom,
            sets,
            lines,
            clock: r.u64()?,
            stats: MemStats::restore(r, ())?,
            replacement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::ReqToken;

    const TOK: ReqToken = ReqToken { sm: 0, id: 0 };
    const S0: StreamId = StreamId(0);

    fn geom_tiny() -> CacheGeometry {
        // 2 sets × 2 ways × 128 B.
        CacheGeometry {
            size_bytes: 512,
            assoc: 2,
        }
    }

    fn rd(addr: u64) -> MemReq {
        MemReq::read(addr, S0, DataClass::Compute, TOK)
    }

    fn full(c: &CacheCore) -> (u64, u64) {
        (0, c.num_sets())
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(
            CacheGeometry {
                size_bytes: 4 << 20,
                assoc: 16
            }
            .sets(),
            2048
        );
        assert_eq!(
            CacheGeometry {
                size_bytes: 4 << 20,
                assoc: 16
            }
            .lines(),
            32768
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn geometry_rejects_ragged_capacity() {
        let _ = CacheGeometry {
            size_bytes: 1000,
            assoc: 3,
        }
        .sets();
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        let r = rd(0x80);
        assert_eq!(c.access(&r, AccessKind::Read, w), AccessOutcome::LineMiss);
        assert!(c
            .fill(
                r.line_addr(),
                r.sector_in_line(),
                S0,
                DataClass::Compute,
                false,
                w
            )
            .is_none());
        assert_eq!(c.access(&r, AccessKind::Read, w), AccessOutcome::Hit);
        let s = c.stats().get(S0, DataClass::Compute);
        assert_eq!((s.accesses, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn sector_miss_on_resident_line() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        let r0 = rd(0x100); // sector 0 of line 0x100
        let r1 = rd(0x120); // sector 1 of same line
        assert_eq!(c.access(&r0, AccessKind::Read, w), AccessOutcome::LineMiss);
        c.fill(
            r0.line_addr(),
            r0.sector_in_line(),
            S0,
            DataClass::Compute,
            false,
            w,
        );
        assert_eq!(
            c.access(&r1, AccessKind::Read, w),
            AccessOutcome::SectorMiss
        );
        c.fill(
            r1.line_addr(),
            r1.sector_in_line(),
            S0,
            DataClass::Compute,
            false,
            w,
        );
        assert_eq!(c.access(&r1, AccessKind::Read, w), AccessOutcome::Hit);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        // Find three lines that hash to the same set of the 2-way cache.
        let target = c.set_index(0, w);
        let conflicting: Vec<u64> = (0..4096u64)
            .map(|i| i * LINE_BYTES)
            .filter(|&a| c.set_index(a, w) == target)
            .take(3)
            .collect();
        assert_eq!(conflicting.len(), 3, "need three conflicting lines");
        for &a in &conflicting {
            let r = rd(a);
            assert_eq!(c.access(&r, AccessKind::Read, w), AccessOutcome::LineMiss);
            c.fill(r.line_addr(), 0, S0, DataClass::Compute, false, w);
        }
        // First line was LRU and must be gone; the last two must be resident.
        assert_eq!(
            c.access(&rd(conflicting[0]), AccessKind::Read, w),
            AccessOutcome::LineMiss
        );
        assert_eq!(
            c.access(&rd(conflicting[1]), AccessKind::Read, w),
            AccessOutcome::Hit
        );
        assert_eq!(
            c.access(&rd(conflicting[2]), AccessKind::Read, w),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn random_replacement_still_caches() {
        let mut c = CacheCore::with_replacement(geom_tiny(), Replacement::Random);
        let w = full(&c);
        let r = rd(0x80);
        let _ = c.access(&r, AccessKind::Read, w);
        c.fill(
            r.line_addr(),
            r.sector_in_line(),
            S0,
            DataClass::Compute,
            false,
            w,
        );
        assert_eq!(c.access(&r, AccessKind::Read, w), AccessOutcome::Hit);
        // Under conflict pressure it evicts *something* but stays bounded.
        for i in 0..256u64 {
            let q = rd(i * LINE_BYTES);
            if c.access(&q, AccessKind::Read, w) != AccessOutcome::Hit {
                c.fill(q.line_addr(), 0, S0, DataClass::Compute, false, w);
            }
        }
        let comp = c.composition();
        assert!(comp.valid_lines() <= comp.capacity_lines);
        assert!(comp.valid_lines() > 0);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        // Find three lines hashing to the same set of the 2-way cache.
        let target = c.set_index(0, w);
        let conflicting: Vec<u64> = (0..4096u64)
            .map(|i| i * LINE_BYTES)
            .filter(|&a| c.set_index(a, w) == target)
            .take(3)
            .collect();
        let wr = MemReq::write(conflicting[0], S0, DataClass::Pipeline, TOK);
        let (hit, wb) = c.write_validate(&wr, w);
        assert!(!hit);
        assert!(wb.is_none());
        // Evict it by filling two more lines into the same set.
        let wb1 = c.fill(conflicting[1], 0, S0, DataClass::Compute, false, w);
        assert!(wb1.is_none());
        let wb2 = c.fill(conflicting[2], 0, S0, DataClass::Compute, false, w);
        let wb2 = wb2.expect("dirty line must be written back");
        assert_eq!(wb2.line_addr, conflicting[0]);
        assert_eq!(wb2.dirty_sectors, 1);
        assert_eq!(wb2.stream, S0);
    }

    #[test]
    fn write_validate_hit_marks_dirty_without_writeback() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        let wr = MemReq::write(0x40, S0, DataClass::Pipeline, TOK);
        let _ = c.write_validate(&wr, w);
        let (hit, wb) = c.write_validate(&wr, w);
        assert!(hit);
        assert!(wb.is_none());
    }

    #[test]
    fn set_window_confines_indexing() {
        // 8-set cache; restrict a stream to sets [4, 8).
        let mut c = CacheCore::new(CacheGeometry {
            size_bytes: 8 * 2 * 128,
            assoc: 2,
        });
        let win = (4, 4);
        for i in 0..64u64 {
            let r = rd(i * LINE_BYTES);
            let _ = c.access(&r, AccessKind::Read, win);
            c.fill(r.line_addr(), 0, S0, DataClass::Compute, false, win);
        }
        // Sets 0..4 must still be empty: a probe over the full range for an
        // address that would map there must be a line miss AND the
        // composition must show at most 4 sets × 2 ways = 8 valid lines.
        assert!(c.composition().valid_lines() <= 8);
    }

    #[test]
    fn composition_tracks_owner() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        c.fill(0x000, 0, StreamId(0), DataClass::Texture, false, w);
        c.fill(0x100, 0, StreamId(1), DataClass::Compute, false, w);
        let comp = c.composition();
        assert_eq!(comp.valid_lines(), 2);
        assert_eq!(comp.class_lines(DataClass::Texture), 1);
        assert_eq!(comp.stream_lines(StreamId(1)), 1);
        assert_eq!(comp.capacity_lines, 4);
    }

    #[test]
    fn invalidate_all_clears_tags_not_stats() {
        let mut c = CacheCore::new(geom_tiny());
        let w = full(&c);
        let r = rd(0);
        let _ = c.access(&r, AccessKind::Read, w);
        c.fill(0, 0, S0, DataClass::Compute, false, w);
        c.invalidate_all();
        assert_eq!(c.composition().valid_lines(), 0);
        assert_eq!(c.stats().total().accesses, 1);
        assert_eq!(c.access(&r, AccessKind::Read, w), AccessOutcome::LineMiss);
    }
}
