//! DRAM partition model: fixed access latency, a bytes-per-cycle
//! bandwidth budget (the property the paper's TAP case study keys on —
//! "all of the workload pairs included are bandwidth-bounded, not
//! capacity-bounded"), and row-buffer locality: a request that hits the
//! open row streams at full bandwidth, while a row conflict pays the
//! precharge+activate penalty.

use std::collections::BTreeMap;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{StreamId, SECTOR_BYTES};

/// Bytes covered by one DRAM row (row-buffer granularity).
pub const ROW_BYTES: u64 = 2048;

/// Internal DRAM banks per partition, each with its own open row
/// (GDDR6 has 16 banks per channel; 8 keeps the model cheap while giving
/// scattered traffic realistic row locality).
pub const DRAM_BANKS: usize = 8;

/// One DRAM partition (one per L2 bank / memory controller).
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    cycles_per_sector: f64,
    row_miss_penalty: f64,
    next_free: f64,
    write_next_free: f64,
    open_rows: [Option<u64>; DRAM_BANKS],
    row_hits: u64,
    row_misses: u64,
    bytes_by_stream: BTreeMap<StreamId, u64>,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// A partition with `latency` cycles of access latency and
    /// `bytes_per_cycle` of sustained bandwidth. The row-buffer conflict
    /// penalty defaults to 24 cycles (tRP + tRCD class).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(latency: u64, bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Dram {
            latency,
            cycles_per_sector: SECTOR_BYTES as f64 / bytes_per_cycle,
            row_miss_penalty: 24.0,
            next_free: 0.0,
            write_next_free: 0.0,
            open_rows: [None; DRAM_BANKS],
            row_hits: 0,
            row_misses: 0,
            bytes_by_stream: BTreeMap::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Issue one 32 B sector transfer of `addr` at `now`; returns the
    /// cycle the data is available (read) or committed (write). Row-buffer
    /// state is updated: conflicts pay the precharge/activate penalty.
    ///
    /// The controller is read-priority with buffered writes: writeback
    /// bursts consume bandwidth on their own drain queue instead of
    /// serialising in front of demand reads (as FR-FCFS-class controllers
    /// do), so reads only contend with reads.
    pub fn request_at(&mut self, now: u64, addr: u64, stream: StreamId, is_write: bool) -> u64 {
        let row = addr / ROW_BYTES;
        let bank = (row % DRAM_BANKS as u64) as usize;
        let penalty = if self.open_rows[bank] == Some(row) {
            self.row_hits += 1;
            0.0
        } else {
            self.row_misses += 1;
            self.open_rows[bank] = Some(row);
            self.row_miss_penalty
        };
        *self.bytes_by_stream.entry(stream).or_insert(0) += SECTOR_BYTES;
        if is_write {
            self.writes += 1;
            let start = (now as f64).max(self.write_next_free) + penalty;
            self.write_next_free = start + self.cycles_per_sector;
            (start + self.cycles_per_sector).ceil() as u64 + self.latency
        } else {
            self.reads += 1;
            let start = (now as f64).max(self.next_free) + penalty;
            self.next_free = start + self.cycles_per_sector;
            (start + self.cycles_per_sector).ceil() as u64 + self.latency
        }
    }

    /// [`Dram::request_at`] without an address: always treated as a row
    /// hit (used where the caller has no meaningful address, e.g. tests
    /// and synthetic traffic).
    pub fn request(&mut self, now: u64, stream: StreamId, is_write: bool) -> u64 {
        self.row_hits += 1;
        let start = (now as f64).max(self.next_free);
        self.next_free = start + self.cycles_per_sector;
        *self.bytes_by_stream.entry(stream).or_insert(0) += SECTOR_BYTES;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        (start + self.cycles_per_sector).ceil() as u64 + self.latency
    }

    /// (row-buffer hits, misses) since construction.
    pub fn row_stats(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }

    /// Bytes transferred on behalf of `stream`.
    pub fn bytes_for(&self, stream: StreamId) -> u64 {
        self.bytes_by_stream.get(&stream).copied().unwrap_or(0)
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_stream.values().sum()
    }

    /// (reads, writes) sector counts.
    pub fn ops(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Earliest cycle a new request could start service.
    pub fn busy_until(&self) -> u64 {
        self.next_free.ceil() as u64
    }

    /// Functionally warm the row buffer for `addr`: open the containing row
    /// without consuming bandwidth or counting statistics. Used by
    /// fast-forward mode so the detailed region starts with realistic row
    /// locality.
    pub fn warm(&mut self, addr: u64) {
        let row = addr / ROW_BYTES;
        let bank = (row % DRAM_BANKS as u64) as usize;
        self.open_rows[bank] = Some(row);
    }
}

impl CheckpointState for Dram {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.latency)?;
        // The fractional bandwidth clocks must survive bit-exactly: a resumed
        // run replays the same `.ceil()` boundaries as the original.
        w.f64(self.cycles_per_sector)?;
        w.f64(self.row_miss_penalty)?;
        w.f64(self.next_free)?;
        w.f64(self.write_next_free)?;
        for row in &self.open_rows {
            w.option(row.as_ref(), |w, &r| w.u64(r))?;
        }
        w.u64(self.row_hits)?;
        w.u64(self.row_misses)?;
        w.len(self.bytes_by_stream.len())?;
        for (&s, &b) in &self.bytes_by_stream {
            w.stream(s)?;
            w.u64(b)?;
        }
        w.u64(self.reads)?;
        w.u64(self.writes)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let latency = r.u64()?;
        let cycles_per_sector = r.f64()?;
        if !(cycles_per_sector.is_finite() && cycles_per_sector > 0.0) {
            return Err(bad("bad dram cycles_per_sector"));
        }
        let row_miss_penalty = r.f64()?;
        let next_free = r.f64()?;
        let write_next_free = r.f64()?;
        let mut open_rows = [None; DRAM_BANKS];
        for row in &mut open_rows {
            *row = r.option(|r| r.u64())?;
        }
        let row_hits = r.u64()?;
        let row_misses = r.u64()?;
        let n = r.len(1 << 20)?;
        let mut bytes_by_stream = BTreeMap::new();
        for _ in 0..n {
            let s = r.stream()?;
            let b = r.u64()?;
            bytes_by_stream.insert(s, b);
        }
        Ok(Dram {
            latency,
            cycles_per_sector,
            row_miss_penalty,
            next_free,
            write_next_free,
            open_rows,
            row_hits,
            row_misses,
            bytes_by_stream,
            reads: r.u64()?,
            writes: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: StreamId = StreamId(0);

    #[test]
    fn idle_request_completes_after_latency_plus_transfer() {
        let mut d = Dram::new(200, 32.0); // one sector per cycle
        let done = d.request(100, S, false);
        assert_eq!(done, 100 + 1 + 200);
    }

    #[test]
    fn bandwidth_serialises_back_to_back_requests() {
        let mut d = Dram::new(0, 16.0); // 2 cycles per sector
        let a = d.request(0, S, false);
        let b = d.request(0, S, false);
        let c = d.request(0, S, false);
        assert_eq!(a, 2);
        assert_eq!(b, 4);
        assert_eq!(c, 6);
        assert_eq!(d.busy_until(), 6);
    }

    #[test]
    fn idle_gaps_are_not_accumulated() {
        let mut d = Dram::new(0, 32.0);
        let _ = d.request(0, S, false);
        let late = d.request(1000, S, false);
        assert_eq!(late, 1001, "service restarts at `now` after idling");
    }

    #[test]
    fn per_stream_bytes_accounted() {
        let mut d = Dram::new(10, 32.0);
        d.request(0, StreamId(0), false);
        d.request(0, StreamId(0), true);
        d.request(0, StreamId(1), false);
        assert_eq!(d.bytes_for(StreamId(0)), 64);
        assert_eq!(d.bytes_for(StreamId(1)), 32);
        assert_eq!(d.total_bytes(), 96);
        assert_eq!(d.ops(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = Dram::new(1, 0.0);
    }

    #[test]
    fn row_hits_stream_faster_than_conflicts() {
        let mut d = Dram::new(0, 32.0);
        // Sequential sectors within one 2 KB row: one activate, then hits.
        let mut last = 0;
        for i in 0..8u64 {
            last = d.request_at(0, i * 32, S, false);
        }
        let sequential = last;
        let (h, m) = d.row_stats();
        assert_eq!((h, m), (7, 1));

        // Alternating between two rows of the SAME internal bank (stride
        // DRAM_BANKS rows): every access conflicts.
        let mut d2 = Dram::new(0, 32.0);
        let stride = super::ROW_BYTES * super::DRAM_BANKS as u64;
        let mut last2 = 0;
        for i in 0..8u64 {
            last2 = d2.request_at(0, (i % 2) * stride + i * 32, S, false);
        }
        assert!(
            last2 > sequential * 2,
            "conflicts must cost: {last2} vs {sequential}"
        );
        assert_eq!(d2.row_stats().1, 8);
    }

    #[test]
    fn different_internal_banks_keep_their_rows_open() {
        // Interleaving two rows in different banks: after the two
        // activates, everything hits.
        let mut d = Dram::new(0, 32.0);
        for i in 0..8u64 {
            let row = i % 2; // rows 0 and 1 live in banks 0 and 1
            let _ = d.request_at(0, row * super::ROW_BYTES + i * 32, S, false);
        }
        assert_eq!(d.row_stats(), (6, 2));
    }
}
