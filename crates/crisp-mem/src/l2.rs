//! One L2 cache bank: a sectored tag array plus an MSHR table.
//!
//! The L2 uses write-validate (allocate-on-write) semantics so that the
//! graphics pipeline's inter-stage traffic — vertex attributes written by
//! the origin SM and read by the destination rasterizer — lands in the L2,
//! exactly the communication pattern the paper describes for stage
//! redistribution ("the origin SM writes the output attributes to the L2
//! cache").

use std::io;

use crisp_ckpt::{CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId};

use crate::cache::{AccessKind, AccessOutcome, CacheCore, CacheGeometry, Replacement, Writeback};
use crate::mshr::{Mshr, MshrOutcome};
use crate::req::{MemReq, ReqToken};

/// Result of presenting a read to an L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Outcome {
    /// Sector present; data after the bank's hit latency.
    Hit,
    /// Miss; a DRAM fetch must be issued by the caller.
    MissToDram,
    /// Miss merged onto an in-flight DRAM fetch.
    Merged,
    /// MSHRs exhausted; retry next cycle.
    Stall,
}

/// An L2 bank.
#[derive(Debug, Clone)]
pub struct L2Bank {
    cache: CacheCore,
    mshr: Mshr,
}

impl L2Bank {
    /// A bank with the given geometry, MSHR capacity and LRU replacement.
    pub fn new(geom: CacheGeometry, mshr_entries: usize, mshr_merges: usize) -> Self {
        L2Bank::with_replacement(geom, mshr_entries, mshr_merges, Replacement::Lru)
    }

    /// A bank with an explicit replacement policy.
    pub fn with_replacement(
        geom: CacheGeometry,
        mshr_entries: usize,
        mshr_merges: usize,
        replacement: Replacement,
    ) -> Self {
        L2Bank {
            cache: CacheCore::with_replacement(geom, replacement),
            mshr: Mshr::new(mshr_entries, mshr_merges),
        }
    }

    /// The underlying tag array (stats, composition).
    pub fn cache(&self) -> &CacheCore {
        &self.cache
    }

    /// Mutable access to the tag array (stat resets).
    pub fn cache_mut(&mut self) -> &mut CacheCore {
        &mut self.cache
    }

    /// Present a read. `window` is the set window assigned to the stream by
    /// the active [`crate::SetPartition`].
    pub fn read(&mut self, req: &MemReq, window: (u64, u64)) -> L2Outcome {
        if !self.mshr.can_accept(req.addr) {
            return L2Outcome::Stall;
        }
        if self.mshr.is_pending(req.addr) {
            // The sector is already on its way from DRAM; this access waits
            // with it. Counted as a miss for hit-rate purposes.
            self.cache.record_mshr_merge(req.stream, req.class);
            let _ = self.mshr.on_miss(req.addr, req.token);
            return L2Outcome::Merged;
        }
        match self.cache.access(req, AccessKind::Read, window) {
            AccessOutcome::Hit => L2Outcome::Hit,
            AccessOutcome::SectorMiss | AccessOutcome::LineMiss => {
                match self.mshr.on_miss(req.addr, req.token) {
                    MshrOutcome::Allocated => L2Outcome::MissToDram,
                    MshrOutcome::Merged => L2Outcome::Merged,
                    MshrOutcome::Full => unreachable!("can_accept checked above"),
                }
            }
        }
    }

    /// Present a write (write-validate). Returns the victim writeback if the
    /// allocation evicted a dirty line.
    pub fn write(&mut self, req: &MemReq, window: (u64, u64)) -> Option<Writeback> {
        let (_hit, wb) = self.cache.write_validate(req, window);
        wb
    }

    /// A DRAM fill for `sector_addr` arrived. Installs the sector and
    /// returns `(waiting tokens, victim writeback)`.
    pub fn fill(
        &mut self,
        sector_addr: u64,
        stream: StreamId,
        class: DataClass,
        window: (u64, u64),
    ) -> (Vec<ReqToken>, Option<Writeback>) {
        let line = sector_addr & !(crisp_trace::LINE_BYTES - 1);
        let sector = (sector_addr % crisp_trace::LINE_BYTES) / crisp_trace::SECTOR_BYTES;
        let wb = self.cache.fill(line, sector, stream, class, false, window);
        let waiters = self.mshr.on_fill(sector_addr);
        (waiters, wb)
    }

    /// In-flight DRAM fetches.
    pub fn in_flight(&self) -> usize {
        self.mshr.in_flight()
    }

    /// Functionally warm one read: probe the tag array and install the
    /// sector immediately on a miss, with no MSHR, crossbar or DRAM timing.
    /// Returns whether the access missed (so the caller can warm the DRAM
    /// row buffers too). Used by fast-forward mode.
    pub fn warm_read(&mut self, req: &MemReq, window: (u64, u64)) -> bool {
        match self.cache.access(req, AccessKind::Read, window) {
            AccessOutcome::Hit => false,
            AccessOutcome::SectorMiss | AccessOutcome::LineMiss => {
                let _ = self.cache.fill(
                    req.line_addr(),
                    req.sector_in_line(),
                    req.stream,
                    req.class,
                    false,
                    window,
                );
                true
            }
        }
    }
}

impl CheckpointState for L2Bank {
    type SaveCtx<'a> = ();
    /// `(geometry, mshr entries, mshr merges, replacement)` from the
    /// configuration.
    type RestoreCtx<'a> = (CacheGeometry, usize, usize, Replacement);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        self.cache.save(w, ())?;
        self.mshr.save(w, ())
    }

    fn restore<R: io::Read>(
        r: &mut Reader<R>,
        (geom, entries, merges, replacement): (CacheGeometry, usize, usize, Replacement),
    ) -> io::Result<Self> {
        Ok(L2Bank {
            cache: CacheCore::restore(r, (geom, replacement))?,
            mshr: Mshr::restore(r, (entries, merges))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: StreamId = StreamId(0);

    fn bank() -> L2Bank {
        L2Bank::new(
            CacheGeometry {
                size_bytes: 4096,
                assoc: 4,
            },
            8,
            4,
        )
    }

    fn rd(addr: u64, id: u64) -> MemReq {
        MemReq::read(addr, S, DataClass::Compute, ReqToken { sm: 0, id })
    }

    fn win(b: &L2Bank) -> (u64, u64) {
        (0, b.cache().num_sets())
    }

    #[test]
    fn read_miss_merge_fill_hit_cycle() {
        let mut b = bank();
        let w = win(&b);
        assert_eq!(b.read(&rd(0x100, 1), w), L2Outcome::MissToDram);
        assert_eq!(b.read(&rd(0x100, 2), w), L2Outcome::Merged);
        assert_eq!(b.in_flight(), 1);
        let (waiters, wb) = b.fill(0x100, S, DataClass::Compute, w);
        assert_eq!(waiters.len(), 2);
        assert!(wb.is_none());
        assert_eq!(b.read(&rd(0x100, 3), w), L2Outcome::Hit);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut b = L2Bank::new(
            CacheGeometry {
                size_bytes: 4096,
                assoc: 4,
            },
            1,
            1,
        );
        let w = win(&b);
        assert_eq!(b.read(&rd(0x000, 1), w), L2Outcome::MissToDram);
        assert_eq!(b.read(&rd(0x200, 2), w), L2Outcome::Stall);
        // Merge capacity 1 is also exhausted for the pending sector.
        assert_eq!(b.read(&rd(0x000, 3), w), L2Outcome::Stall);
    }

    #[test]
    fn writes_allocate_and_later_reads_hit() {
        let mut b = bank();
        let w = win(&b);
        let wr = MemReq::write(0x80, S, DataClass::Pipeline, ReqToken { sm: 0, id: 0 });
        assert!(b.write(&wr, w).is_none());
        assert_eq!(
            b.read(&rd(0x80, 1), w),
            L2Outcome::Hit,
            "write-validate makes data visible"
        );
    }

    #[test]
    fn stats_classify_merges_as_misses() {
        let mut b = bank();
        let w = win(&b);
        let _ = b.read(&rd(0x100, 1), w);
        let _ = b.read(&rd(0x100, 2), w);
        let s = b.cache().stats().get(S, DataClass::Compute);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 0);
    }
}
