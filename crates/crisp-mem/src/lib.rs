//! Memory-system substrate for the CRISP GPU simulator.
//!
//! Models the cached memory hierarchy of a contemporary NVIDIA GPU at the
//! fidelity Accel-Sim uses: per-SM **unified L1 data caches** (texture
//! requests share the L1 — CRISP removes the dedicated texture cache, paper
//! Section III), a crossbar interconnect, a **banked L2** with address
//! interleaving, and bandwidth-limited DRAM partitions.
//!
//! On top of the baseline hierarchy this crate implements the partitioning
//! machinery the paper's concurrency case studies need:
//!
//! * **MiG bank masking** — each stream sees only a subset of L2 banks /
//!   memory partitions ([`BankMap`]).
//! * **TAP set partitioning** — all banks shared, but the sets inside each
//!   bank are divided between streams by a TLP-aware utility controller
//!   ([`TapController`], after Lee & Kim, HPCA 2012).
//!
//! Every structure keeps statistics **per stream and per data class**
//! (texture / pipeline / compute), which is what the L2-composition case
//! studies (paper Figures 11 and 15) report.
//!
//! The crate is deliberately free of SM knowledge: requests arrive as
//! [`MemReq`]s tagged with an opaque [`ReqToken`]; completions come back from
//! [`MemSystem::tick`]. `crisp-sm` turns warp instructions into requests and
//! `crisp-sim` drives the clock.
//!
//! The hierarchy is split along the threading boundary of `crisp-sim`'s
//! parallel executor: each SM owns an [`SmMemPort`] (private L1 + MSHRs +
//! an egress queue) it can use from any worker thread, while the shared
//! [`MemSystem`] (crossbar, banked L2, DRAM) drains every port's egress in
//! ascending SM-id order each tick — making simulation results bit-identical
//! at any worker-thread count.

mod cache;
mod dram;
mod l2;
mod mshr;
mod partition;
mod port;
mod req;
mod stats;
mod system;
mod xbar;

pub use cache::{AccessKind, AccessOutcome, CacheCore, CacheGeometry, Replacement};
pub use dram::{Dram, DRAM_BANKS, ROW_BYTES};
pub use l2::{L2Bank, L2Outcome};
pub use mshr::{Mshr, MshrOutcome};
pub use partition::{BankMap, SetPartition, TapConfig, TapController};
pub use port::SmMemPort;
pub use req::{Completion, MemReq, ReqToken, SECTORS_PER_LINE};
pub use stats::{ClassStreamCounters, CompositionSnapshot, MemStats};
pub use system::{L1AccessResult, MemConfig, MemSystem, TickTimes};

pub use crisp_trace::{DataClass, StreamId, LINE_BYTES, SECTOR_BYTES};
