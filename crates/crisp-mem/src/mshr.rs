//! Miss-status holding registers.
//!
//! One entry per in-flight *sector*; later misses to the same sector merge
//! onto the existing entry instead of generating new traffic. Entry and
//! merge capacities are finite — when either is exhausted the LSU must stall
//! and retry, which is how L1 bandwidth pressure back-propagates into issue
//! stalls (the effect the LoD case study quantifies).

use std::collections::HashMap;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};

use crate::req::ReqToken;

/// Result of asking the MSHR to track a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must send a fetch to the next level.
    Allocated,
    /// Merged onto an existing in-flight fetch; no new traffic.
    Merged,
    /// Table or merge list full; caller must stall and retry.
    Full,
}

#[derive(Debug, Clone, Default)]
struct Entry {
    waiters: Vec<ReqToken>,
}

/// The MSHR table, keyed by sector address.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: HashMap<u64, Entry>,
    max_entries: usize,
    max_merges: usize,
}

impl Mshr {
    /// A table with `max_entries` distinct in-flight sectors and up to
    /// `max_merges` waiters per sector.
    pub fn new(max_entries: usize, max_merges: usize) -> Self {
        assert!(max_entries > 0 && max_merges > 0);
        Mshr {
            entries: HashMap::new(),
            max_entries,
            max_merges,
        }
    }

    /// Track a miss on `sector_addr` for `token`.
    pub fn on_miss(&mut self, sector_addr: u64, token: ReqToken) -> MshrOutcome {
        if let Some(e) = self.entries.get_mut(&sector_addr) {
            if e.waiters.len() >= self.max_merges {
                return MshrOutcome::Full;
            }
            e.waiters.push(token);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.max_entries {
            return MshrOutcome::Full;
        }
        self.entries.insert(
            sector_addr,
            Entry {
                waiters: vec![token],
            },
        );
        MshrOutcome::Allocated
    }

    /// A fill for `sector_addr` arrived; returns every waiting token.
    pub fn on_fill(&mut self, sector_addr: u64) -> Vec<ReqToken> {
        self.entries
            .remove(&sector_addr)
            .map(|e| e.waiters)
            .unwrap_or_default()
    }

    /// Whether a fetch for `sector_addr` is already in flight.
    pub fn is_pending(&self, sector_addr: u64) -> bool {
        self.entries.contains_key(&sector_addr)
    }

    /// Whether a miss on `sector_addr` could be tracked right now (either a
    /// new entry fits or the pending entry still has merge capacity). Lets
    /// callers test for a stall *before* touching cache statistics.
    pub fn can_accept(&self, sector_addr: u64) -> bool {
        match self.entries.get(&sector_addr) {
            Some(e) => e.waiters.len() < self.max_merges,
            None => self.entries.len() < self.max_entries,
        }
    }

    /// Number of in-flight sectors.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }
}

impl CheckpointState for Mshr {
    type SaveCtx<'a> = ();
    /// `(max_entries, max_merges)` from the configuration.
    type RestoreCtx<'a> = (usize, usize);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        // The entry map is keyed-access only, but serialize sorted by sector
        // anyway so the byte stream is deterministic.
        let mut sectors: Vec<u64> = self.entries.keys().copied().collect();
        sectors.sort_unstable();
        w.len(sectors.len())?;
        for s in sectors {
            w.u64(s)?;
            let waiters = &self.entries[&s].waiters;
            w.len(waiters.len())?;
            for t in waiters {
                t.save(w, ())?;
            }
        }
        Ok(())
    }

    fn restore<R: io::Read>(
        r: &mut Reader<R>,
        (max_entries, max_merges): (usize, usize),
    ) -> io::Result<Self> {
        if max_entries == 0 || max_merges == 0 {
            return Err(bad("mshr capacities must be positive"));
        }
        let n = r.len(max_entries)?;
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let sector = r.u64()?;
            let n_waiters = r.len(max_merges)?;
            let mut waiters = Vec::with_capacity(n_waiters);
            for _ in 0..n_waiters {
                waiters.push(ReqToken::restore(r, ())?);
            }
            if entries.insert(sector, Entry { waiters }).is_some() {
                return Err(bad("duplicate mshr sector"));
            }
        }
        Ok(Mshr {
            entries,
            max_entries,
            max_merges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(id: u64) -> ReqToken {
        ReqToken { sm: 0, id }
    }

    #[test]
    fn allocate_then_merge_then_fill() {
        let mut m = Mshr::new(4, 4);
        assert_eq!(m.on_miss(0x100, tok(1)), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(0x100, tok(2)), MshrOutcome::Merged);
        assert!(m.is_pending(0x100));
        assert_eq!(m.in_flight(), 1);
        let waiters = m.on_fill(0x100);
        assert_eq!(waiters, vec![tok(1), tok(2)]);
        assert!(!m.is_pending(0x100));
    }

    #[test]
    fn entry_capacity_limits_distinct_sectors() {
        let mut m = Mshr::new(2, 8);
        assert_eq!(m.on_miss(0x000, tok(1)), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(0x020, tok(2)), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(0x040, tok(3)), MshrOutcome::Full);
        // Merging onto existing entries still works when the table is full.
        assert_eq!(m.on_miss(0x000, tok(4)), MshrOutcome::Merged);
    }

    #[test]
    fn merge_capacity_limits_waiters() {
        let mut m = Mshr::new(4, 2);
        assert_eq!(m.on_miss(0x0, tok(1)), MshrOutcome::Allocated);
        assert_eq!(m.on_miss(0x0, tok(2)), MshrOutcome::Merged);
        assert_eq!(m.on_miss(0x0, tok(3)), MshrOutcome::Full);
    }

    #[test]
    fn fill_of_untracked_sector_returns_empty() {
        let mut m = Mshr::new(2, 2);
        assert!(m.on_fill(0xdead).is_empty());
    }
}
