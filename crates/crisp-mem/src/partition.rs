//! L2 partitioning: MiG bank masks and TAP set partitioning.
//!
//! The paper's Figure 14 compares three ways of sharing the L2 between a
//! rendering stream and a compute stream:
//!
//! * **MPS** — everything shared (no L2 partition at all).
//! * **MiG** — *bank-level* partitioning: "each L2 bank is assigned to only
//!   one workload", which also slices total L2 bandwidth ([`BankMap`]).
//! * **TAP** — "L2 banks are all shared among both workloads, and each bank
//!   is partitioned by assigning sets to each workload. The ratio is
//!   determined by the TAP mechanism" ([`TapController`]).
//!
//! TAP (Lee & Kim, HPCA 2012) is utility-based cache partitioning made
//! TLP-aware: raw utility counters favour whichever client issues more
//! accesses, so marginal utility is normalised by access rate before the
//! allocation is chosen. Our controller uses classic set-sampled UMONs
//! (LRU stack-distance histograms) and a greedy water-filling allocation.

use std::collections::HashMap;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{StreamId, LINE_BYTES};

/// Maps addresses to L2 banks, optionally restricting each stream to a bank
/// subset (MiG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankMap {
    n_banks: u32,
    /// `None` = all banks shared (MPS/TAP); `Some` = per-stream allowed banks.
    masks: Option<HashMap<StreamId, Vec<u32>>>,
}

/// Address-interleave granularity across L2 banks (bytes).
pub const BANK_INTERLEAVE_BYTES: u64 = 256;

impl BankMap {
    /// All banks shared by every stream.
    pub fn shared(n_banks: u32) -> Self {
        assert!(n_banks > 0);
        BankMap {
            n_banks,
            masks: None,
        }
    }

    /// MiG-style: each stream only uses its listed banks.
    ///
    /// # Panics
    ///
    /// Panics if a mask is empty or references a bank out of range.
    pub fn mig(n_banks: u32, masks: HashMap<StreamId, Vec<u32>>) -> Self {
        assert!(n_banks > 0);
        for (s, m) in &masks {
            assert!(!m.is_empty(), "stream {s} has an empty bank mask");
            assert!(
                m.iter().all(|&b| b < n_banks),
                "bank index out of range for {s}"
            );
        }
        BankMap {
            n_banks,
            masks: Some(masks),
        }
    }

    /// Convenience MiG split of banks into two contiguous halves.
    pub fn mig_even_split(n_banks: u32, a: StreamId, b: StreamId) -> Self {
        assert!(n_banks >= 2, "need at least two banks to split");
        let half = n_banks / 2;
        let mut m = HashMap::new();
        m.insert(a, (0..half).collect());
        m.insert(b, (half..n_banks).collect());
        BankMap::mig(n_banks, m)
    }

    /// Total number of banks.
    pub fn n_banks(&self) -> u32 {
        self.n_banks
    }

    /// Banks `stream` may use.
    pub fn banks_for(&self, stream: StreamId) -> Vec<u32> {
        match &self.masks {
            None => (0..self.n_banks).collect(),
            Some(m) => m
                .get(&stream)
                .cloned()
                .unwrap_or_else(|| (0..self.n_banks).collect()),
        }
    }

    /// The bank servicing `addr` for `stream` (256 B interleave over the
    /// stream's allowed banks).
    pub fn bank_of(&self, stream: StreamId, addr: u64) -> u32 {
        let chunk = addr / BANK_INTERLEAVE_BYTES;
        match &self.masks {
            None => (chunk % self.n_banks as u64) as u32,
            Some(m) => match m.get(&stream) {
                Some(allowed) => allowed[(chunk % allowed.len() as u64) as usize],
                None => (chunk % self.n_banks as u64) as u32,
            },
        }
    }

    /// Compact `addr` into the servicing bank's local address space:
    /// consecutive interleave chunks assigned to one bank become
    /// consecutive locally. DRAM row-buffer locality must be computed on
    /// this address — on the global address, interleaving makes every
    /// in-bank neighbour a different row.
    pub fn local_addr(&self, stream: StreamId, addr: u64) -> u64 {
        let chunk = addr / BANK_INTERLEAVE_BYTES;
        let offset = addr % BANK_INTERLEAVE_BYTES;
        let banks = match &self.masks {
            None => self.n_banks as u64,
            Some(m) => m
                .get(&stream)
                .map_or(self.n_banks as u64, |a| a.len() as u64),
        };
        (chunk / banks) * BANK_INTERLEAVE_BYTES + offset
    }
}

impl CheckpointState for BankMap {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.n_banks)?;
        w.option(self.masks.as_ref(), |w, m| {
            let mut streams: Vec<StreamId> = m.keys().copied().collect();
            streams.sort_unstable();
            w.len(streams.len())?;
            for s in streams {
                w.stream(s)?;
                let banks = &m[&s];
                w.len(banks.len())?;
                for &b in banks {
                    w.u32(b)?;
                }
            }
            Ok(())
        })
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let n_banks = r.u32()?;
        if n_banks == 0 {
            return Err(bad("bank map needs at least one bank"));
        }
        let masks = r.option(|r| {
            let n = r.len(1 << 16)?;
            let mut m = HashMap::with_capacity(n);
            for _ in 0..n {
                let s = r.stream()?;
                let len = r.len(n_banks as usize)?;
                if len == 0 {
                    return Err(bad("empty bank mask"));
                }
                let mut banks = Vec::with_capacity(len);
                for _ in 0..len {
                    let b = r.u32()?;
                    if b >= n_banks {
                        return Err(bad("bank index out of range"));
                    }
                    banks.push(b);
                }
                m.insert(s, banks);
            }
            Ok(m)
        })?;
        Ok(BankMap { n_banks, masks })
    }
}

/// TAP controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapConfig {
    /// Re-evaluate the allocation after this many observed accesses.
    pub epoch_accesses: u64,
    /// Sample one in `sample_every` sets for the UMON shadow directory.
    pub sample_every: u64,
    /// Minimum sets any stream keeps (the paper observes TAP "assign only
    /// 1 set to HOLO kernels" — the floor is 1 unit).
    pub min_sets: u64,
}

impl Default for TapConfig {
    fn default() -> Self {
        TapConfig {
            epoch_accesses: 100_000,
            sample_every: 16,
            min_sets: 1,
        }
    }
}

/// Per-stream UMON: an LRU stack over sampled sets yielding a stack-distance
/// (hits-per-way) histogram, plus a raw access count for TLP normalisation.
#[derive(Debug, Clone)]
struct Umon {
    stack: Vec<u64>,
    way_hits: Vec<u64>,
    accesses: u64,
    sampled: u64,
}

impl Umon {
    fn new(depth: usize) -> Self {
        Umon {
            stack: Vec::with_capacity(depth),
            way_hits: vec![0; depth],
            accesses: 0,
            sampled: 0,
        }
    }

    fn observe(&mut self, line_addr: u64, sample: bool) {
        self.accesses += 1;
        if !sample {
            return;
        }
        self.sampled += 1;
        if let Some(pos) = self.stack.iter().position(|&a| a == line_addr) {
            self.way_hits[pos] += 1;
            let v = self.stack.remove(pos);
            self.stack.insert(0, v);
        } else {
            if self.stack.len() == self.stack.capacity() {
                self.stack.pop();
            }
            self.stack.insert(0, line_addr);
        }
    }

    /// Utility of growing from `w` ways: hits at stack distances `>= w`,
    /// normalised by access rate (TAP's TLP-aware normalisation). Using the
    /// look-ahead sum instead of a single way's counter is UCP's standard
    /// fix for plateaued utility curves.
    fn marginal_utility(&self, w: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let remaining: u64 = self.way_hits[w.min(self.way_hits.len() - 1)..].iter().sum();
        remaining as f64 / self.accesses as f64
    }

    fn decay(&mut self) {
        for h in &mut self.way_hits {
            *h /= 2;
        }
        self.accesses /= 2;
        self.sampled /= 2;
    }
}

impl CheckpointState for Umon {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        // The stack capacity doubles as the UMON depth (observe evicts when
        // len == capacity), so record it explicitly.
        w.len(self.way_hits.len())?;
        w.len(self.stack.len())?;
        for &a in &self.stack {
            w.u64(a)?;
        }
        for &h in &self.way_hits {
            w.u64(h)?;
        }
        w.u64(self.accesses)?;
        w.u64(self.sampled)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let depth = r.len(1 << 16)?;
        if depth == 0 {
            return Err(bad("umon depth must be positive"));
        }
        let n_stack = r.len(depth)?;
        // Rebuild exactly as `Umon::new` does so the eviction-triggering
        // capacity matches the original.
        let mut stack = Vec::with_capacity(depth);
        for _ in 0..n_stack {
            stack.push(r.u64()?);
        }
        let mut way_hits = Vec::with_capacity(depth);
        for _ in 0..depth {
            way_hits.push(r.u64()?);
        }
        Ok(Umon {
            stack,
            way_hits,
            accesses: r.u64()?,
            sampled: r.u64()?,
        })
    }
}

/// The TAP set-partition controller for one L2 (all banks share the ratio).
#[derive(Debug, Clone)]
pub struct TapController {
    cfg: TapConfig,
    sets_per_bank: u64,
    assoc: usize,
    streams: Vec<StreamId>,
    umons: HashMap<StreamId, Umon>,
    windows: HashMap<StreamId, (u64, u64)>,
    since_epoch: u64,
    repartitions: u64,
}

impl TapController {
    /// A controller partitioning `sets_per_bank` sets among `streams`,
    /// starting from an even split.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two streams are given or the sets cannot cover
    /// the minimum allocation.
    pub fn new(streams: Vec<StreamId>, sets_per_bank: u64, assoc: u32, cfg: TapConfig) -> Self {
        assert!(
            streams.len() >= 2,
            "TAP partitions between at least two streams"
        );
        assert!(
            sets_per_bank >= cfg.min_sets * streams.len() as u64,
            "not enough sets for the minimum allocation"
        );
        let umons = streams
            .iter()
            .map(|&s| (s, Umon::new(assoc as usize)))
            .collect();
        let mut tap = TapController {
            cfg,
            sets_per_bank,
            assoc: assoc as usize,
            streams,
            umons,
            windows: HashMap::new(),
            since_epoch: 0,
            repartitions: 0,
        };
        tap.apply_allocation(&tap.even_allocation());
        tap
    }

    fn even_allocation(&self) -> Vec<u64> {
        let n = self.streams.len() as u64;
        let base = self.sets_per_bank / n;
        let mut v = vec![base; self.streams.len()];
        v[0] += self.sets_per_bank - base * n;
        v
    }

    fn apply_allocation(&mut self, sets: &[u64]) {
        debug_assert_eq!(sets.iter().sum::<u64>(), self.sets_per_bank);
        let mut start = 0;
        self.windows.clear();
        for (s, &n) in self.streams.iter().zip(sets) {
            self.windows.insert(*s, (start, n));
            start += n;
        }
    }

    /// Record one L2 access (pre-indexing) so the UMONs learn utility.
    pub fn observe(&mut self, stream: StreamId, line_addr: u64) {
        let sample = (line_addr / LINE_BYTES).is_multiple_of(self.cfg.sample_every);
        if let Some(u) = self.umons.get_mut(&stream) {
            u.observe(line_addr, sample);
        }
        self.since_epoch += 1;
        if self.since_epoch >= self.cfg.epoch_accesses {
            self.repartition();
            self.since_epoch = 0;
        }
    }

    /// Greedy water-filling over TLP-normalised marginal utilities, then
    /// scale way units to set counts.
    fn repartition(&mut self) {
        let n = self.streams.len();
        // TAP's core-sampling insight: a client whose performance does not
        // depend on the cache should not receive capacity, however good
        // its per-access hit curve looks. We proxy cache-sensitivity by
        // memory intensity: a stream issuing a small fraction of the
        // traffic (e.g. the compute-bound HOLO) has its utility scaled
        // down, so the memory-hungry rendering stream wins the capacity
        // (paper Figure 15: "TAP allocates most cache lines to rendering
        // because HOLO is compute-bounded").
        let max_acc = self
            .umons
            .values()
            .map(|u| u.accesses)
            .max()
            .unwrap_or(0)
            .max(1);
        let weight = |s: &StreamId| self.umons[s].accesses as f64 / max_acc as f64;
        let mut units = vec![1usize; n]; // everyone keeps >= 1 unit
        let total_units = self.assoc.max(n);
        for _ in n..total_units {
            let best = (0..n)
                .max_by(|&a, &b| {
                    let sa = self.streams[a];
                    let sb = self.streams[b];
                    let ua = self.umons[&sa].marginal_utility(units[a].min(self.assoc - 1))
                        * weight(&sa);
                    let ub = self.umons[&sb].marginal_utility(units[b].min(self.assoc - 1))
                        * weight(&sb);
                    // Residual ties go to the stream with the higher access
                    // rate — idle capacity helps the client that actually
                    // touches the cache.
                    ua.partial_cmp(&ub)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(self.umons[&sa].accesses.cmp(&self.umons[&sb].accesses))
                })
                .expect("at least one stream");
            units[best] += 1;
        }
        // Convert unit shares to set counts with a per-stream floor.
        let min = self.cfg.min_sets;
        let avail = self.sets_per_bank - min * n as u64;
        let unit_sum: usize = units.iter().sum();
        let mut sets: Vec<u64> = units
            .iter()
            .map(|&u| min + (avail as f64 * u as f64 / unit_sum as f64).floor() as u64)
            .collect();
        let mut leftover = self.sets_per_bank - sets.iter().sum::<u64>();
        let mut i = 0;
        while leftover > 0 {
            sets[i % n] += 1;
            leftover -= 1;
            i += 1;
        }
        self.apply_allocation(&sets);
        for u in self.umons.values_mut() {
            u.decay();
        }
        self.repartitions += 1;
    }

    /// The current set window (start, count) for `stream`.
    pub fn window(&self, stream: StreamId) -> (u64, u64) {
        self.windows
            .get(&stream)
            .copied()
            .unwrap_or((0, self.sets_per_bank))
    }

    /// Current allocation as (stream, sets) pairs in stream order.
    pub fn allocation(&self) -> Vec<(StreamId, u64)> {
        self.streams
            .iter()
            .map(|&s| (s, self.windows[&s].1))
            .collect()
    }

    /// Number of completed repartition epochs.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }
}

impl CheckpointState for TapController {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.cfg.epoch_accesses)?;
        w.u64(self.cfg.sample_every)?;
        w.u64(self.cfg.min_sets)?;
        w.u64(self.sets_per_bank)?;
        w.len(self.assoc)?;
        w.len(self.streams.len())?;
        // Umons and windows are keyed by stream; walking `streams` (the
        // canonical order) covers every entry deterministically.
        for &s in &self.streams {
            w.stream(s)?;
            self.umons[&s].save(w, ())?;
            let (start, count) = self.windows[&s];
            w.u64(start)?;
            w.u64(count)?;
        }
        w.u64(self.since_epoch)?;
        w.u64(self.repartitions)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let cfg = TapConfig {
            epoch_accesses: r.u64()?,
            sample_every: r.u64()?,
            min_sets: r.u64()?,
        };
        let sets_per_bank = r.u64()?;
        let assoc = r.len(1 << 16)?;
        let n = r.len(1 << 16)?;
        if n < 2 {
            return Err(bad("TAP controller needs at least two streams"));
        }
        let mut streams = Vec::with_capacity(n);
        let mut umons = HashMap::with_capacity(n);
        let mut windows = HashMap::with_capacity(n);
        for _ in 0..n {
            let s = r.stream()?;
            if umons.contains_key(&s) {
                return Err(bad("duplicate TAP stream"));
            }
            let u = Umon::restore(r, ())?;
            let start = r.u64()?;
            let count = r.u64()?;
            if start
                .checked_add(count)
                .is_none_or(|end| end > sets_per_bank)
            {
                return Err(bad("TAP window out of range"));
            }
            streams.push(s);
            umons.insert(s, u);
            windows.insert(s, (start, count));
        }
        Ok(TapController {
            cfg,
            sets_per_bank,
            assoc,
            streams,
            umons,
            windows,
            since_epoch: r.u64()?,
            repartitions: r.u64()?,
        })
    }
}

/// How L2 sets are divided among streams.
#[derive(Debug, Clone)]
pub enum SetPartition {
    /// All sets shared (MPS and MiG — MiG isolates at bank granularity).
    Shared,
    /// Fixed per-stream windows.
    Static(HashMap<StreamId, (u64, u64)>),
    /// TAP-controlled dynamic windows.
    Tap(TapController),
}

impl SetPartition {
    /// The set window for `stream` in a bank with `sets` sets.
    pub fn window(&self, stream: StreamId, sets: u64) -> (u64, u64) {
        match self {
            SetPartition::Shared => (0, sets),
            SetPartition::Static(m) => m.get(&stream).copied().unwrap_or((0, sets)),
            SetPartition::Tap(t) => t.window(stream),
        }
    }

    /// Feed an access into the controller (no-op unless TAP).
    pub fn observe(&mut self, stream: StreamId, line_addr: u64) {
        if let SetPartition::Tap(t) = self {
            t.observe(stream, line_addr);
        }
    }
}

impl CheckpointState for SetPartition {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        match self {
            SetPartition::Shared => w.u8(0),
            SetPartition::Static(m) => {
                w.u8(1)?;
                let mut streams: Vec<StreamId> = m.keys().copied().collect();
                streams.sort_unstable();
                w.len(streams.len())?;
                for s in streams {
                    w.stream(s)?;
                    let (start, count) = m[&s];
                    w.u64(start)?;
                    w.u64(count)?;
                }
                Ok(())
            }
            SetPartition::Tap(t) => {
                w.u8(2)?;
                t.save(w, ())
            }
        }
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(match r.u8()? {
            0 => SetPartition::Shared,
            1 => {
                let n = r.len(1 << 16)?;
                let mut m = HashMap::with_capacity(n);
                for _ in 0..n {
                    let s = r.stream()?;
                    let start = r.u64()?;
                    let count = r.u64()?;
                    m.insert(s, (start, count));
                }
                SetPartition::Static(m)
            }
            2 => SetPartition::Tap(TapController::restore(r, ())?),
            t => return Err(bad(format!("bad set-partition tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: StreamId = StreamId(0);
    const B: StreamId = StreamId(1);

    #[test]
    fn shared_bank_map_interleaves() {
        let m = BankMap::shared(4);
        assert_eq!(m.bank_of(A, 0), 0);
        assert_eq!(m.bank_of(A, 256), 1);
        assert_eq!(m.bank_of(A, 1024), 0);
        assert_eq!(m.banks_for(A), vec![0, 1, 2, 3]);
    }

    #[test]
    fn mig_masks_restrict_banks() {
        let m = BankMap::mig_even_split(8, A, B);
        for addr in (0..64).map(|i| i * 256) {
            assert!(m.bank_of(A, addr) < 4, "stream A must stay in banks 0..4");
            assert!(m.bank_of(B, addr) >= 4, "stream B must stay in banks 4..8");
        }
        assert_eq!(m.banks_for(A).len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty bank mask")]
    fn mig_rejects_empty_mask() {
        let mut masks = HashMap::new();
        masks.insert(A, vec![]);
        let _ = BankMap::mig(4, masks);
    }

    #[test]
    fn local_addresses_are_dense_per_bank() {
        let m = BankMap::shared(4);
        // Chunks 0, 4, 8 ... all land on bank 0; locally they must be
        // consecutive 256 B chunks.
        for i in 0..8u64 {
            let global = i * 4 * BANK_INTERLEAVE_BYTES + 17;
            assert_eq!(m.bank_of(A, global), 0);
            assert_eq!(m.local_addr(A, global), i * BANK_INTERLEAVE_BYTES + 17);
        }
    }

    #[test]
    fn unknown_stream_falls_back_to_all_banks() {
        let m = BankMap::mig_even_split(4, A, B);
        let c = StreamId(7);
        assert_eq!(m.banks_for(c), vec![0, 1, 2, 3]);
    }

    #[test]
    fn tap_starts_even() {
        let t = TapController::new(vec![A, B], 64, 16, TapConfig::default());
        assert_eq!(t.window(A), (0, 32));
        assert_eq!(t.window(B), (32, 32));
    }

    #[test]
    fn tap_windows_tile_the_bank() {
        let t = TapController::new(vec![A, B], 63, 16, TapConfig::default());
        let (a0, an) = t.window(A);
        let (b0, bn) = t.window(B);
        assert_eq!(a0, 0);
        assert_eq!(b0, an);
        assert_eq!(an + bn, 63);
    }

    #[test]
    fn tap_starves_the_low_utility_stream() {
        // Stream A: heavy reuse over a working set that fits (high utility).
        // Stream B: barely any accesses (a compute-bound stream like HOLO).
        let cfg = TapConfig {
            epoch_accesses: 4_000,
            sample_every: 1,
            min_sets: 1,
        };
        let mut t = TapController::new(vec![A, B], 64, 16, cfg);
        for round in 0..4u64 {
            for i in 0..2_000u64 {
                t.observe(A, (i % 8) * LINE_BYTES); // tight reuse: high stack hits
            }
            for i in 0..16u64 {
                // Never-reused streaming addresses: zero cache utility.
                t.observe(B, (round * 16 + i) * LINE_BYTES * 1024);
            }
        }
        assert!(t.repartitions() >= 1, "controller must have re-evaluated");
        let (_, a_sets) = t.window(A);
        let (_, b_sets) = t.window(B);
        assert!(
            a_sets > b_sets,
            "high-utility stream must win sets: {a_sets} vs {b_sets}"
        );
        assert!(b_sets >= 1, "floor of one set");
        assert_eq!(a_sets + b_sets, 64);
    }

    #[test]
    #[should_panic(expected = "at least two streams")]
    fn tap_requires_two_streams() {
        let _ = TapController::new(vec![A], 64, 16, TapConfig::default());
    }

    #[test]
    fn set_partition_variants() {
        let sets = 128;
        assert_eq!(SetPartition::Shared.window(A, sets), (0, 128));
        let mut m = HashMap::new();
        m.insert(A, (0, 96));
        m.insert(B, (96, 32));
        let p = SetPartition::Static(m);
        assert_eq!(p.window(A, sets), (0, 96));
        assert_eq!(p.window(B, sets), (96, 32));
        assert_eq!(
            p.window(StreamId(9), sets),
            (0, 128),
            "unknown stream gets everything"
        );
    }
}
