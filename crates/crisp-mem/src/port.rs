//! The per-SM memory port: a private L1 + MSHR front-end with a buffered
//! egress queue toward the shared hierarchy.
//!
//! Each SM owns one [`SmMemPort`]. The load-store unit presents sector
//! accesses to the port, which resolves them against the SM-private L1 and
//! MSHRs **without touching any shared state** — misses and write-throughs
//! are parked in a local egress queue instead of entering the crossbar
//! directly. This is what lets whole SMs tick on worker threads: the only
//! cross-SM structures (crossbar, L2 banks, DRAM) are reached later, when
//! [`MemSystem::tick`](crate::MemSystem::tick) drains every port's egress
//! queue **in ascending SM-id order**. That drain order reproduces exactly
//! the request interleaving of a single-threaded simulation, so results are
//! bit-identical at any worker count.

use std::collections::VecDeque;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId};

use crate::cache::{AccessKind, AccessOutcome, CacheCore};
use crate::mshr::{Mshr, MshrOutcome};
use crate::req::{MemReq, ReqToken};
use crate::stats::MemStats;
use crate::system::{L1AccessResult, MemConfig};

/// One SM's private slice of the memory hierarchy: unified L1, L1 MSHRs,
/// and the egress queue toward the crossbar.
#[derive(Debug)]
pub struct SmMemPort {
    sm: u16,
    l1: CacheCore,
    mshr: Mshr,
    l1_latency: u64,
    /// Misses and write-throughs awaiting the deterministic drain into the
    /// crossbar, in issue order.
    pub(crate) egress: VecDeque<MemReq>,
}

// Identity lending, so `tick_into` can take `&mut [P] where P:
// AsMut<SmMemPort>` and accept plain `&mut SmMemPort` slices (std forwards
// `AsMut` through `&mut`), whole `Sm`s, or anything else that owns a port.
impl AsMut<SmMemPort> for SmMemPort {
    fn as_mut(&mut self) -> &mut SmMemPort {
        self
    }
}

impl SmMemPort {
    /// The port for SM `sm` under the given hierarchy configuration.
    pub fn new(sm: u16, cfg: &MemConfig) -> Self {
        SmMemPort {
            sm,
            l1: CacheCore::new(cfg.l1_geom),
            mshr: Mshr::new(cfg.l1_mshr_entries, cfg.l1_mshr_merges),
            l1_latency: cfg.l1_latency,
            egress: VecDeque::new(),
        }
    }

    /// The SM this port belongs to.
    pub fn sm(&self) -> u16 {
        self.sm
    }

    /// Present a sector-granular load at cycle `now`.
    pub fn read(&mut self, req: MemReq, now: u64) -> L1AccessResult {
        debug_assert_eq!(req.token.sm, self.sm, "token must carry the owning SM");
        if !self.mshr.can_accept(req.addr) {
            return L1AccessResult::Stall;
        }
        if self.mshr.is_pending(req.addr) {
            self.l1.record_mshr_merge(req.stream, req.class);
            let _ = self.mshr.on_miss(req.addr, req.token);
            return L1AccessResult::Pending;
        }
        let window = (0, self.l1.num_sets());
        match self.l1.access(&req, AccessKind::Read, window) {
            AccessOutcome::Hit => L1AccessResult::Hit {
                ready_at: now + self.l1_latency,
            },
            AccessOutcome::SectorMiss | AccessOutcome::LineMiss => {
                match self.mshr.on_miss(req.addr, req.token) {
                    MshrOutcome::Allocated => {
                        self.egress.push_back(req);
                        L1AccessResult::Pending
                    }
                    MshrOutcome::Merged => L1AccessResult::Pending,
                    // Invariant: `can_accept` at the top of this function
                    // guarantees the MSHR has room for `req.addr`, and
                    // nothing between there and here allocates an entry, so
                    // this arm is unreachable. Degrade to a stall anyway:
                    // the caller retries next cycle, which at worst costs a
                    // cycle and a double-counted L1 miss — strictly better
                    // than tearing down a multi-hour run.
                    MshrOutcome::Full => {
                        debug_assert!(false, "MSHR full after can_accept said otherwise");
                        L1AccessResult::Stall
                    }
                }
            }
        }
    }

    /// Present a sector-granular store. The L1 is write-through/no-allocate;
    /// the write is queued toward the L2 (write-validate) and completes
    /// immediately from the warp's perspective.
    pub fn write(&mut self, req: MemReq) {
        let window = (0, self.l1.num_sets());
        let _ = self.l1.access(&req, AccessKind::WriteNoAllocate, window);
        self.egress.push_back(req);
    }

    /// A response from the shared hierarchy: fill the L1 sector and wake
    /// every load merged on it.
    pub(crate) fn on_response(
        &mut self,
        sector: u64,
        stream: StreamId,
        class: DataClass,
    ) -> Vec<ReqToken> {
        let line = sector & !(crisp_trace::LINE_BYTES - 1);
        let sub = (sector % crisp_trace::LINE_BYTES) / crisp_trace::SECTOR_BYTES;
        let window = (0, self.l1.num_sets());
        // L1 lines are never dirty (write-through), so the eviction
        // writeback is always empty.
        let _ = self.l1.fill(line, sub, stream, class, false, window);
        self.mshr.on_fill(sector)
    }

    /// Whether nothing is pending in this port (no MSHR entries, no queued
    /// egress traffic).
    pub fn quiescent(&self) -> bool {
        self.mshr.in_flight() == 0 && self.egress.is_empty()
    }

    /// Sectors awaiting a fill from the shared hierarchy.
    pub fn in_flight(&self) -> usize {
        self.mshr.in_flight()
    }

    /// L1 statistics of this SM.
    pub fn stats(&self) -> &MemStats {
        self.l1.stats()
    }

    /// Clear L1 statistics (tags and contents are kept).
    pub fn clear_stats(&mut self) {
        self.l1.clear_stats();
    }

    /// Functionally warm one access: probe the L1 and install the sector
    /// immediately on a read miss, with no MSHR tracking and no egress
    /// traffic. Returns whether the access must also visit the shared
    /// hierarchy (read miss, or any write — the L1 is write-through).
    /// Used by fast-forward mode.
    pub fn warm(&mut self, req: &MemReq) -> bool {
        let window = (0, self.l1.num_sets());
        if req.is_write {
            let _ = self.l1.access(req, AccessKind::WriteNoAllocate, window);
            return true;
        }
        match self.l1.access(req, AccessKind::Read, window) {
            AccessOutcome::Hit => false,
            AccessOutcome::SectorMiss | AccessOutcome::LineMiss => {
                let _ = self.l1.fill(
                    req.line_addr(),
                    req.sector_in_line(),
                    req.stream,
                    req.class,
                    false,
                    window,
                );
                true
            }
        }
    }
}

impl CheckpointState for SmMemPort {
    type SaveCtx<'a> = ();
    /// `(owning SM id, hierarchy configuration)`.
    type RestoreCtx<'a> = (u16, &'a MemConfig);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u16(self.sm)?;
        self.l1.save(w, ())?;
        self.mshr.save(w, ())?;
        w.len(self.egress.len())?;
        for req in &self.egress {
            req.save(w, ())?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, (sm, cfg): (u16, &MemConfig)) -> io::Result<Self> {
        let found = r.u16()?;
        if found != sm {
            return Err(bad(format!("port belongs to SM {found}, expected SM {sm}")));
        }
        let l1 = CacheCore::restore(r, (cfg.l1_geom, crate::cache::Replacement::Lru))?;
        let mshr = Mshr::restore(r, (cfg.l1_mshr_entries, cfg.l1_mshr_merges))?;
        let n = r.len(1 << 24)?;
        let mut egress = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            egress.push_back(MemReq::restore(r, ())?);
        }
        Ok(SmMemPort {
            sm,
            l1,
            mshr,
            l1_latency: cfg.l1_latency,
            egress,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use crate::Replacement;

    fn cfg() -> MemConfig {
        MemConfig {
            n_sms: 1,
            l1_geom: CacheGeometry {
                size_bytes: 4096,
                assoc: 4,
            },
            l1_latency: 4,
            l1_mshr_entries: 8,
            l1_mshr_merges: 8,
            l2_geom: CacheGeometry {
                size_bytes: 32768,
                assoc: 8,
            },
            n_l2_banks: 2,
            l2_latency: 20,
            l2_mshr_entries: 16,
            xbar_latency: 4,
            dram_latency: 100,
            dram_bytes_per_cycle: 64.0,
            l2_replacement: Replacement::Lru,
        }
    }

    const S: StreamId = StreamId(0);
    const TOK: ReqToken = ReqToken { sm: 0, id: 1 };

    #[test]
    fn miss_parks_in_egress_until_drained() {
        let mut p = SmMemPort::new(0, &cfg());
        let r = MemReq::read(0x1000, S, DataClass::Compute, TOK);
        assert_eq!(p.read(r, 0), L1AccessResult::Pending);
        assert_eq!(p.egress.len(), 1);
        assert!(!p.quiescent());
    }

    #[test]
    fn merged_miss_does_not_duplicate_egress() {
        let mut p = SmMemPort::new(0, &cfg());
        let a = MemReq::read(0x1000, S, DataClass::Compute, TOK);
        let b = MemReq::read(0x1000, S, DataClass::Compute, ReqToken { sm: 0, id: 2 });
        let _ = p.read(a, 0);
        assert_eq!(p.read(b, 0), L1AccessResult::Pending);
        assert_eq!(p.egress.len(), 1, "merged miss rides the first request");
    }

    #[test]
    fn response_fills_l1_and_wakes_waiters() {
        let mut p = SmMemPort::new(0, &cfg());
        let a = MemReq::read(0x1000, S, DataClass::Compute, TOK);
        let b = MemReq::read(0x1000, S, DataClass::Compute, ReqToken { sm: 0, id: 2 });
        let _ = p.read(a, 0);
        let _ = p.read(b, 0);
        p.egress.clear(); // simulate the drain
        let woken = p.on_response(0x1000, S, DataClass::Compute);
        assert_eq!(woken.len(), 2);
        assert!(p.quiescent());
        // The sector is now resident.
        let again = MemReq::read(0x1000, S, DataClass::Compute, ReqToken { sm: 0, id: 3 });
        assert!(matches!(p.read(again, 50), L1AccessResult::Hit { .. }));
    }

    #[test]
    fn writes_always_queue() {
        let mut p = SmMemPort::new(0, &cfg());
        p.write(MemReq::write(0x2000, S, DataClass::Pipeline, TOK));
        p.write(MemReq::write(0x2020, S, DataClass::Pipeline, TOK));
        assert_eq!(p.egress.len(), 2);
        assert_eq!(p.in_flight(), 0, "stores do not occupy MSHRs");
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = cfg();
        c.l1_mshr_entries = 1;
        let mut p = SmMemPort::new(0, &c);
        let a = MemReq::read(0x0000, S, DataClass::Compute, TOK);
        let b = MemReq::read(0x4000, S, DataClass::Compute, ReqToken { sm: 0, id: 2 });
        assert_eq!(p.read(a, 0), L1AccessResult::Pending);
        assert_eq!(p.read(b, 0), L1AccessResult::Stall);
    }
}
