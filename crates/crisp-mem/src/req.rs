//! Memory requests, tokens and completions.

use std::io;

use crisp_ckpt::{CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId, LINE_BYTES, SECTOR_BYTES};

/// Sectors per cache line (128 B line / 32 B sector).
pub const SECTORS_PER_LINE: u64 = LINE_BYTES / SECTOR_BYTES;

/// Opaque token the issuer attaches to a request so it can recognise the
/// completion. The memory system never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReqToken {
    /// Issuing SM.
    pub sm: u16,
    /// Issuer-defined identifier (e.g. an in-flight-instruction slot).
    pub id: u64,
}

/// A sector-granular memory request, the unit the hierarchy operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Sector-aligned byte address.
    pub addr: u64,
    /// Whether this is a store.
    pub is_write: bool,
    /// Issuing stream, for partitioning and per-stream stats.
    pub stream: StreamId,
    /// Data classification for composition accounting.
    pub class: DataClass,
    /// Completion token (meaningless for writes, which complete at issue).
    pub token: ReqToken,
}

impl MemReq {
    /// A read of the sector containing `addr`.
    pub fn read(addr: u64, stream: StreamId, class: DataClass, token: ReqToken) -> Self {
        MemReq {
            addr: addr & !(SECTOR_BYTES - 1),
            is_write: false,
            stream,
            class,
            token,
        }
    }

    /// A write to the sector containing `addr`.
    pub fn write(addr: u64, stream: StreamId, class: DataClass, token: ReqToken) -> Self {
        MemReq {
            addr: addr & !(SECTOR_BYTES - 1),
            is_write: true,
            stream,
            class,
            token,
        }
    }

    /// The 128 B line address containing this sector.
    pub fn line_addr(&self) -> u64 {
        self.addr & !(LINE_BYTES - 1)
    }

    /// Sector index within the line (0..4).
    pub fn sector_in_line(&self) -> u64 {
        (self.addr % LINE_BYTES) / SECTOR_BYTES
    }
}

impl CheckpointState for ReqToken {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u16(self.sm)?;
        w.u64(self.id)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(ReqToken {
            sm: r.u16()?,
            id: r.u64()?,
        })
    }
}

impl CheckpointState for MemReq {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.addr)?;
        w.bool(self.is_write)?;
        w.stream(self.stream)?;
        w.class(self.class)?;
        self.token.save(w, ())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(MemReq {
            addr: r.u64()?,
            is_write: r.bool()?,
            stream: r.stream()?,
            class: r.class()?,
            token: ReqToken::restore(r, ())?,
        })
    }
}

/// A finished read returned by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The token the issuer attached.
    pub token: ReqToken,
    /// Sector address that completed.
    pub addr: u64,
    /// Cycle at which the data is available at the SM.
    pub ready_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOK: ReqToken = ReqToken { sm: 0, id: 0 };

    #[test]
    fn requests_align_to_sectors() {
        let r = MemReq::read(0x1234, StreamId(0), DataClass::Compute, TOK);
        assert_eq!(r.addr % SECTOR_BYTES, 0);
        assert_eq!(r.addr, 0x1220);
    }

    #[test]
    fn line_and_sector_decomposition() {
        let r = MemReq::read(0x1234, StreamId(0), DataClass::Compute, TOK);
        assert_eq!(r.line_addr(), 0x1200);
        assert_eq!(r.sector_in_line(), 1);
        assert!(r.sector_in_line() < SECTORS_PER_LINE);
    }

    #[test]
    fn write_constructor_sets_flag() {
        let w = MemReq::write(0x40, StreamId(1), DataClass::Pipeline, TOK);
        assert!(w.is_write);
        assert_eq!(w.addr, 0x40);
    }
}
