//! Per-stream / per-class memory statistics and L2 composition snapshots.

use std::collections::BTreeMap;
use std::io;

use crisp_ckpt::{CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId};

/// Access/hit/miss counters kept per `(stream, class)` key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStreamCounters {
    /// Sector-granular accesses.
    pub accesses: u64,
    /// Sector hits (including hits on lines still being filled but whose
    /// sector already arrived).
    pub hits: u64,
    /// Sector misses that allocated or joined an MSHR.
    pub misses: u64,
}

impl ClassStreamCounters {
    /// Hit rate in [0, 1]; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Aggregated statistics for one cache (or the whole hierarchy level).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemStats {
    by_key: BTreeMap<(StreamId, DataClass), ClassStreamCounters>,
}

impl MemStats {
    /// Empty statistics.
    pub fn new() -> Self {
        MemStats::default()
    }

    /// Record one access with its outcome.
    pub fn record(&mut self, stream: StreamId, class: DataClass, hit: bool) {
        let c = self.by_key.entry((stream, class)).or_default();
        c.accesses += 1;
        if hit {
            c.hits += 1;
        } else {
            c.misses += 1;
        }
    }

    /// Counters for one `(stream, class)` pair.
    pub fn get(&self, stream: StreamId, class: DataClass) -> ClassStreamCounters {
        self.by_key
            .get(&(stream, class))
            .copied()
            .unwrap_or_default()
    }

    /// Sum of counters over every class for one stream.
    pub fn stream_total(&self, stream: StreamId) -> ClassStreamCounters {
        let mut t = ClassStreamCounters::default();
        for ((s, _), c) in &self.by_key {
            if *s == stream {
                t.accesses += c.accesses;
                t.hits += c.hits;
                t.misses += c.misses;
            }
        }
        t
    }

    /// Sum of counters over every stream for one class.
    pub fn class_total(&self, class: DataClass) -> ClassStreamCounters {
        let mut t = ClassStreamCounters::default();
        for ((_, cl), c) in &self.by_key {
            if *cl == class {
                t.accesses += c.accesses;
                t.hits += c.hits;
                t.misses += c.misses;
            }
        }
        t
    }

    /// Grand totals.
    pub fn total(&self) -> ClassStreamCounters {
        let mut t = ClassStreamCounters::default();
        for c in self.by_key.values() {
            t.accesses += c.accesses;
            t.hits += c.hits;
            t.misses += c.misses;
        }
        t
    }

    /// Grand totals — alias of [`MemStats::total`] under the name exporters
    /// use.
    pub fn totals(&self) -> ClassStreamCounters {
        self.total()
    }

    /// Every `(stream, class)` key with recorded traffic, in key order.
    pub fn keys(&self) -> impl Iterator<Item = (StreamId, DataClass)> + '_ {
        self.by_key.keys().copied()
    }

    /// Every `((stream, class), counters)` entry, in key order — lets
    /// exporters walk the table without reaching into the private map.
    pub fn iter(&self) -> impl Iterator<Item = ((StreamId, DataClass), ClassStreamCounters)> + '_ {
        self.by_key.iter().map(|(k, c)| (*k, *c))
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &MemStats) {
        for (k, c) in &other.by_key {
            let e = self.by_key.entry(*k).or_default();
            e.accesses += c.accesses;
            e.hits += c.hits;
            e.misses += c.misses;
        }
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.by_key.clear();
    }
}

impl CheckpointState for MemStats {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.len(self.by_key.len())?;
        for (&(stream, class), c) in &self.by_key {
            w.stream(stream)?;
            w.class(class)?;
            w.u64(c.accesses)?;
            w.u64(c.hits)?;
            w.u64(c.misses)?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let n = r.len(1 << 20)?;
        let mut by_key = BTreeMap::new();
        for _ in 0..n {
            let stream = r.stream()?;
            let class = r.class()?;
            let c = ClassStreamCounters {
                accesses: r.u64()?,
                hits: r.u64()?,
                misses: r.u64()?,
            };
            by_key.insert((stream, class), c);
        }
        Ok(MemStats { by_key })
    }
}

impl CheckpointState for CompositionSnapshot {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.capacity_lines)?;
        w.len(self.lines.len())?;
        for (&(stream, class), &n) in &self.lines {
            w.stream(stream)?;
            w.class(class)?;
            w.u64(n)?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let capacity_lines = r.u64()?;
        let n = r.len(1 << 20)?;
        let mut lines = BTreeMap::new();
        for _ in 0..n {
            let stream = r.stream()?;
            let class = r.class()?;
            lines.insert((stream, class), r.u64()?);
        }
        Ok(CompositionSnapshot {
            lines,
            capacity_lines,
        })
    }
}

/// A point-in-time breakdown of valid cache lines by owner, the quantity
/// Figures 11 and 15 plot ("up to 60% of cachelines are occupied by texture
/// data").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompositionSnapshot {
    lines: BTreeMap<(StreamId, DataClass), u64>,
    /// Total line capacity of the structure snapshotted.
    pub capacity_lines: u64,
}

impl CompositionSnapshot {
    /// An empty snapshot with the given capacity.
    pub fn new(capacity_lines: u64) -> Self {
        CompositionSnapshot {
            lines: BTreeMap::new(),
            capacity_lines,
        }
    }

    /// Count one valid line owned by `(stream, class)`.
    pub fn add_line(&mut self, stream: StreamId, class: DataClass) {
        *self.lines.entry((stream, class)).or_insert(0) += 1;
    }

    /// Merge a snapshot of another bank into this one.
    pub fn merge(&mut self, other: &CompositionSnapshot) {
        for (k, n) in &other.lines {
            *self.lines.entry(*k).or_insert(0) += n;
        }
        self.capacity_lines += other.capacity_lines;
    }

    /// Valid lines owned by `(stream, class)`.
    pub fn lines(&self, stream: StreamId, class: DataClass) -> u64 {
        self.lines.get(&(stream, class)).copied().unwrap_or(0)
    }

    /// Valid lines owned by `class`, any stream.
    pub fn class_lines(&self, class: DataClass) -> u64 {
        self.lines
            .iter()
            .filter(|((_, c), _)| *c == class)
            .map(|(_, n)| n)
            .sum()
    }

    /// Valid lines owned by `stream`, any class.
    pub fn stream_lines(&self, stream: StreamId) -> u64 {
        self.lines
            .iter()
            .filter(|((s, _), _)| *s == stream)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total valid lines.
    pub fn valid_lines(&self) -> u64 {
        self.lines.values().sum()
    }

    /// Fraction of *valid* lines held by `class` (0 when empty).
    pub fn class_fraction(&self, class: DataClass) -> f64 {
        let v = self.valid_lines();
        if v == 0 {
            0.0
        } else {
            self.class_lines(class) as f64 / v as f64
        }
    }

    /// Fraction of *valid* lines held by `stream` (0 when empty).
    pub fn stream_fraction(&self, stream: StreamId) -> f64 {
        let v = self.valid_lines();
        if v == 0 {
            0.0
        } else {
            self.stream_lines(stream) as f64 / v as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = MemStats::new();
        for i in 0..10 {
            s.record(StreamId(0), DataClass::Texture, i < 9);
        }
        let c = s.get(StreamId(0), DataClass::Texture);
        assert_eq!(c.accesses, 10);
        assert_eq!(c.hits, 9);
        assert_eq!(c.misses, 1);
        assert!((c.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(ClassStreamCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn totals_aggregate_across_keys() {
        let mut s = MemStats::new();
        s.record(StreamId(0), DataClass::Texture, true);
        s.record(StreamId(0), DataClass::Pipeline, false);
        s.record(StreamId(1), DataClass::Compute, true);
        assert_eq!(s.stream_total(StreamId(0)).accesses, 2);
        assert_eq!(s.class_total(DataClass::Compute).accesses, 1);
        assert_eq!(s.total().accesses, 3);
        assert_eq!(s.total().hits, 2);
        assert_eq!(s.totals(), s.total());
    }

    #[test]
    fn keys_and_iter_walk_in_key_order() {
        let mut s = MemStats::new();
        s.record(StreamId(1), DataClass::Compute, true);
        s.record(StreamId(0), DataClass::Texture, false);
        s.record(StreamId(0), DataClass::Pipeline, true);
        let keys: Vec<_> = s.keys().collect();
        assert_eq!(keys.len(), 3);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted by key");
        let summed: u64 = s.iter().map(|(_, c)| c.accesses).sum();
        assert_eq!(summed, s.totals().accesses);
        assert!(s
            .iter()
            .any(|((st, cl), c)| st == StreamId(0) && cl == DataClass::Texture && c.misses == 1));
    }

    #[test]
    fn merge_sums() {
        let mut a = MemStats::new();
        a.record(StreamId(0), DataClass::Texture, true);
        let mut b = MemStats::new();
        b.record(StreamId(0), DataClass::Texture, false);
        a.merge(&b);
        let c = a.get(StreamId(0), DataClass::Texture);
        assert_eq!((c.accesses, c.hits, c.misses), (2, 1, 1));
    }

    #[test]
    fn composition_fractions() {
        let mut c = CompositionSnapshot::new(100);
        for _ in 0..30 {
            c.add_line(StreamId(0), DataClass::Texture);
        }
        for _ in 0..20 {
            c.add_line(StreamId(0), DataClass::Pipeline);
        }
        for _ in 0..10 {
            c.add_line(StreamId(1), DataClass::Compute);
        }
        assert_eq!(c.valid_lines(), 60);
        assert!((c.class_fraction(DataClass::Texture) - 0.5).abs() < 1e-12);
        assert!((c.stream_fraction(StreamId(0)) - 50.0 / 60.0).abs() < 1e-12);
        assert_eq!(c.lines(StreamId(1), DataClass::Compute), 10);
    }

    #[test]
    fn composition_snapshot_checkpoint_roundtrip() {
        let mut c = CompositionSnapshot::new(64);
        c.add_line(StreamId(0), DataClass::Texture);
        c.add_line(StreamId(1), DataClass::Compute);
        c.add_line(StreamId(1), DataClass::Compute);
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        c.save(&mut w, ()).unwrap();
        let mut r = Reader::new(buf.as_slice());
        let back = CompositionSnapshot::restore(&mut r, ()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn composition_merge_accumulates_capacity() {
        let mut a = CompositionSnapshot::new(10);
        a.add_line(StreamId(0), DataClass::Texture);
        let mut b = CompositionSnapshot::new(10);
        b.add_line(StreamId(0), DataClass::Texture);
        a.merge(&b);
        assert_eq!(a.capacity_lines, 20);
        assert_eq!(a.class_lines(DataClass::Texture), 2);
    }
}
