//! The assembled shared memory hierarchy: crossbar → banked L2 → DRAM
//! partitions, driven by an external clock.
//!
//! The SM-private side (unified L1 + MSHRs) lives in [`SmMemPort`]; each SM
//! owns its port and can therefore tick on a worker thread without touching
//! shared state. `crisp-sim` calls [`MemSystem::tick`] once per core cycle
//! with every port: the tick first **drains each port's egress queue in
//! ascending SM-id order** (reproducing the exact request interleaving of a
//! single-threaded run), then advances the L2/DRAM pipelines, and finally
//! fills the ports with arriving responses, returning the [`Completion`]s to
//! route back to the issuing warps.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::time::Instant;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{DataClass, StreamId};

use crate::cache::{CacheGeometry, Replacement};
use crate::dram::Dram;
use crate::l2::{L2Bank, L2Outcome};
use crate::partition::{BankMap, SetPartition};
use crate::port::SmMemPort;
use crate::req::Completion;
use crate::stats::{CompositionSnapshot, MemStats};
use crate::xbar::Xbar;

/// Memory-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// Number of SMs (one L1 each).
    pub n_sms: usize,
    /// Per-SM L1 geometry (the unified data+texture cache).
    pub l1_geom: CacheGeometry,
    /// L1 hit latency in core cycles.
    pub l1_latency: u64,
    /// Distinct in-flight sectors per L1.
    pub l1_mshr_entries: usize,
    /// Waiters per in-flight sector.
    pub l1_mshr_merges: usize,
    /// Total L2 capacity across all banks.
    pub l2_geom: CacheGeometry,
    /// Number of L2 banks (= memory partitions).
    pub n_l2_banks: u32,
    /// L2 hit latency (beyond the crossbar) in cycles.
    pub l2_latency: u64,
    /// L2 MSHR entries per bank.
    pub l2_mshr_entries: usize,
    /// Crossbar traversal latency, each direction.
    pub xbar_latency: u64,
    /// DRAM access latency.
    pub dram_latency: u64,
    /// Aggregate DRAM bandwidth in bytes per core cycle (split evenly over
    /// partitions).
    pub dram_bytes_per_cycle: f64,
    /// L2 victim-selection policy.
    pub l2_replacement: Replacement,
}

impl MemConfig {
    fn l2_bank_geom(&self) -> CacheGeometry {
        assert!(
            self.l2_geom
                .size_bytes
                .is_multiple_of(self.n_l2_banks as u64),
            "L2 capacity must divide evenly across banks"
        );
        CacheGeometry {
            size_bytes: self.l2_geom.size_bytes / self.n_l2_banks as u64,
            assoc: self.l2_geom.assoc,
        }
    }
}

/// Result of an L1 access from the LSU's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1AccessResult {
    /// Sector present; data valid at `ready_at`.
    Hit {
        /// Cycle the data reaches the register file.
        ready_at: u64,
    },
    /// Miss sent (or merged) down the hierarchy; a [`Completion`] with the
    /// same token will surface from [`MemSystem::tick`].
    Pending,
    /// L1 MSHRs exhausted; the LSU must replay the access next cycle.
    Stall,
}

/// A response travelling back from the L2 to one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Response {
    ready_at: u64,
    sm: u16,
    sector: u64,
    stream: StreamId,
    class_idx: u8, // DataClass as index to keep Ord derivable
}

fn class_idx(c: DataClass) -> u8 {
    match c {
        DataClass::Texture => 0,
        DataClass::Pipeline => 1,
        DataClass::Compute => 2,
    }
}

fn idx_class(i: u8) -> DataClass {
    match i {
        0 => DataClass::Texture,
        1 => DataClass::Pipeline,
        _ => DataClass::Compute,
    }
}

/// Host-clock sub-phase durations of one [`MemSystem::tick_into`] call,
/// for the simulator's self-profiler: the port-egress drain (phase 0)
/// versus the L2/DRAM pipeline advance and response fill (phases 1–3).
/// Only measured when a `TickTimes` is passed in — the hot path pays no
/// clock reads otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickTimes {
    /// Nanoseconds draining port egress queues into the crossbar.
    pub drain_ns: u64,
    /// Nanoseconds ticking L2 banks / DRAM and delivering responses.
    pub mem_ns: u64,
}

/// A DRAM fetch awaiting return to its L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DramReturn {
    ready_at: u64,
    sector: u64,
    stream: StreamId,
    class_idx: u8,
}

/// The shared half of the modelled memory hierarchy (crossbar, L2, DRAM).
/// The per-SM half is [`SmMemPort`].
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    xbar_in: Xbar,
    banks: Vec<L2Bank>,
    bank_map: BankMap,
    partition: SetPartition,
    dram: Vec<Dram>,
    dram_ret: Vec<BinaryHeap<Reverse<DramReturn>>>,
    responses: BinaryHeap<Reverse<Response>>,
}

impl MemSystem {
    /// Build the hierarchy with shared banks and no set partitioning (the
    /// MPS / baseline configuration). Use [`MemSystem::set_bank_map`] and
    /// [`MemSystem::set_partition`] for MiG / TAP.
    pub fn new(cfg: MemConfig) -> Self {
        let bank_geom = cfg.l2_bank_geom();
        MemSystem {
            xbar_in: Xbar::new(cfg.n_l2_banks as usize, cfg.xbar_latency),
            banks: (0..cfg.n_l2_banks)
                .map(|_| {
                    L2Bank::with_replacement(bank_geom, cfg.l2_mshr_entries, 16, cfg.l2_replacement)
                })
                .collect(),
            bank_map: BankMap::shared(cfg.n_l2_banks),
            partition: SetPartition::Shared,
            dram: (0..cfg.n_l2_banks)
                .map(|_| {
                    Dram::new(
                        cfg.dram_latency,
                        cfg.dram_bytes_per_cycle / cfg.n_l2_banks as f64,
                    )
                })
                .collect(),
            dram_ret: (0..cfg.n_l2_banks).map(|_| BinaryHeap::new()).collect(),
            responses: BinaryHeap::new(),
            cfg,
        }
    }

    /// One [`SmMemPort`] per SM, matching this hierarchy's configuration.
    pub fn make_ports(&self) -> Vec<SmMemPort> {
        (0..self.cfg.n_sms)
            .map(|i| SmMemPort::new(i as u16, &self.cfg))
            .collect()
    }

    /// Replace the bank map (MiG masks).
    pub fn set_bank_map(&mut self, map: BankMap) {
        assert_eq!(map.n_banks(), self.cfg.n_l2_banks, "bank count mismatch");
        self.bank_map = map;
    }

    /// Replace the set-partition policy (TAP / static windows).
    pub fn set_partition(&mut self, p: SetPartition) {
        self.partition = p;
    }

    /// The active set-partition policy (e.g. to read TAP's allocation).
    pub fn partition(&self) -> &SetPartition {
        &self.partition
    }

    /// Configuration the system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Advance the hierarchy one cycle; returns loads completed this cycle.
    ///
    /// Convenience wrapper over [`MemSystem::tick_into`] that allocates a
    /// fresh completion vector. The simulator's cycle loop uses `tick_into`
    /// with a reused buffer instead.
    pub fn tick(&mut self, now: u64, ports: &mut [&mut SmMemPort]) -> Vec<Completion> {
        let mut done = Vec::new();
        self.tick_into(now, ports, &mut done, None);
        done
    }

    /// Advance the hierarchy one cycle, appending loads completed this
    /// cycle into `done` (cleared first).
    ///
    /// `ports` must be every SM's port in ascending SM-id order — the drain
    /// and fill phases index it by SM id. The deterministic drain order is
    /// the linchpin of reproducible parallel simulation: whatever thread
    /// cycled each SM, the crossbar sees requests in (SM id, issue order).
    /// Anything that can lend a port works — `&mut SmMemPort` or a whole
    /// `Sm` — so callers need not build a per-cycle `Vec` of references.
    ///
    /// Pass `times` to attribute the drain vs. pipeline sub-phases on the
    /// host clock; `None` skips every clock read.
    pub fn tick_into<P: AsMut<SmMemPort>>(
        &mut self,
        now: u64,
        ports: &mut [P],
        done: &mut Vec<Completion>,
        mut times: Option<&mut TickTimes>,
    ) {
        done.clear();
        let mut t_prev = times.as_ref().map(|_| Instant::now());

        // 0. Drain every port's egress queue in ascending SM-id order.
        for port in ports.iter_mut() {
            let port = port.as_mut();
            while let Some(req) = port.egress.pop_front() {
                let bank = self.bank_map.bank_of(req.stream, req.addr);
                self.xbar_in.push(now, bank, req);
            }
        }
        if let Some(tt) = times.as_mut() {
            let t = Instant::now();
            tt.drain_ns += (t - t_prev.expect("set when times is Some")).as_nanos() as u64;
            t_prev = Some(t);
        }

        // 1. Each L2 bank accepts at most one request per cycle from the
        //    crossbar.
        for bank_idx in 0..self.banks.len() as u32 {
            let Some(req) = self.xbar_in.pop_ready(now, bank_idx) else {
                continue;
            };
            let sets = self.banks[bank_idx as usize].cache().num_sets();
            self.partition.observe(req.stream, req.line_addr());
            let window = self.partition.window(req.stream, sets);
            if req.is_write {
                if let Some(wb) = self.banks[bank_idx as usize].write(&req, window) {
                    for s in 0..wb.dirty_sectors as u64 {
                        let a = self
                            .bank_map
                            .local_addr(wb.stream, wb.line_addr + s * crisp_trace::SECTOR_BYTES);
                        let _ = self.dram[bank_idx as usize].request_at(now, a, wb.stream, true);
                    }
                }
            } else {
                match self.banks[bank_idx as usize].read(&req, window) {
                    L2Outcome::Hit => {
                        self.responses.push(Reverse(Response {
                            ready_at: now + self.cfg.l2_latency + self.cfg.xbar_latency,
                            sm: req.token.sm,
                            sector: req.addr,
                            stream: req.stream,
                            class_idx: class_idx(req.class),
                        }));
                    }
                    L2Outcome::MissToDram => {
                        let local = self.bank_map.local_addr(req.stream, req.addr);
                        let ready =
                            self.dram[bank_idx as usize].request_at(now, local, req.stream, false);
                        self.dram_ret[bank_idx as usize].push(Reverse(DramReturn {
                            ready_at: ready,
                            sector: req.addr,
                            stream: req.stream,
                            class_idx: class_idx(req.class),
                        }));
                    }
                    L2Outcome::Merged => {}
                    L2Outcome::Stall => {
                        self.xbar_in.push_front(now, bank_idx, req);
                    }
                }
            }
        }

        // 2. DRAM returns fill their bank and fan responses out to waiters.
        for bank_idx in 0..self.banks.len() {
            while let Some(&Reverse(r)) = self.dram_ret[bank_idx].peek() {
                if r.ready_at > now {
                    break;
                }
                self.dram_ret[bank_idx].pop();
                let class = idx_class(r.class_idx);
                let sets = self.banks[bank_idx].cache().num_sets();
                let window = self.partition.window(r.stream, sets);
                let (waiters, wb) = self.banks[bank_idx].fill(r.sector, r.stream, class, window);
                if let Some(wb) = wb {
                    for s in 0..wb.dirty_sectors as u64 {
                        let a = self
                            .bank_map
                            .local_addr(wb.stream, wb.line_addr + s * crisp_trace::SECTOR_BYTES);
                        let _ = self.dram[bank_idx].request_at(now, a, wb.stream, true);
                    }
                }
                // One response per waiting SM (the L1 MSHR fans out further).
                let mut sms: Vec<u16> = waiters.iter().map(|t| t.sm).collect();
                sms.sort_unstable();
                sms.dedup();
                for sm in sms {
                    self.responses.push(Reverse(Response {
                        ready_at: now + self.cfg.l2_latency + self.cfg.xbar_latency,
                        sm,
                        sector: r.sector,
                        stream: r.stream,
                        class_idx: r.class_idx,
                    }));
                }
            }
        }

        // 3. Responses arriving at SMs fill their port's L1 and wake merged
        //    loads.
        while let Some(&Reverse(r)) = self.responses.peek() {
            if r.ready_at > now {
                break;
            }
            self.responses.pop();
            let port = ports[r.sm as usize].as_mut();
            for token in port.on_response(r.sector, r.stream, idx_class(r.class_idx)) {
                done.push(Completion {
                    token,
                    addr: r.sector,
                    ready_at: now,
                });
            }
        }
        if let Some(tt) = times {
            tt.mem_ns +=
                (Instant::now() - t_prev.expect("set when times is Some")).as_nanos() as u64;
        }
    }

    /// Whether any request is still in flight in the shared hierarchy.
    /// (Each [`SmMemPort`] answers for its own in-flight sectors.)
    pub fn quiescent(&self) -> bool {
        self.xbar_in.in_flight() == 0
            && self.responses.is_empty()
            && self.dram_ret.iter().all(BinaryHeap::is_empty)
            && self.banks.iter().all(|b| b.in_flight() == 0)
    }

    /// L2 statistics summed over every bank.
    pub fn l2_stats_total(&self) -> MemStats {
        let mut t = MemStats::new();
        for b in &self.banks {
            t.merge(b.cache().stats());
        }
        t
    }

    /// L2 composition snapshot merged over every bank (paper Figs 11, 15).
    pub fn l2_composition(&self) -> CompositionSnapshot {
        let mut t = CompositionSnapshot::new(0);
        for b in &self.banks {
            t.merge(&b.cache().composition());
        }
        t
    }

    /// DRAM bytes moved on behalf of `stream`, over all partitions.
    pub fn dram_bytes(&self, stream: StreamId) -> u64 {
        self.dram.iter().map(|d| d.bytes_for(stream)).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram.iter().map(Dram::total_bytes).sum()
    }

    /// Clear L2 statistics (tags and contents are kept). L1 statistics live
    /// in the ports; clear them with [`SmMemPort::clear_stats`].
    pub fn clear_stats(&mut self) {
        for b in &mut self.banks {
            b.cache_mut().clear_stats();
        }
    }

    /// Functionally warm one request that missed (or wrote through) an L1:
    /// route it through the bank map and set partition, probe/fill the L2
    /// bank, and open the DRAM row it would have touched — all with zero
    /// timing. Used by fast-forward mode to build realistic cache and
    /// row-buffer state before detailed simulation starts.
    pub fn warm(&mut self, req: &crate::req::MemReq) {
        let bank = self.bank_map.bank_of(req.stream, req.addr) as usize;
        self.partition.observe(req.stream, req.line_addr());
        let sets = self.banks[bank].cache().num_sets();
        let window = self.partition.window(req.stream, sets);
        if req.is_write {
            if let Some(wb) = self.banks[bank].write(req, window) {
                for s in 0..wb.dirty_sectors as u64 {
                    let a = self
                        .bank_map
                        .local_addr(wb.stream, wb.line_addr + s * crisp_trace::SECTOR_BYTES);
                    self.dram[bank].warm(a);
                }
            }
        } else if self.banks[bank].warm_read(req, window) {
            let local = self.bank_map.local_addr(req.stream, req.addr);
            self.dram[bank].warm(local);
        }
    }
}

impl CheckpointState for MemSystem {
    type SaveCtx<'a> = ();
    /// The configuration the original system was built with (already
    /// validated by the caller — geometry asserts would panic on garbage).
    type RestoreCtx<'a> = &'a MemConfig;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        self.xbar_in.save(w, ())?;
        w.len(self.banks.len())?;
        for b in &self.banks {
            b.save(w, ())?;
        }
        self.bank_map.save(w, ())?;
        self.partition.save(w, ())?;
        for d in &self.dram {
            d.save(w, ())?;
        }
        // BinaryHeaps iterate in arbitrary order; serialize their contents
        // sorted so the byte stream is deterministic. Push-rebuilding sorted
        // input on restore yields a heap that pops identically.
        for heap in &self.dram_ret {
            let mut v: Vec<DramReturn> = heap.iter().map(|Reverse(r)| *r).collect();
            v.sort_unstable();
            w.len(v.len())?;
            for r in v {
                w.u64(r.ready_at)?;
                w.u64(r.sector)?;
                w.stream(r.stream)?;
                w.u8(r.class_idx)?;
            }
        }
        let mut v: Vec<Response> = self.responses.iter().map(|Reverse(r)| *r).collect();
        v.sort_unstable();
        w.len(v.len())?;
        for r in v {
            w.u64(r.ready_at)?;
            w.u16(r.sm)?;
            w.u64(r.sector)?;
            w.stream(r.stream)?;
            w.u8(r.class_idx)?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, cfg: &MemConfig) -> io::Result<Self> {
        let n_banks = cfg.n_l2_banks as usize;
        let bank_geom = cfg.l2_bank_geom();
        let xbar_in = Xbar::restore(r, (n_banks, cfg.xbar_latency))?;
        let n = r.len(n_banks)?;
        if n != n_banks {
            return Err(bad(format!(
                "checkpoint has {n} L2 banks, config implies {n_banks}"
            )));
        }
        let mut banks = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            banks.push(L2Bank::restore(
                r,
                (bank_geom, cfg.l2_mshr_entries, 16, cfg.l2_replacement),
            )?);
        }
        let bank_map = BankMap::restore(r, ())?;
        if bank_map.n_banks() != cfg.n_l2_banks {
            return Err(bad("bank map does not match the configured bank count"));
        }
        let partition = SetPartition::restore(r, ())?;
        let mut dram = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            dram.push(Dram::restore(r, ())?);
        }
        let mut dram_ret = Vec::with_capacity(n_banks);
        for _ in 0..n_banks {
            let len = r.len(1 << 24)?;
            let mut heap = BinaryHeap::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let ready_at = r.u64()?;
                let sector = r.u64()?;
                let stream = r.stream()?;
                let class_idx = r.u8()?;
                if class_idx > 2 {
                    return Err(bad(format!("bad data-class index {class_idx}")));
                }
                heap.push(Reverse(DramReturn {
                    ready_at,
                    sector,
                    stream,
                    class_idx,
                }));
            }
            dram_ret.push(heap);
        }
        let len = r.len(1 << 24)?;
        let mut responses = BinaryHeap::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            let ready_at = r.u64()?;
            let sm = r.u16()?;
            if sm as usize >= cfg.n_sms {
                return Err(bad(format!("response addressed to nonexistent SM {sm}")));
            }
            let sector = r.u64()?;
            let stream = r.stream()?;
            let class_idx = r.u8()?;
            if class_idx > 2 {
                return Err(bad(format!("bad data-class index {class_idx}")));
            }
            responses.push(Reverse(Response {
                ready_at,
                sm,
                sector,
                stream,
                class_idx,
            }));
        }
        Ok(MemSystem {
            cfg: *cfg,
            xbar_in,
            banks,
            bank_map,
            partition,
            dram,
            dram_ret,
            responses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::{MemReq, ReqToken};

    const S: StreamId = StreamId(0);

    fn small_cfg() -> MemConfig {
        MemConfig {
            n_sms: 2,
            l1_geom: CacheGeometry {
                size_bytes: 4096,
                assoc: 4,
            },
            l1_latency: 4,
            l1_mshr_entries: 8,
            l1_mshr_merges: 8,
            l2_geom: CacheGeometry {
                size_bytes: 32768,
                assoc: 8,
            },
            n_l2_banks: 2,
            l2_latency: 20,
            l2_mshr_entries: 16,
            xbar_latency: 4,
            dram_latency: 100,
            dram_bytes_per_cycle: 64.0,
            l2_replacement: Replacement::Lru,
        }
    }

    fn tok(sm: u16, id: u64) -> ReqToken {
        ReqToken { sm, id }
    }

    fn run_until_complete(
        ms: &mut MemSystem,
        ports: &mut [SmMemPort],
        start: u64,
        budget: u64,
    ) -> Vec<Completion> {
        let mut all = Vec::new();
        for now in start..start + budget {
            let mut refs: Vec<&mut SmMemPort> = ports.iter_mut().collect();
            all.extend(ms.tick(now, &mut refs));
            if ms.quiescent() && ports.iter().all(SmMemPort::quiescent) {
                break;
            }
        }
        all
    }

    #[test]
    fn cold_miss_round_trip_completes() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let req = MemReq::read(0x1000, S, DataClass::Compute, tok(0, 7));
        assert_eq!(ports[0].read(req, 0), L1AccessResult::Pending);
        let done = run_until_complete(&mut ms, &mut ports, 0, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, tok(0, 7));
        // Latency must at least cover xbar + dram + l2 + xbar.
        assert!(
            done[0].ready_at >= 4 + 100 + 20 + 4,
            "got {}",
            done[0].ready_at
        );
        assert!(ms.quiescent());
    }

    #[test]
    fn second_access_hits_in_l1() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let req = MemReq::read(0x1000, S, DataClass::Compute, tok(0, 1));
        let _ = ports[0].read(req, 0);
        let _ = run_until_complete(&mut ms, &mut ports, 0, 10_000);
        match ports[0].read(MemReq::read(0x1000, S, DataClass::Compute, tok(0, 2)), 500) {
            L1AccessResult::Hit { ready_at } => assert_eq!(ready_at, 504),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = ports[0].stats().get(S, DataClass::Compute);
        assert_eq!(stats.accesses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn merged_misses_complete_together() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let a = MemReq::read(0x2000, S, DataClass::Compute, tok(0, 1));
        let b = MemReq::read(0x2000, S, DataClass::Compute, tok(0, 2));
        assert_eq!(ports[0].read(a, 0), L1AccessResult::Pending);
        assert_eq!(ports[0].read(b, 0), L1AccessResult::Pending);
        let done = run_until_complete(&mut ms, &mut ports, 0, 10_000);
        assert_eq!(done.len(), 2, "both merged loads must complete");
    }

    #[test]
    fn two_sms_requesting_same_sector_both_complete() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let a = MemReq::read(0x3000, S, DataClass::Compute, tok(0, 1));
        let b = MemReq::read(0x3000, S, DataClass::Compute, tok(1, 1));
        let _ = ports[0].read(a, 0);
        let _ = ports[1].read(b, 0);
        let done = run_until_complete(&mut ms, &mut ports, 0, 10_000);
        let mut sms: Vec<u16> = done.iter().map(|c| c.token.sm).collect();
        sms.sort_unstable();
        assert_eq!(sms, vec![0, 1]);
    }

    #[test]
    fn writes_reach_l2_and_reads_hit_there() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let w = MemReq::write(0x5000, S, DataClass::Pipeline, tok(0, 0));
        ports[0].write(w);
        // Drain the write into the L2.
        for now in 0..50 {
            let mut refs: Vec<&mut SmMemPort> = ports.iter_mut().collect();
            let _ = ms.tick(now, &mut refs);
        }
        // A read from another SM must be an L2 hit (no DRAM read traffic).
        let reads_before = ms.dram_total_bytes();
        let r = MemReq::read(0x5000, S, DataClass::Pipeline, tok(1, 9));
        assert_eq!(ports[1].read(r, 100), L1AccessResult::Pending);
        let done = run_until_complete(&mut ms, &mut ports, 100, 10_000);
        assert_eq!(done.len(), 1);
        assert_eq!(
            ms.dram_total_bytes(),
            reads_before,
            "read must be served by the L2, not DRAM"
        );
        let comp = ms.l2_composition();
        assert_eq!(comp.class_lines(DataClass::Pipeline), 1);
    }

    #[test]
    fn mig_bank_masks_isolate_dram_partitions() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let s0 = StreamId(0);
        let s1 = StreamId(1);
        ms.set_bank_map(BankMap::mig_even_split(2, s0, s1));
        // Stream 0 reads many distinct lines → only partition 0 sees bytes.
        for i in 0..16u64 {
            let r = MemReq::read(i * 128, s0, DataClass::Compute, tok(0, i));
            let _ = ports[0].read(r, 0);
        }
        let _ = run_until_complete(&mut ms, &mut ports, 0, 20_000);
        assert!(ms.dram_bytes(s0) > 0);
        assert_eq!(ms.dram_bytes(s1), 0);
        // All stream-0 traffic went to bank 0's DRAM partition.
        assert_eq!(ms.dram[1].total_bytes(), 0);
    }

    #[test]
    fn tap_and_mig_compose() {
        // Bank masks and set windows are orthogonal: a system can restrict
        // banks per stream AND partition sets inside them.
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let s0 = StreamId(0);
        let s1 = StreamId(1);
        ms.set_bank_map(BankMap::mig_even_split(2, s0, s1));
        let sets = 32768 / 2 / 128 / 8; // per-bank sets
        let tap = crate::partition::TapController::new(
            vec![s0, s1],
            sets,
            8,
            crate::partition::TapConfig {
                epoch_accesses: 50,
                sample_every: 1,
                min_sets: 1,
            },
        );
        ms.set_partition(SetPartition::Tap(tap));
        for i in 0..32u64 {
            let r = MemReq::read(i * 128, s0, DataClass::Compute, tok(0, i));
            let _ = ports[0].read(r, 0);
        }
        let _ = run_until_complete(&mut ms, &mut ports, 0, 20_000);
        assert!(ms.dram_bytes(s0) > 0);
        assert_eq!(ms.dram_bytes(s1), 0, "bank isolation still holds under TAP");
    }

    #[test]
    fn tick_into_reuses_buffer_and_times_subphases() {
        let mut ms = MemSystem::new(small_cfg());
        let mut ports = ms.make_ports();
        let req = MemReq::read(0x1000, S, DataClass::Compute, tok(0, 7));
        assert_eq!(ports[0].read(req, 0), L1AccessResult::Pending);
        // Drive tick_into directly over the owned port slice (no per-cycle
        // Vec<&mut _>), with a reused buffer and timing enabled.
        let mut done = Vec::new();
        let mut times = TickTimes::default();
        let mut completions = Vec::new();
        for now in 0..10_000 {
            ms.tick_into(now, &mut ports, &mut done, Some(&mut times));
            completions.extend(done.iter().copied());
            if ms.quiescent() && ports.iter().all(SmMemPort::quiescent) {
                break;
            }
        }
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].token, tok(0, 7));
        assert!(
            times.drain_ns > 0 && times.mem_ns > 0,
            "both sub-phases must accumulate wall time: {times:?}"
        );
        // `done` holds only the last cycle's completions (cleared per call).
        assert!(done.len() <= 1);
    }

    #[test]
    fn quiescent_when_idle() {
        let ms = MemSystem::new(small_cfg());
        assert!(ms.quiescent());
        assert!(ms.make_ports().iter().all(SmMemPort::quiescent));
    }
}
