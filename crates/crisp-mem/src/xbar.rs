//! SM↔L2 crossbar: fixed traversal latency plus a per-destination accept
//! rate of one request per cycle, which is what bounds per-bank L2
//! bandwidth (the mechanism behind MiG's bandwidth loss in Figure 14).

use std::collections::VecDeque;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};

use crate::req::MemReq;

/// One direction of the interconnect: queues per destination port.
#[derive(Debug, Clone)]
pub(crate) struct Xbar {
    latency: u64,
    queues: Vec<VecDeque<(u64, MemReq)>>,
}

impl Xbar {
    pub(crate) fn new(n_dsts: usize, latency: u64) -> Self {
        Xbar {
            latency,
            queues: vec![VecDeque::new(); n_dsts],
        }
    }

    /// Inject a request at `now` towards `dst`.
    pub(crate) fn push(&mut self, now: u64, dst: u32, req: MemReq) {
        self.queues[dst as usize].push_back((now + self.latency, req));
    }

    /// Pop the request at the head of `dst`'s queue if it has traversed.
    /// At most one pop per destination per cycle models the port width.
    pub(crate) fn pop_ready(&mut self, now: u64, dst: u32) -> Option<MemReq> {
        let q = &mut self.queues[dst as usize];
        match q.front() {
            Some(&(arrive, _)) if arrive <= now => q.pop_front().map(|(_, r)| r),
            _ => None,
        }
    }

    /// Put a request back at the head (destination stalled this cycle).
    pub(crate) fn push_front(&mut self, now: u64, dst: u32, req: MemReq) {
        self.queues[dst as usize].push_front((now, req));
    }

    /// Total queued requests (for drain checks).
    pub(crate) fn in_flight(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl CheckpointState for Xbar {
    type SaveCtx<'a> = ();
    /// `(destination count, latency)` from the configuration.
    type RestoreCtx<'a> = (usize, u64);

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.len(self.queues.len())?;
        for q in &self.queues {
            w.len(q.len())?;
            for (arrive, req) in q {
                w.u64(*arrive)?;
                req.save(w, ())?;
            }
        }
        Ok(())
    }

    fn restore<R: io::Read>(
        r: &mut Reader<R>,
        (n_dsts, latency): (usize, u64),
    ) -> io::Result<Self> {
        let n = r.len(n_dsts)?;
        if n != n_dsts {
            return Err(bad(format!("xbar has {n} queues, config implies {n_dsts}")));
        }
        let mut queues = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.len(1 << 24)?;
            let mut q = VecDeque::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                let arrive = r.u64()?;
                q.push_back((arrive, MemReq::restore(r, ())?));
            }
            queues.push(q);
        }
        Ok(Xbar { latency, queues })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::ReqToken;
    use crisp_trace::{DataClass, StreamId};

    fn req(addr: u64) -> MemReq {
        MemReq::read(
            addr,
            StreamId(0),
            DataClass::Compute,
            ReqToken { sm: 0, id: 0 },
        )
    }

    #[test]
    fn latency_gates_delivery() {
        let mut x = Xbar::new(2, 5);
        x.push(10, 1, req(0));
        assert!(x.pop_ready(14, 1).is_none());
        assert!(x.pop_ready(15, 1).is_some());
        assert!(x.pop_ready(16, 1).is_none(), "queue drained");
    }

    #[test]
    fn fifo_order_per_destination() {
        let mut x = Xbar::new(1, 0);
        x.push(0, 0, req(0x20));
        x.push(0, 0, req(0x40));
        assert_eq!(x.pop_ready(0, 0).unwrap().addr, 0x20);
        assert_eq!(x.pop_ready(0, 0).unwrap().addr, 0x40);
    }

    #[test]
    fn push_front_requeues_at_head() {
        let mut x = Xbar::new(1, 0);
        x.push(0, 0, req(0x20));
        x.push(0, 0, req(0x40));
        let r = x.pop_ready(0, 0).unwrap();
        x.push_front(0, 0, r);
        assert_eq!(x.pop_ready(0, 0).unwrap().addr, 0x20);
        assert_eq!(x.in_flight(), 1);
    }
}
