//! Opt-in counting global allocator (feature `alloc-profile`).
//!
//! [`CountingAlloc`] wraps the system allocator and, while counting is
//! [`enable`]d, attributes every allocation to the current thread's tagged
//! [`HostPhase`] (set via
//! [`host::set_alloc_phase`](crate::host::set_alloc_phase)) and a
//! power-of-two size class. Installing it is per *binary*:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: crisp_obs::alloc::CountingAlloc = crisp_obs::alloc::CountingAlloc;
//! ```
//!
//! The feature is off by default and the default allocator is untouched
//! elsewhere; binaries that do install it pay one relaxed atomic load per
//! allocation while counting is disabled. All counters are process-global
//! relaxed atomics — cheap, lock-free, and safe from any thread, including
//! inside the allocator itself (nothing here allocates).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

use crate::host::{AllocReport, HostPhase};

/// Phase tags: 0 = untagged, 1..=COUNT = `HostPhase as u8 + 1`.
const N_TAGS: usize = HostPhase::COUNT + 1;

/// Upper bounds (inclusive, bytes) of the allocation size classes.
pub const CLASS_MAX: [u64; 8] = [16, 32, 64, 128, 256, 1024, 4096, u64::MAX];
const N_CLASSES: usize = CLASS_MAX.len();

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; N_CLASSES] = [ZERO; N_CLASSES];

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVER_ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTS: [[AtomicU64; N_CLASSES]; N_TAGS] = [ZERO_ROW; N_TAGS];
static BYTES: [AtomicU64; N_TAGS] = [ZERO; N_TAGS];

thread_local! {
    // const-initialized: reading/writing it never allocates.
    static PHASE: Cell<u8> = const { Cell::new(0) };
}

/// Tag this thread's subsequent allocations with phase tag `tag`
/// (0 = untagged; `HostPhase as u8 + 1` otherwise). Prefer the typed
/// [`host::set_alloc_phase`](crate::host::set_alloc_phase).
#[inline]
pub fn set_phase(tag: u8) {
    // try_with: never panic inside allocation paths during thread teardown.
    let _ = PHASE.try_with(|p| p.set(tag));
}

/// Start counting allocations.
pub fn enable() {
    EVER_ENABLED.store(true, Relaxed);
    ENABLED.store(true, Relaxed);
}

/// Stop counting allocations (counters keep their values).
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// Zero all counters (does not change the enabled state).
pub fn reset() {
    for row in &COUNTS {
        for c in row {
            c.store(0, Relaxed);
        }
    }
    for b in &BYTES {
        b.store(0, Relaxed);
    }
}

/// Total allocations observed since the last [`reset`].
pub fn total_count() -> u64 {
    COUNTS
        .iter()
        .flat_map(|row| row.iter())
        .map(|c| c.load(Relaxed))
        .sum()
}

/// Total bytes requested since the last [`reset`].
pub fn total_bytes() -> u64 {
    BYTES.iter().map(|b| b.load(Relaxed)).sum()
}

/// Build the per-phase [`AllocReport`], or `None` if counting was never
/// enabled in this process (distinguishes "no allocations" from "not
/// measured").
pub fn report() -> Option<AllocReport> {
    if !EVER_ENABLED.load(Relaxed) {
        return None;
    }
    let tag_name = |tag: usize| -> &'static str {
        match tag {
            0 => "untagged",
            t => HostPhase::ALL[t - 1].name(),
        }
    };
    let mut by_phase = Vec::new();
    let mut sites = Vec::new();
    // Report rows in phase order, untagged last.
    let order = (1..N_TAGS).chain([0]);
    for tag in order {
        let count: u64 = COUNTS[tag].iter().map(|c| c.load(Relaxed)).sum();
        let bytes = BYTES[tag].load(Relaxed);
        if count == 0 && bytes == 0 {
            continue;
        }
        by_phase.push((tag_name(tag).to_string(), count, bytes));
        for (class, c) in COUNTS[tag].iter().enumerate() {
            let n = c.load(Relaxed);
            if n > 0 {
                sites.push((tag_name(tag).to_string(), CLASS_MAX[class], n));
            }
        }
    }
    // Count-descending; ties broken by phase name then class for stability.
    sites.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    Some(AllocReport {
        total_count: total_count(),
        total_bytes: total_bytes(),
        by_phase,
        top_sites: sites,
    })
}

#[inline]
fn class_of(size: usize) -> usize {
    let size = size as u64;
    CLASS_MAX.iter().position(|&max| size <= max).unwrap_or(0)
}

#[inline]
fn record(size: usize) {
    if !ENABLED.load(Relaxed) {
        return;
    }
    let tag = PHASE.try_with(|p| p.get()).unwrap_or(0) as usize;
    let tag = tag.min(N_TAGS - 1);
    COUNTS[tag][class_of(size)].fetch_add(1, Relaxed);
    BYTES[tag].fetch_add(size as u64, Relaxed);
}

/// The counting allocator. Forwards everything to [`System`]; counts
/// allocations (and reallocation growth) while enabled. Deallocations are
/// not tracked — the report answers "how often does the hot path hit the
/// allocator", not "what is live".
pub struct CountingAlloc;

// SAFETY: pure forwarding to `System`, which upholds the GlobalAlloc
// contract; the bookkeeping uses only lock-free atomics and a
// const-initialized thread-local, neither of which can allocate or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_are_monotonic_and_cover_u64() {
        assert!(CLASS_MAX.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(16), 0);
        assert_eq!(class_of(17), 1);
        assert_eq!(class_of(64), 2);
        assert_eq!(class_of(1 << 20), N_CLASSES - 1);
    }

    // NOTE: enable()/record() paths are exercised end-to-end by the
    // `hostprof_alloc` integration test, which is the only binary that
    // installs CountingAlloc as the global allocator. Unit tests here would
    // race with other tests' allocations in this shared-process harness.
    #[test]
    fn report_is_none_until_ever_enabled_then_structured() {
        // This test must not flip EVER_ENABLED before asserting None, and
        // other tests in this binary never enable counting.
        assert!(report().is_none());
        record(100); // disabled → not counted
        assert_eq!(total_count(), 0);
        EVER_ENABLED.store(true, Relaxed);
        COUNTS[1 + HostPhase::Execute as usize][class_of(64)].store(5, Relaxed);
        BYTES[1 + HostPhase::Execute as usize].store(320, Relaxed);
        COUNTS[0][class_of(8192)].store(1, Relaxed);
        BYTES[0].store(8192, Relaxed);
        let r = report().unwrap();
        assert_eq!(r.total_count, 6);
        assert_eq!(r.total_bytes, 8512);
        assert_eq!(r.by_phase[0], ("execute".to_string(), 5, 320));
        assert_eq!(r.by_phase[1], ("untagged".to_string(), 1, 8192));
        assert_eq!(r.top_sites[0], ("execute".to_string(), 64, 5));
        reset();
        assert_eq!(total_count(), 0);
        ENABLED.store(false, Relaxed);
        EVER_ENABLED.store(false, Relaxed);
    }
}
