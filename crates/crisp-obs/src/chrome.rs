//! Chrome Trace Event Format export.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`:
//!
//! * spans → `"ph": "X"` complete events (`ts`/`dur` in simulated cycles,
//!   nominally microseconds to the viewer),
//! * instants → `"ph": "i"` events,
//! * counter samples → `"ph": "C"` counter tracks,
//! * track naming → `"ph": "M"` `thread_name` metadata, so streams read as
//!   `stream0`, SMs as `sm3`.
//!
//! Output order is fully determined by the [`TraceLog`] (metadata sorted by
//! track, then spans in merge order, instants, counters), so two logs that
//! compare equal export byte-identical JSON.

use std::collections::BTreeSet;
use std::io::{self, Write};

use crate::span::{TraceLog, Track};

/// (pid, tid) coordinates of a track in the exported trace.
fn track_ids(t: Track) -> (u32, u32) {
    match t {
        Track::Gpu => (0, 0),
        Track::Stream(s) => (0, 1 + s),
        Track::Sm(i) => (0, 1000 + i),
    }
}

fn track_name(t: Track) -> String {
    match t {
        Track::Gpu => "gpu".to_string(),
        Track::Stream(s) => format!("stream{s}"),
        Track::Sm(i) => format!("sm{i}"),
    }
}

use crate::json::json_str;

/// Format an `f64` as a JSON number (non-finite values clamp to 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serialize `log` as a Chrome Trace Event Format JSON string.
pub fn chrome_trace_string(log: &TraceLog) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(log, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Write `log` as Chrome Trace Event Format JSON.
pub fn write_chrome_trace(log: &TraceLog, w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut sep = |w: &mut dyn Write| -> io::Result<()> {
        if first {
            first = false;
            Ok(())
        } else {
            w.write_all(b",\n")
        }
    };

    // Track-name metadata, sorted by track for stable output.
    let mut tracks: BTreeSet<Track> = BTreeSet::new();
    for s in log.spans() {
        tracks.insert(s.track);
    }
    for i in log.instants() {
        tracks.insert(i.track);
    }
    if !log.counters().is_empty() {
        tracks.insert(Track::Gpu);
    }
    for t in &tracks {
        let (pid, tid) = track_ids(*t);
        sep(w)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json_str(&track_name(*t)),
        )?;
    }

    for s in log.spans() {
        let (pid, tid) = track_ids(s.track);
        sep(w)?;
        write!(
            w,
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":{},\"cat\":{}",
            s.start,
            s.dur,
            json_str(&s.name),
            json_str(s.cat),
        )?;
        if !s.args.is_empty() {
            w.write_all(b",\"args\":{")?;
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{}:{}", json_str(k), json_str(v))?;
            }
            w.write_all(b"}")?;
        }
        w.write_all(b"}")?;
    }

    for i in log.instants() {
        let (pid, tid) = track_ids(i.track);
        sep(w)?;
        write!(
            w,
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":{},\"cat\":{}}}",
            i.at,
            json_str(&i.name),
            json_str(i.cat),
        )?;
    }

    // Counter tracks hang off the GPU process.
    for c in log.counters() {
        sep(w)?;
        write!(
            w,
            "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\"name\":{},\"args\":{{\"value\":{}}}}}",
            c.cycle,
            json_str(&c.name),
            json_num(c.value),
        )?;
    }

    w.write_all(b"]}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::TraceRecorder;

    fn sample_log() -> TraceLog {
        let mut r = TraceRecorder::new(2, true, true);
        r.kernel_span(0, "vs \"quoted\"\n", 0, 100, 4);
        r.cta_issued(0, 1, 0, 3, 5);
        r.cta_committed(0, 42);
        r.marker(0, "draw0", 0);
        r.counter(50, "l2/hit_rate", 0.5);
        r.counter(100, "bad", f64::NAN);
        r.finish(100)
    }

    #[test]
    fn export_is_valid_json() {
        let s = chrome_trace_string(&sample_log());
        json::validate(&s).expect("exporter must emit well-formed JSON");
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("thread_name"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\"value\":0"), "NaN clamps to 0");
    }

    #[test]
    fn empty_log_is_valid_json() {
        let s = chrome_trace_string(&TraceLog::default());
        json::validate(&s).expect("empty trace still valid");
    }

    #[test]
    fn equal_logs_export_identical_bytes() {
        assert_eq!(
            chrome_trace_string(&sample_log()),
            chrome_trace_string(&sample_log())
        );
    }
}
