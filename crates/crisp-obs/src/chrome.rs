//! Chrome Trace Event Format export.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) understood by
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`:
//!
//! * spans → `"ph": "X"` complete events (`ts`/`dur` in simulated cycles,
//!   nominally microseconds to the viewer),
//! * instants → `"ph": "i"` events,
//! * counter samples → `"ph": "C"` counter tracks,
//! * track naming → `"ph": "M"` `process_name` / `thread_name` metadata, so
//!   the simulated GPU reads as a named process and streams/SMs as
//!   `stream0`, `sm3` tracks in Perfetto instead of bare ids.
//!
//! Output order is fully determined by the [`TraceLog`] (metadata sorted by
//! track, then spans in merge order, instants, counters), so two logs that
//! compare equal export byte-identical JSON.
//!
//! # Dual-clock export
//!
//! [`write_chrome_trace_with_host`] additionally emits the host-clock
//! self-profile ([`HostProfile`]) as its **own named process** (pid 1,
//! "host self-profile") next to the simulated timeline (pid 0): top-level
//! spans (preflight/analyze/fast-forward/checkpoint I/O) at their real
//! wall-clock offsets, per-phase driver aggregates and per-shard
//! execute/wait totals as sequential strips, and heartbeat counter tracks.
//! Host timestamps are wall-clock **microseconds**; simulated timestamps
//! are cycles — two clock domains, two processes, one file. The plain
//! [`write_chrome_trace`] export is unchanged by host profiling, so
//! byte-identity suites keep comparing it.

use std::collections::BTreeSet;
use std::io::{self, Write};

use crate::host::{HostPhase, HostProfile};
use crate::span::{TraceLog, Track};

/// (pid, tid) coordinates of a track in the exported trace.
fn track_ids(t: Track) -> (u32, u32) {
    match t {
        Track::Gpu => (0, 0),
        Track::Stream(s) => (0, 1 + s),
        Track::Sm(i) => (0, 1000 + i),
    }
}

fn track_name(t: Track) -> String {
    match t {
        Track::Gpu => "gpu".to_string(),
        Track::Stream(s) => format!("stream{s}"),
        Track::Sm(i) => format!("sm{i}"),
    }
}

use crate::json::json_str;

/// Format an `f64` as a JSON number (non-finite values clamp to 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Comma separator between JSON array elements.
struct Sep {
    first: bool,
}

impl Sep {
    fn new() -> Self {
        Sep { first: true }
    }

    fn emit(&mut self, w: &mut impl Write) -> io::Result<()> {
        if self.first {
            self.first = false;
            Ok(())
        } else {
            w.write_all(b",\n")
        }
    }
}

/// Serialize `log` as a Chrome Trace Event Format JSON string.
pub fn chrome_trace_string(log: &TraceLog) -> String {
    let mut buf = Vec::new();
    write_chrome_trace(log, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Serialize `log` plus the host self-profile as one dual-clock trace.
pub fn chrome_trace_with_host_string(log: &TraceLog, host: &HostProfile) -> String {
    let mut buf = Vec::new();
    write_chrome_trace_with_host(log, host, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Write `log` as Chrome Trace Event Format JSON.
pub fn write_chrome_trace(log: &TraceLog, w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut sep = Sep::new();
    write_log_events(log, w, &mut sep)?;
    w.write_all(b"]}\n")
}

/// Write `log` and the host self-profile as one trace: the simulated GPU as
/// pid 0 (timestamps in cycles) and the host process as pid 1 (timestamps
/// in wall-clock microseconds). See the module docs for the layout.
pub fn write_chrome_trace_with_host(
    log: &TraceLog,
    host: &HostProfile,
    w: &mut impl Write,
) -> io::Result<()> {
    w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut sep = Sep::new();
    write_log_events(log, w, &mut sep)?;
    write_host_events(host, w, &mut sep)?;
    w.write_all(b"]}\n")
}

/// The simulated-GPU process (pid 0): metadata, spans, instants, counters.
fn write_log_events(log: &TraceLog, w: &mut impl Write, sep: &mut Sep) -> io::Result<()> {
    // Track-name metadata, sorted by track for stable output.
    let mut tracks: BTreeSet<Track> = BTreeSet::new();
    for s in log.spans() {
        tracks.insert(s.track);
    }
    for i in log.instants() {
        tracks.insert(i.track);
    }
    if !log.counters().is_empty() {
        tracks.insert(Track::Gpu);
    }
    if !tracks.is_empty() {
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"simulated gpu (ts = cycles)\"}}}}",
        )?;
    }
    for t in &tracks {
        let (pid, tid) = track_ids(*t);
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json_str(&track_name(*t)),
        )?;
    }

    for s in log.spans() {
        let (pid, tid) = track_ids(s.track);
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":{},\"cat\":{}",
            s.start,
            s.dur,
            json_str(&s.name),
            json_str(s.cat),
        )?;
        if !s.args.is_empty() {
            w.write_all(b",\"args\":{")?;
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{}:{}", json_str(k), json_str(v))?;
            }
            w.write_all(b"}")?;
        }
        w.write_all(b"}")?;
    }

    for i in log.instants() {
        let (pid, tid) = track_ids(i.track);
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":{},\"cat\":{}}}",
            i.at,
            json_str(&i.name),
            json_str(i.cat),
        )?;
    }

    // Counter tracks hang off the GPU process.
    for c in log.counters() {
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\"name\":{},\"args\":{{\"value\":{}}}}}",
            c.cycle,
            json_str(&c.name),
            json_num(c.value),
        )?;
    }
    Ok(())
}

/// The host self-profile process (pid 1). Tids: 0 = driver (top-level spans
/// at real offsets), 1 = driver phase aggregates (a sequential strip, since
/// per-cycle phases are accumulated rather than individually timestamped),
/// 2+i = shard workers (execute/wait aggregate strips).
fn write_host_events(host: &HostProfile, w: &mut impl Write, sep: &mut Sep) -> io::Result<()> {
    const PID: u32 = 1;
    let us = |ns: u64| ns / 1_000;
    sep.emit(w)?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":{PID},\"name\":\"process_name\",\"args\":{{\"name\":\"host self-profile (ts = us wall-clock)\"}}}}",
    )?;
    sep.emit(w)?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"driver\"}}}}",
    )?;
    sep.emit(w)?;
    write!(
        w,
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":1,\"name\":\"thread_name\",\"args\":{{\"name\":\"driver phases (aggregate)\"}}}}",
    )?;
    for i in 0..host.shards.len() {
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            2 + i,
            json_str(&format!("shard{i} (aggregate)")),
        )?;
    }

    // Top-level spans at their real wall-clock offsets.
    for s in &host.spans {
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":0,\"ts\":{},\"dur\":{},\"name\":{},\"cat\":\"host\"}}",
            us(s.start_ns),
            us(s.dur_ns).max(1),
            json_str(&format!("{}:{}", s.phase.name(), s.label)),
        )?;
    }

    // Per-phase driver totals as a back-to-back strip.
    let mut cursor = 0u64;
    for p in HostPhase::ALL {
        let dur = us(host.driver.get(p));
        if dur == 0 {
            continue;
        }
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":1,\"ts\":{cursor},\"dur\":{dur},\"name\":{},\"cat\":\"host\"}}",
            json_str(p.name()),
        )?;
        cursor += dur;
    }

    // Per-shard execute/wait strips.
    for (i, sh) in host.shards.iter().enumerate() {
        let tid = 2 + i;
        let (exec, wait) = (us(sh.execute_ns), us(sh.wait_ns));
        if exec > 0 {
            sep.emit(w)?;
            write!(
                w,
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":0,\"dur\":{exec},\"name\":\"execute\",\"cat\":\"host\"}}",
            )?;
        }
        if wait > 0 {
            sep.emit(w)?;
            write!(
                w,
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":{exec},\"dur\":{wait},\"name\":\"barrier-wait\",\"cat\":\"host\"}}",
            )?;
        }
    }

    // Heartbeat counter tracks at real offsets.
    for hb in &host.heartbeats {
        let ts = us(hb.wall_ns);
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"C\",\"pid\":{PID},\"ts\":{ts},\"name\":\"host/cycles_per_sec\",\"args\":{{\"value\":{}}}}}",
            json_num(hb.cycles_per_sec),
        )?;
        sep.emit(w)?;
        write!(
            w,
            "{{\"ph\":\"C\",\"pid\":{PID},\"ts\":{ts},\"name\":\"host/shard_skew\",\"args\":{{\"value\":{}}}}}",
            json_num(hb.shard_skew),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::TraceRecorder;

    fn sample_log() -> TraceLog {
        let mut r = TraceRecorder::new(2, true, true);
        r.kernel_span(0, "vs \"quoted\"\n", 0, 100, 4);
        r.cta_issued(0, 1, 0, 3, 5);
        r.cta_committed(0, 42);
        r.marker(0, "draw0", 0);
        r.counter(50, "l2/hit_rate", 0.5);
        r.counter(100, "bad", f64::NAN);
        r.finish(100)
    }

    #[test]
    fn export_is_valid_json() {
        let s = chrome_trace_string(&sample_log());
        json::validate(&s).expect("exporter must emit well-formed JSON");
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("thread_name"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("\"value\":0"), "NaN clamps to 0");
    }

    #[test]
    fn empty_log_is_valid_json() {
        let s = chrome_trace_string(&TraceLog::default());
        json::validate(&s).expect("empty trace still valid");
    }

    #[test]
    fn equal_logs_export_identical_bytes() {
        assert_eq!(
            chrome_trace_string(&sample_log()),
            chrome_trace_string(&sample_log())
        );
    }

    #[test]
    fn process_names_are_emitted() {
        let s = chrome_trace_string(&sample_log());
        assert!(s.contains("process_name"));
        assert!(s.contains("simulated gpu"));
    }

    fn sample_host_profile() -> crate::host::HostProfile {
        use crate::host::{HostPhase, HostProfiler, ShardTimes};
        let mut p = HostProfiler::new(10);
        p.set_workers(2);
        p.add(HostPhase::Dispatch, 3_000_000);
        p.add(HostPhase::Execute, 9_000_000);
        let t0 = p.elapsed_ns();
        p.span_end(
            HostPhase::Preflight,
            "validate",
            t0.saturating_sub(2_000_000),
        );
        p.merge_shard(
            0,
            ShardTimes {
                execute_ns: 8_000_000,
                wait_ns: 1_000_000,
                cycles: 100,
            },
        );
        p.merge_shard(
            1,
            ShardTimes {
                execute_ns: 5_000_000,
                wait_ns: 4_000_000,
                cycles: 100,
            },
        );
        p.heartbeat(10, 0, &[50, 50]);
        p.finish(100, 1000, None)
    }

    #[test]
    fn host_export_is_valid_json_with_named_host_process() {
        let host = sample_host_profile();
        let s = chrome_trace_with_host_string(&sample_log(), &host);
        json::validate(&s).expect("dual-clock export must be well-formed JSON");
        assert!(s.contains("host self-profile"));
        assert!(s.contains("\"driver\""));
        assert!(s.contains("shard0 (aggregate)"));
        assert!(s.contains("preflight:validate"));
        assert!(s.contains("barrier-wait"));
        assert!(s.contains("host/cycles_per_sec"));
        // Host events live on pid 1, never pid 0.
        assert!(s.contains("\"pid\":1"));
    }

    #[test]
    fn host_export_leaves_sim_process_untouched() {
        // The sim-only export must be a prefix-compatible subset: every
        // pid-0 event line identical with and without the host process.
        let plain = chrome_trace_string(&sample_log());
        let dual = chrome_trace_with_host_string(&sample_log(), &sample_host_profile());
        let sim_events = |s: &str| -> Vec<String> {
            s.trim_start_matches("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
                .trim_end()
                .trim_end_matches("]}")
                .split(",\n")
                .filter(|e| e.contains("\"pid\":0"))
                .map(|e| e.to_string())
                .collect()
        };
        assert!(!sim_events(&plain).is_empty());
        assert_eq!(sim_events(&plain), sim_events(&dual));
    }
}
