//! CSV exporters: counter time-series and registry snapshots.
//!
//! Fields that could contain commas or quotes (names, label strings) are
//! double-quote escaped per RFC 4180; numeric fields are emitted bare.

use std::io::{self, Write};

use crate::registry::{MetricValue, MetricsSnapshot};
use crate::span::TraceLog;

fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Write the counter time-series of `log` as `cycle,counter,value` rows.
pub fn write_counters_csv(log: &TraceLog, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "cycle,counter,value")?;
    for c in log.counters() {
        writeln!(w, "{},{},{}", c.cycle, field(&c.name), num(c.value))?;
    }
    Ok(())
}

/// Serialize the counter time-series as a CSV string.
pub fn counters_csv_string(log: &TraceLog) -> String {
    let mut buf = Vec::new();
    write_counters_csv(log, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Write a registry snapshot as `metric,labels,kind,value` rows
/// (histograms flatten to their count/sum/min/mean/max).
pub fn write_metrics_csv(metrics: &MetricsSnapshot, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "metric,labels,kind,value")?;
    for (name, labels, v) in metrics.iter() {
        let labels = field(&labels.to_string());
        match v {
            MetricValue::Counter(c) => {
                writeln!(w, "{},{labels},counter,{c}", field(name))?;
            }
            MetricValue::Gauge(g) => {
                writeln!(w, "{},{labels},gauge,{}", field(name), num(*g))?;
            }
            MetricValue::Histogram(h) => {
                writeln!(w, "{},{labels},hist_count,{}", field(name), h.count())?;
                writeln!(w, "{},{labels},hist_sum,{}", field(name), h.sum())?;
                writeln!(w, "{},{labels},hist_min,{}", field(name), h.min())?;
                writeln!(w, "{},{labels},hist_mean,{}", field(name), num(h.mean()))?;
                writeln!(w, "{},{labels},hist_max,{}", field(name), h.max())?;
            }
        }
    }
    Ok(())
}

/// Serialize a registry snapshot as a CSV string.
pub fn metrics_csv_string(metrics: &MetricsSnapshot) -> String {
    let mut buf = Vec::new();
    write_metrics_csv(metrics, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Labels, MetricRegistry};
    use crate::span::TraceRecorder;

    #[test]
    fn counters_csv_rows() {
        let mut r = TraceRecorder::new(1, false, true);
        r.counter(0, "a,b", 1.5);
        r.counter(10, "plain", 2.0);
        let csv = counters_csv_string(&r.finish(10));
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,counter,value");
        assert_eq!(lines[1], "0,\"a,b\",1.5");
        assert_eq!(lines[2], "10,plain,2");
    }

    #[test]
    fn metrics_csv_covers_all_kinds() {
        let mut reg = MetricRegistry::new();
        reg.counter_add("c", Labels::new().with("sm", 1), 7);
        reg.gauge_set("g", Labels::new(), 0.5);
        reg.observe("h", Labels::new(), 4);
        let csv = metrics_csv_string(&reg.snapshot());
        assert!(csv.contains("c,{sm=1},counter,7"));
        assert!(csv.contains("g,,gauge,0.5"));
        assert!(csv.contains("h,,hist_count,1"));
        assert!(csv.contains("h,,hist_sum,4"));
    }
}
