//! Host-clock self-profiling: where does the *simulator's own* wall-clock
//! time go?
//!
//! Everything else in this crate observes **simulated** time (cycles). This
//! module observes the other clock domain — host nanoseconds — so perf work
//! on the simulator itself (closing the detailed-vs-fast-forward gap) has an
//! instrument. Three pieces:
//!
//! * [`HostProfiler`] — the live accumulator the simulator drives: driver
//!   phase times ([`HostPhase`]), per-shard-worker execute/barrier-wait
//!   times, top-level spans (preflight, analyze, fast-forward, checkpoint
//!   I/O), and periodic [`Heartbeat`] samples whose rates come from the
//!   [`MetricsSnapshot::counter_delta`] diff API.
//! * [`HostProfile`] — the frozen end-of-run result surfaced through
//!   `SimResult::host_profile`: phase table, shard imbalance, cycles/s, and
//!   (when the `alloc-profile` feature is on) per-phase allocation counts.
//! * [`set_alloc_phase`] — tags the current thread's allocations with the
//!   running phase for the feature-gated counting allocator; compiles to a
//!   no-op when the feature is off.
//!
//! Host times are wall-clock and therefore *not* deterministic; nothing in
//! this module feeds back into simulated state, and the host process in the
//! Chrome Trace export is kept separate from the simulated timeline so
//! byte-identity suites can keep comparing the latter.

use std::fmt::Write as _;
use std::time::Instant;

use crate::registry::{Labels, MetricRegistry, MetricsSnapshot};

/// One phase of the simulator's own execution, on the host clock.
///
/// The first four and the last two are *top-level* phases (they happen once
/// or rarely); the middle five are *per-cycle* phases of the cycle loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HostPhase {
    /// Pre-flight trace/config validation.
    Preflight,
    /// Static trace analysis (`.analyze(..)`).
    Analyze,
    /// Functional fast-forward to the ROI marker.
    FastForward,
    /// Serial front/back of each cycle: stream advance, CTA issue, commit
    /// absorption, scheduling bookkeeping.
    Dispatch,
    /// Warp execution — SM `cycle()` calls (driver window in sharded runs).
    Execute,
    /// Shard workers blocked at the generation barrier.
    BarrierWait,
    /// Draining per-SM memory-port egress queues into the interconnect.
    PortDrain,
    /// L2 bank / DRAM channel ticking and response delivery.
    MemTick,
    /// Telemetry sampling (occupancy, composition, counters, heartbeat).
    Telemetry,
    /// Periodic + emergency checkpoint writes.
    CheckpointIo,
    /// End-of-run export: metric registry + timeline assembly.
    Export,
}

impl HostPhase {
    /// Number of phases (array sizing).
    pub const COUNT: usize = 11;

    /// Every phase, in declaration (= report) order.
    pub const ALL: [HostPhase; HostPhase::COUNT] = [
        HostPhase::Preflight,
        HostPhase::Analyze,
        HostPhase::FastForward,
        HostPhase::Dispatch,
        HostPhase::Execute,
        HostPhase::BarrierWait,
        HostPhase::PortDrain,
        HostPhase::MemTick,
        HostPhase::Telemetry,
        HostPhase::CheckpointIo,
        HostPhase::Export,
    ];

    /// Stable lower-case name (report rows, trace span names, alloc sites).
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::Preflight => "preflight",
            HostPhase::Analyze => "analyze",
            HostPhase::FastForward => "fast-forward",
            HostPhase::Dispatch => "dispatch",
            HostPhase::Execute => "execute",
            HostPhase::BarrierWait => "barrier-wait",
            HostPhase::PortDrain => "port-drain",
            HostPhase::MemTick => "mem-tick",
            HostPhase::Telemetry => "telemetry",
            HostPhase::CheckpointIo => "checkpoint-io",
            HostPhase::Export => "export",
        }
    }
}

/// Tag the current thread's subsequent allocations with `phase` for the
/// feature-gated counting allocator. A cheap thread-local write when the
/// `alloc-profile` feature is enabled; compiles to nothing when it is off.
/// The simulator only calls this when host profiling is active.
#[inline]
pub fn set_alloc_phase(phase: HostPhase) {
    #[cfg(feature = "alloc-profile")]
    crate::alloc::set_phase(phase as u8 + 1);
    #[cfg(not(feature = "alloc-profile"))]
    let _ = phase;
}

/// The counting allocator's report, when the `alloc-profile` feature is
/// compiled in *and* counting was enabled at runtime; `None` otherwise.
pub fn alloc_report() -> Option<AllocReport> {
    #[cfg(feature = "alloc-profile")]
    {
        crate::alloc::report()
    }
    #[cfg(not(feature = "alloc-profile"))]
    {
        None
    }
}

/// Nanoseconds accumulated per [`HostPhase`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    ns: [u64; HostPhase::COUNT],
}

impl PhaseTimes {
    /// Add `ns` nanoseconds to `phase`.
    #[inline]
    pub fn add(&mut self, phase: HostPhase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    /// Nanoseconds accumulated in `phase`.
    pub fn get(&self, phase: HostPhase) -> u64 {
        self.ns[phase as usize]
    }

    /// Total nanoseconds across all phases.
    pub fn total(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// Wall-clock totals for one shard worker thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTimes {
    /// Time spent cycling this shard's SMs.
    pub execute_ns: u64,
    /// Time spent blocked at the generation barrier.
    pub wait_ns: u64,
    /// Cycles this shard participated in.
    pub cycles: u64,
}

/// One top-level host span (preflight, analyze, fast-forward, checkpoint
/// write, export) with a real start offset from the profiler's origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpan {
    /// Which phase the span belongs to.
    pub phase: HostPhase,
    /// Span label (e.g. `"ckpt-30000"` for a periodic checkpoint).
    pub label: String,
    /// Nanoseconds from profiler origin to span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One periodic throughput sample taken every `heartbeat_interval` cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heartbeat {
    /// Nanoseconds from profiler origin.
    pub wall_ns: u64,
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// Instructions retired so far (all SMs).
    pub instrs: u64,
    /// Simulated cycles per host second since the previous heartbeat.
    pub cycles_per_sec: f64,
    /// Instructions per host second since the previous heartbeat.
    pub instrs_per_sec: f64,
    /// Bytes of trace instructions resident (streaming window).
    pub resident_bytes: u64,
    /// Shard load skew since the previous heartbeat: max over shards of
    /// instructions issued, divided by the mean (1.0 = perfectly balanced).
    pub shard_skew: f64,
}

/// Per-phase allocation totals from the feature-gated counting allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocReport {
    /// Total allocations observed while counting was enabled.
    pub total_count: u64,
    /// Total bytes requested.
    pub total_bytes: u64,
    /// `(phase name, allocation count, bytes)` rows, report order, only
    /// phases with activity. Allocations outside any tagged phase appear
    /// under `"untagged"`.
    pub by_phase: Vec<(String, u64, u64)>,
    /// Allocation *sites* — `(phase name, size-class upper bound in bytes,
    /// count)` — sorted by count descending. A "site" is a phase × size
    /// class cell; release builds have no reliable symbol backtraces, and
    /// the phase + size class is what an arena/SoA refactor needs anyway.
    pub top_sites: Vec<(String, u64, u64)>,
}

/// The live accumulator. Created by the simulation builder when
/// `.host_profile(true)` is set and driven by the cycle loop; frozen into a
/// [`HostProfile`] by [`HostProfiler::finish`].
#[derive(Debug)]
pub struct HostProfiler {
    origin: Instant,
    heartbeat_interval: u64,
    workers: usize,
    driver: PhaseTimes,
    shards: Vec<ShardTimes>,
    spans: Vec<HostSpan>,
    heartbeats: Vec<Heartbeat>,
    registry: MetricRegistry,
    last_hb: Option<(MetricsSnapshot, u64)>,
    prev_sm_instrs: Vec<u64>,
}

impl HostProfiler {
    /// Default heartbeat interval in simulated cycles.
    pub const DEFAULT_HEARTBEAT: u64 = 100_000;

    /// A profiler whose origin is *now*. `heartbeat_interval` is in
    /// simulated cycles; 0 disables heartbeats.
    pub fn new(heartbeat_interval: u64) -> Self {
        HostProfiler {
            origin: Instant::now(),
            heartbeat_interval,
            workers: 0,
            driver: PhaseTimes::default(),
            shards: Vec::new(),
            spans: Vec::new(),
            heartbeats: Vec::new(),
            registry: MetricRegistry::new(),
            last_hb: None,
            prev_sm_instrs: Vec::new(),
        }
    }

    /// Nanoseconds since the profiler was created.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Whether a heartbeat is due at simulated `cycle`.
    #[inline]
    pub fn heartbeat_due(&self, cycle: u64) -> bool {
        self.heartbeat_interval > 0 && cycle > 0 && cycle.is_multiple_of(self.heartbeat_interval)
    }

    /// Add `ns` to `phase` on the driver thread.
    #[inline]
    pub fn add(&mut self, phase: HostPhase, ns: u64) {
        self.driver.add(phase, ns);
    }

    /// Close a top-level span opened at `start_ns` (from [`elapsed_ns`]):
    /// accumulates its duration into `phase` and records the span for the
    /// Chrome Trace host process.
    ///
    /// [`elapsed_ns`]: HostProfiler::elapsed_ns
    pub fn span_end(&mut self, phase: HostPhase, label: &str, start_ns: u64) {
        let end = self.elapsed_ns();
        let dur = end.saturating_sub(start_ns);
        self.driver.add(phase, dur);
        self.spans.push(HostSpan {
            phase,
            label: label.to_string(),
            start_ns,
            dur_ns: dur,
        });
    }

    /// Declare the sharded-run worker count (sizes the per-shard tables and
    /// the heartbeat skew computation). Serial runs never call this.
    pub fn set_workers(&mut self, n: usize) {
        self.workers = n;
        if self.shards.len() < n {
            self.shards.resize(n, ShardTimes::default());
        }
    }

    /// Fold one segment's worth of shard-worker times into shard `i`.
    pub fn merge_shard(&mut self, i: usize, t: ShardTimes) {
        if self.shards.len() <= i {
            self.shards.resize(i + 1, ShardTimes::default());
        }
        let s = &mut self.shards[i];
        s.execute_ns += t.execute_ns;
        s.wait_ns += t.wait_ns;
        s.cycles += t.cycles;
    }

    /// Record a heartbeat at simulated `cycle`. `per_sm_instrs` is the
    /// cumulative instruction count per SM (ascending SM id); `resident` is
    /// the resident trace-window footprint in bytes. Rates are computed as
    /// counter deltas against the previous heartbeat's snapshot.
    pub fn heartbeat(&mut self, cycle: u64, resident: u64, per_sm_instrs: &[u64]) {
        let wall = self.elapsed_ns();
        let instrs: u64 = per_sm_instrs.iter().sum();
        let l = Labels::new();
        let prev = self.last_hb.take();

        // Keep cumulative counters in the internal registry and derive the
        // per-interval rates from snapshot diffs.
        let prev_c = prev
            .as_ref()
            .and_then(|(s, _)| s.counter("host/cycles", &l))
            .unwrap_or(0);
        let prev_i = prev
            .as_ref()
            .and_then(|(s, _)| s.counter("host/instrs", &l))
            .unwrap_or(0);
        self.registry
            .counter_add("host/cycles", l.clone(), cycle.saturating_sub(prev_c));
        self.registry
            .counter_add("host/instrs", l.clone(), instrs.saturating_sub(prev_i));
        let snap = self.registry.snapshot_now();
        let (d_cycles, d_instrs, d_wall) = match &prev {
            Some((base, w)) => (
                snap.counter_delta(base, "host/cycles", &l),
                snap.counter_delta(base, "host/instrs", &l),
                wall.saturating_sub(*w),
            ),
            None => (cycle, instrs, wall),
        };
        let secs = (d_wall as f64 / 1e9).max(1e-12);

        // Shard skew from per-SM instruction deltas grouped into the same
        // contiguous chunks run_parallel shards SMs by.
        let shards = self.workers.max(1);
        let chunk = per_sm_instrs.len().div_ceil(shards).max(1);
        self.prev_sm_instrs.resize(per_sm_instrs.len(), 0);
        let mut max_d = 0u64;
        let mut sum_d = 0u64;
        let mut n_shards = 0u64;
        for (s, sms) in per_sm_instrs.chunks(chunk).enumerate() {
            let d: u64 = sms
                .iter()
                .zip(&self.prev_sm_instrs[s * chunk..])
                .map(|(cur, prev)| cur.saturating_sub(*prev))
                .sum();
            max_d = max_d.max(d);
            sum_d += d;
            n_shards += 1;
        }
        self.prev_sm_instrs.copy_from_slice(per_sm_instrs);
        let mean_d = sum_d as f64 / n_shards.max(1) as f64;
        let shard_skew = if mean_d > 0.0 {
            max_d as f64 / mean_d
        } else {
            1.0
        };

        self.heartbeats.push(Heartbeat {
            wall_ns: wall,
            cycle,
            instrs,
            cycles_per_sec: d_cycles as f64 / secs,
            instrs_per_sec: d_instrs as f64 / secs,
            resident_bytes: resident,
            shard_skew,
        });
        self.last_hb = Some((snap, wall));
    }

    /// Freeze into the end-of-run [`HostProfile`].
    pub fn finish(self, cycles: u64, instrs: u64, alloc: Option<AllocReport>) -> HostProfile {
        HostProfile {
            wall_ns: self.origin.elapsed().as_nanos() as u64,
            cycles,
            instrs,
            workers: self.workers,
            heartbeat_interval: self.heartbeat_interval,
            driver: self.driver,
            shards: self.shards,
            spans: self.spans,
            heartbeats: self.heartbeats,
            alloc,
        }
    }
}

/// The frozen self-profile surfaced via `SimResult::host_profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Total wall-clock nanoseconds from profiler creation (just before
    /// pre-flight) to result assembly.
    pub wall_ns: u64,
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Instructions retired (all SMs).
    pub instrs: u64,
    /// Shard worker threads (0 for a serial run).
    pub workers: usize,
    /// Heartbeat interval in simulated cycles (0 = disabled).
    pub heartbeat_interval: u64,
    /// Driver-thread time per phase (includes the top-level spans).
    pub driver: PhaseTimes,
    /// Per-shard-worker execute / barrier-wait totals (empty for serial).
    pub shards: Vec<ShardTimes>,
    /// Top-level spans for the Chrome Trace host process.
    pub spans: Vec<HostSpan>,
    /// Periodic throughput samples.
    pub heartbeats: Vec<Heartbeat>,
    /// Per-phase allocation accounting (`alloc-profile` feature + counting
    /// enabled at runtime), else `None`.
    pub alloc: Option<AllocReport>,
}

impl HostProfile {
    /// Wall-clock seconds.
    pub fn wall_secs(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Simulated cycles per host second, whole run.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_secs().max(1e-12)
    }

    /// Instructions per host second, whole run.
    pub fn instrs_per_sec(&self) -> f64 {
        self.instrs as f64 / self.wall_secs().max(1e-12)
    }

    /// Allocations per simulated cycle (0 when accounting is off).
    pub fn allocs_per_cycle(&self) -> f64 {
        match (&self.alloc, self.cycles) {
            (Some(a), c) if c > 0 => a.total_count as f64 / c as f64,
            _ => 0.0,
        }
    }

    /// Fraction of wall-clock attributed to a phase by the *driver* thread.
    pub fn coverage(&self) -> f64 {
        self.driver.total() as f64 / self.wall_ns.max(1) as f64
    }

    /// Worst-case per-shard coverage: for each shard worker, the fraction
    /// of wall-clock accounted for by (driver serial phases + that shard's
    /// execute + barrier-wait); the minimum over shards. Falls back to
    /// [`coverage`](HostProfile::coverage) for serial runs.
    pub fn shard_coverage(&self) -> f64 {
        if self.shards.is_empty() {
            return self.coverage();
        }
        let serial = self
            .driver
            .total()
            .saturating_sub(self.driver.get(HostPhase::Execute));
        self.shards
            .iter()
            .map(|s| (serial + s.execute_ns + s.wait_ns) as f64 / self.wall_ns.max(1) as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// Shard execute-time imbalance: slowest shard / fastest shard (1.0 for
    /// serial runs or perfectly balanced shards).
    pub fn shard_imbalance(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.execute_ns).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.execute_ns).min().unwrap_or(0);
        if min == 0 {
            1.0
        } else {
            max as f64 / min as f64
        }
    }

    /// The human-readable self-profile: phase table, per-shard imbalance,
    /// heartbeat summary, allocation sites.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== CRISP self-profile (host clock) ===");
        let _ = writeln!(
            out,
            "wall {:.3} s | {} cycles | {} instrs | {}/s cycles | {}/s instrs | {} workers",
            self.wall_secs(),
            self.cycles,
            self.instrs,
            si(self.cycles_per_sec()),
            si(self.instrs_per_sec()),
            self.workers.max(1),
        );

        let _ = writeln!(out, "\n-- driver phases --");
        let _ = writeln!(out, "{:<14} {:>12} {:>7}", "phase", "time", "share");
        let total = self.driver.total();
        for p in HostPhase::ALL {
            let ns = self.driver.get(p);
            if ns == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>6.1}%",
                p.name(),
                fmt_ns(ns),
                pct(ns, total),
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>6.1}% of wall",
            "attributed",
            fmt_ns(total),
            100.0 * self.coverage(),
        );

        if !self.shards.is_empty() {
            let _ = writeln!(out, "\n-- shard workers --");
            let _ = writeln!(
                out,
                "{:<6} {:>12} {:>12} {:>7}",
                "shard", "execute", "wait", "busy"
            );
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:<6} {:>12} {:>12} {:>6.1}%",
                    i,
                    fmt_ns(s.execute_ns),
                    fmt_ns(s.wait_ns),
                    pct(s.execute_ns, s.execute_ns + s.wait_ns),
                );
            }
            let _ = writeln!(
                out,
                "imbalance (exec max/min) {:.2} | worst shard coverage {:.1}% of wall",
                self.shard_imbalance(),
                100.0 * self.shard_coverage(),
            );
        }

        if let Some(hb) = self.heartbeats.last() {
            let _ = writeln!(
                out,
                "\n-- heartbeats ({} samples, every {} cycles) --",
                self.heartbeats.len(),
                self.heartbeat_interval,
            );
            let _ = writeln!(
                out,
                "last: {}/s cycles | {}/s instrs | {} resident | skew {:.2}",
                si(hb.cycles_per_sec),
                si(hb.instrs_per_sec),
                fmt_bytes(hb.resident_bytes),
                hb.shard_skew,
            );
        }

        match &self.alloc {
            Some(a) => {
                let _ = writeln!(out, "\n-- allocations (counting allocator) --");
                let _ = writeln!(
                    out,
                    "total {} allocs, {} ({:.4} allocs/cycle)",
                    a.total_count,
                    fmt_bytes(a.total_bytes),
                    self.allocs_per_cycle(),
                );
                for (phase, count, bytes) in &a.by_phase {
                    let _ = writeln!(
                        out,
                        "{:<14} {:>10} allocs {:>12}",
                        phase,
                        count,
                        fmt_bytes(*bytes),
                    );
                }
                let _ = writeln!(out, "top sites (phase x size class):");
                for (i, (phase, class, count)) in a.top_sites.iter().take(3).enumerate() {
                    let _ = writeln!(
                        out,
                        "  {}. {} <= {} : {} allocs",
                        i + 1,
                        phase,
                        fmt_bytes(*class),
                        count,
                    );
                }
                if a.top_sites.is_empty() {
                    let _ = writeln!(out, "  (none -- hot path is allocation-free)");
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "\n-- allocations: not counted (enable the `alloc-profile` feature) --"
                );
            }
        }
        out
    }
}

/// `123456789` → `"123.5M"` — compact SI magnitude for rates.
fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Nanoseconds → human units.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bytes → human units (binary).
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_all_matches_count_and_names_are_unique() {
        assert_eq!(HostPhase::ALL.len(), HostPhase::COUNT);
        let mut names: Vec<_> = HostPhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HostPhase::COUNT);
        // Discriminants are dense 0..COUNT (PhaseTimes indexes by them).
        for (i, p) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }

    #[test]
    fn phase_times_accumulate() {
        let mut t = PhaseTimes::default();
        t.add(HostPhase::Execute, 10);
        t.add(HostPhase::Execute, 5);
        t.add(HostPhase::MemTick, 7);
        assert_eq!(t.get(HostPhase::Execute), 15);
        assert_eq!(t.total(), 22);
    }

    #[test]
    fn heartbeat_rates_come_from_snapshot_deltas() {
        let mut p = HostProfiler::new(100);
        p.set_workers(2);
        // 4 SMs → shards of 2. First heartbeat: 100 cycles, 1000 instrs.
        p.heartbeat(100, 0, &[400, 300, 200, 100]);
        // Second: +100 cycles, +400 instrs, shard0 +300 shard1 +100.
        p.heartbeat(200, 64, &[600, 400, 250, 150]);
        assert_eq!(p.heartbeats.len(), 2);
        let a = p.heartbeats[0];
        let b = p.heartbeats[1];
        assert_eq!(a.cycle, 100);
        assert_eq!(a.instrs, 1000);
        assert_eq!(b.instrs, 1400);
        assert_eq!(b.resident_bytes, 64);
        // Interval deltas: 100 cycles, 400 instrs → instrs/s = 4× cycles/s.
        assert!((b.instrs_per_sec / b.cycles_per_sec - 4.0).abs() < 1e-9);
        // Skew: shard deltas 300 vs 100, mean 200 → max/mean = 1.5.
        assert!((b.shard_skew - 1.5).abs() < 1e-9);
        // First sample covers everything since origin.
        assert!(a.cycles_per_sec > 0.0);
    }

    #[test]
    fn shard_merge_and_coverage() {
        let mut p = HostProfiler::new(0);
        assert!(!p.heartbeat_due(100));
        p.set_workers(2);
        p.add(HostPhase::Dispatch, 100);
        p.add(HostPhase::Execute, 500); // driver window, excluded from shard coverage
        p.merge_shard(
            0,
            ShardTimes {
                execute_ns: 400,
                wait_ns: 100,
                cycles: 10,
            },
        );
        p.merge_shard(
            0,
            ShardTimes {
                execute_ns: 100,
                wait_ns: 0,
                cycles: 5,
            },
        );
        p.merge_shard(
            1,
            ShardTimes {
                execute_ns: 200,
                wait_ns: 300,
                cycles: 15,
            },
        );
        let prof = p.finish(1000, 5000, None);
        assert_eq!(prof.shards[0].execute_ns, 500);
        assert_eq!(prof.shards[0].cycles, 15);
        assert!((prof.shard_imbalance() - 2.5).abs() < 1e-9);
        // Coverage denominators are real wall time; just sanity-check range.
        assert!(prof.shard_coverage() >= 0.0);
        assert!(prof.cycles_per_sec() > 0.0);
        let r = prof.report();
        assert!(r.contains("driver phases"));
        assert!(r.contains("shard workers"));
        assert!(r.contains("not counted"));
    }

    #[test]
    fn span_end_records_span_and_phase_time() {
        let mut p = HostProfiler::new(0);
        let t0 = p.elapsed_ns();
        p.span_end(HostPhase::Preflight, "validate", t0);
        assert_eq!(p.spans.len(), 1);
        assert_eq!(p.spans[0].phase, HostPhase::Preflight);
        assert_eq!(p.driver.get(HostPhase::Preflight), p.spans[0].dur_ns);
    }

    #[test]
    fn report_renders_alloc_sites() {
        let p = HostProfiler::new(0);
        let prof = p.finish(
            10,
            100,
            Some(AllocReport {
                total_count: 42,
                total_bytes: 4096,
                by_phase: vec![("execute".into(), 40, 4000), ("untagged".into(), 2, 96)],
                top_sites: vec![
                    ("execute".into(), 64, 30),
                    ("execute".into(), 256, 10),
                    ("untagged".into(), 64, 2),
                ],
            }),
        );
        let r = prof.report();
        assert!(r.contains("42 allocs"));
        assert!(r.contains("1. execute <= 64 B : 30 allocs"));
        assert!((prof.allocs_per_cycle() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(si(1_500.0), "1.5k");
        assert_eq!(si(2_000_000.0), "2.00M");
        assert_eq!(si(3_000_000_000.0), "3.00G");
        assert_eq!(si(12.0), "12");
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.5 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }
}
