//! A minimal JSON well-formedness checker.
//!
//! The workspace is dependency-free, so trace-export tests and the `profile`
//! bench bin cannot lean on serde to prove the emitted Chrome trace parses.
//! This module implements just enough of RFC 8259 to validate a document:
//! it checks structure and returns the byte offset of the first error.

/// Escape `s` for use inside a JSON string literal, appending to `out`
/// (quotes not included). Shared by the Chrome exporter and the
/// `crisp-analyze` report writer so every hand-rolled emitter in the
/// workspace escapes identically.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a complete JSON string literal, quotes included.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(s, &mut out);
    out.push('"');
    out
}

/// Validate that `s` is one well-formed JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return self.err("bad \\u escape");
                                }
                                self.i += 1;
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control char in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| -> Result<(), String> {
            if !p.peek().is_some_and(|c| c.is_ascii_digit()) {
                return p.err("expected digit");
            }
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.i += 1;
            }
            Ok(())
        };
        digits(self)?;
        if self.peek() == Some(b'.') {
            self.i += 1;
            digits(self)?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            digits(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for s in [
            "null",
            "true",
            " -12.5e+3 ",
            "\"a\\n\\u00e9\"",
            "[]",
            "{}",
            "[1, {\"a\": [false, null]}, \"x\"]",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0}]}",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn escaped_strings_validate() {
        let nasty = "quote\" slash\\ nl\n tab\t bell\u{7} é";
        let lit = json_str(nasty);
        validate(&lit).unwrap();
        assert!(lit.starts_with('"') && lit.ends_with('"'));
        assert!(lit.contains("\\u0007"));
    }

    #[test]
    fn rejects_invalid_documents() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "[1] trailing",
            "\"bad \\q escape\"",
            "1.",
            "1e",
        ] {
            assert!(validate(s).is_err(), "must reject: {s}");
        }
    }
}
