//! Observability substrate for CRISP: a unified metric registry,
//! cycle-accurate span tracing, and exporters.
//!
//! The simulator's case studies (LoD, L2 composition, warped-slicer, TAP)
//! all hinge on *attributing* cycles and cache traffic to streams, kernels,
//! and pipeline stages. This crate is the common substrate those
//! attributions flow through:
//!
//! * [`MetricRegistry`] — hierarchical counters / gauges / histograms keyed
//!   by sorted [`Labels`] (`sm`, `stream`, `kernel`, `unit`, …), frozen into
//!   an immutable [`MetricsSnapshot`] at end of run.
//! * [`TraceRecorder`] / [`TraceLog`] — a cycle-stamped span and event
//!   recorder. Spans that originate on a specific SM are buffered per SM and
//!   merged in **ascending SM-id order**, so the exported timeline is
//!   bit-identical at any worker-thread count.
//! * Exporters — [`chrome::write_chrome_trace`] (Chrome Trace Event Format
//!   JSON, loadable in Perfetto or `chrome://tracing`),
//!   [`csv::write_counters_csv`] / [`csv::write_metrics_csv`] time-series,
//!   and [`report::profile_report`], a human-readable end-of-run profile.
//! * [`json::validate`] — a minimal JSON well-formedness checker used by the
//!   `profile` bench bin and CI to validate emitted traces without external
//!   crates.
//!
//! The crate is deliberately free of dependencies (std only) and knows
//! nothing about the simulator: `crisp-sim` feeds it plain integers. That
//! keeps the recording hot path trivially cheap and lets any layer of the
//! stack (SM, LSU, memory system, GPU loop, bench bins) share one registry.
//!
//! A second clock domain lives in [`host`]: wall-clock self-profiling of
//! the simulator's *own* execution (phase attribution, shard imbalance,
//! heartbeat throughput, and — behind the off-by-default `alloc-profile`
//! feature — per-phase allocation accounting via the `alloc` module).

#[cfg(feature = "alloc-profile")]
pub mod alloc;
pub mod chrome;
pub mod csv;
pub mod host;
pub mod json;
pub mod registry;
pub mod report;
pub mod span;

pub use host::{Heartbeat, HostPhase, HostProfile, HostProfiler};
pub use registry::{Histogram, Labels, MetricRegistry, MetricValue, MetricsSnapshot};
pub use span::{CounterSample, InstantEvent, SpanEvent, TraceLog, TraceRecorder, Track};
