//! The hierarchical metric registry: counters, gauges, and histograms keyed
//! by name + sorted labels, with a deterministic (BTree-ordered) snapshot.

use std::collections::BTreeMap;
use std::fmt;

/// A sorted set of `key=value` labels qualifying a metric.
///
/// Labels are kept sorted by key, so two label sets built in different
/// orders compare equal and iterate identically — a prerequisite for
/// byte-identical exports.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// The empty label set.
    pub fn new() -> Self {
        Labels::default()
    }

    /// Add (or replace) one label. Chainable:
    /// `Labels::new().with("sm", 3).with("stream", 0)`.
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        let value = value.to_string();
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key.to_string(), value)),
        }
        self
    }

    /// Value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    /// Iterate labels in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Whether no labels are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Labels {
    /// Renders as `{k1=v1,k2=v2}` (empty string when no labels).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return Ok(());
        }
        write!(f, "{{")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A power-of-two-bucketed histogram over `u64` observations.
///
/// Bucket `i` counts values whose bit length is `i` (value 0 lands in
/// bucket 0), giving log-scaled resolution from 1 to `u64::MAX` in 65
/// buckets with O(1) observation cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[(u64::BITS - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in [0, 1]: the upper bound of the bucket
    /// containing the `q`-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 (bucket 0 holds only 0).
                return if i == 0 { 0 } else { (1u64 << i) - 1 }.min(self.max);
            }
        }
        self.max
    }
}

/// One recorded metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Distribution of `u64` observations (boxed: the bucket array would
    /// otherwise dwarf the scalar variants).
    Histogram(Box<Histogram>),
}

/// The writable registry. Collect during / after a run, then freeze with
/// [`MetricRegistry::snapshot`].
///
/// Mixing kinds under one `(name, labels)` key is a programming error and
/// panics in debug builds; release builds let the first kind win.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    metrics: BTreeMap<(String, Labels), MetricValue>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Add `v` to the counter `name{labels}` (creating it at 0).
    pub fn counter_add(&mut self, name: &str, labels: Labels, v: u64) {
        match self
            .metrics
            .entry((name.to_string(), labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            other => debug_assert!(false, "{name} is not a counter: {other:?}"),
        }
    }

    /// Set the gauge `name{labels}`.
    pub fn gauge_set(&mut self, name: &str, labels: Labels, v: f64) {
        self.metrics
            .insert((name.to_string(), labels), MetricValue::Gauge(v));
    }

    /// Record one observation into the histogram `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: Labels, v: u64) {
        match self
            .metrics
            .entry((name.to_string(), labels))
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => debug_assert!(false, "{name} is not a histogram: {other:?}"),
        }
    }

    /// Freeze into an immutable snapshot.
    pub fn snapshot(self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics,
        }
    }

    /// A point-in-time snapshot of a *live* registry (clones the current
    /// state, leaving the registry writable). Pair two of these with
    /// [`MetricsSnapshot::counter_delta`] to compute rates over an
    /// interval — the heartbeat sampler and (later) `crisp-serve` health
    /// endpoints are the intended consumers.
    pub fn snapshot_now(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self.metrics.clone(),
        }
    }
}

/// An immutable, deterministically-ordered view of a finished registry.
/// This is what [`SimResult`](../../crisp_sim/struct.SimResult.html)-level
/// consumers and exporters read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<(String, Labels), MetricValue>,
}

impl MetricsSnapshot {
    /// The counter `name{labels}`, if recorded.
    pub fn counter(&self, name: &str, labels: &Labels) -> Option<u64> {
        match self.metrics.get(&(name.to_string(), labels.clone()))? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// The gauge `name{labels}`, if recorded.
    pub fn gauge(&self, name: &str, labels: &Labels) -> Option<f64> {
        match self.metrics.get(&(name.to_string(), labels.clone()))? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// The histogram `name{labels}`, if recorded.
    pub fn histogram(&self, name: &str, labels: &Labels) -> Option<&Histogram> {
        match self.metrics.get(&(name.to_string(), labels.clone()))? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter named `name`, over all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series(name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// All `(labels, value)` entries of the metric `name`, in label order.
    pub fn series<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a Labels, &'a MetricValue)> {
        self.metrics
            .range((name.to_string(), Labels::new())..)
            .take_while(move |((n, _), _)| n == name)
            .map(|((_, l), v)| (l, v))
    }

    /// Every metric, ordered by `(name, labels)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Labels, &MetricValue)> {
        self.metrics.iter().map(|((n, l), v)| (n.as_str(), l, v))
    }

    /// Number of distinct `(name, labels)` entries.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// How much the counter `name{labels}` grew since `baseline` was taken
    /// (saturating at 0; a counter absent from either side counts as 0).
    pub fn counter_delta(&self, baseline: &MetricsSnapshot, name: &str, labels: &Labels) -> u64 {
        self.counter(name, labels)
            .unwrap_or(0)
            .saturating_sub(baseline.counter(name, labels).unwrap_or(0))
    }

    /// Every counter in `self` with its growth since `baseline`, in
    /// `(name, labels)` order. Counters that first appeared after the
    /// baseline report their full value; gauges and histograms are skipped.
    pub fn counter_deltas<'a>(
        &'a self,
        baseline: &'a MetricsSnapshot,
    ) -> impl Iterator<Item = (&'a str, &'a Labels, u64)> {
        self.iter().filter_map(move |(name, labels, v)| match v {
            MetricValue::Counter(c) => Some((
                name,
                labels,
                c.saturating_sub(baseline.counter(name, labels).unwrap_or(0)),
            )),
            _ => None,
        })
    }

    /// A plain-text listing (one `name{labels} value` line per metric) —
    /// the debugging / diffing format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, labels, v) in self.iter() {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name}{labels} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name}{labels} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name}{labels} count={} sum={} min={} mean={:.1} p95~{} max={}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.mean(),
                        h.quantile(0.95),
                        h.max(),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_dedup() {
        let a = Labels::new().with("stream", 1).with("sm", 2);
        let b = Labels::new().with("sm", 2).with("stream", 1);
        assert_eq!(a, b);
        let c = a.clone().with("sm", 9);
        assert_eq!(c.get("sm"), Some("9"));
        assert_eq!(c.get("stream"), Some("1"));
        assert_eq!(a.to_string(), "{sm=2,stream=1}");
        assert_eq!(Labels::new().to_string(), "");
    }

    #[test]
    fn counters_accumulate() {
        let mut r = MetricRegistry::new();
        let l = Labels::new().with("sm", 0);
        r.counter_add("sm/issued", l.clone(), 5);
        r.counter_add("sm/issued", l.clone(), 7);
        r.counter_add("sm/issued", Labels::new().with("sm", 1), 3);
        let s = r.snapshot();
        assert_eq!(s.counter("sm/issued", &l), Some(12));
        assert_eq!(s.counter_total("sm/issued"), 15);
        assert_eq!(s.series("sm/issued").count(), 2);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricRegistry::new();
        r.gauge_set("ipc", Labels::new(), 1.0);
        r.gauge_set("ipc", Labels::new(), 2.5);
        assert_eq!(r.snapshot().gauge("ipc", &Labels::new()), Some(2.5));
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 3);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
        assert_eq!(Histogram::default().min(), 0);
    }

    #[test]
    fn snapshot_orders_deterministically() {
        let mut a = MetricRegistry::new();
        a.counter_add("b", Labels::new(), 1);
        a.counter_add("a", Labels::new().with("x", 1), 2);
        let mut b = MetricRegistry::new();
        b.counter_add("a", Labels::new().with("x", 1), 2);
        b.counter_add("b", Labels::new(), 1);
        assert_eq!(a.snapshot().to_text(), b.snapshot().to_text());
    }

    #[test]
    fn snapshot_now_diffs_counters() {
        let mut r = MetricRegistry::new();
        let l = Labels::new().with("sm", 0);
        r.counter_add("sm/issued", l.clone(), 10);
        r.gauge_set("ipc", Labels::new(), 1.5);
        let base = r.snapshot_now();
        // The registry stays live after snapshot_now.
        r.counter_add("sm/issued", l.clone(), 7);
        r.counter_add("sm/stalls", l.clone(), 3);
        r.gauge_set("ipc", Labels::new(), 2.0);
        let now = r.snapshot_now();

        assert_eq!(now.counter_delta(&base, "sm/issued", &l), 7);
        // New counter since baseline → full value.
        assert_eq!(now.counter_delta(&base, "sm/stalls", &l), 3);
        // Absent counter → 0, never a panic.
        assert_eq!(now.counter_delta(&base, "nope", &l), 0);
        // Shrinking (shouldn't happen for counters) saturates at 0.
        assert_eq!(base.counter_delta(&now, "sm/issued", &l), 0);

        let deltas: Vec<_> = now
            .counter_deltas(&base)
            .map(|(n, _, d)| (n.to_string(), d))
            .collect();
        assert_eq!(
            deltas,
            vec![("sm/issued".to_string(), 7), ("sm/stalls".to_string(), 3)],
            "gauges are skipped, order is (name, labels)"
        );
    }

    #[test]
    fn series_does_not_leak_prefix_names() {
        let mut r = MetricRegistry::new();
        r.counter_add("sm", Labels::new(), 1);
        r.counter_add("sm/issued", Labels::new(), 2);
        let s = r.snapshot();
        assert_eq!(s.counter_total("sm"), 1);
        assert_eq!(s.counter_total("sm/issued"), 2);
    }
}
