//! Human-readable end-of-run profile report.
//!
//! The report is assembled purely from a [`MetricsSnapshot`] and a
//! [`TraceLog`], using the metric names the simulator records
//! (`sim/cycles`, `sm/instructions{sm=..}`, `sm/stall/<cause>{sm=..}`,
//! `l1/hits`, `l2/hits`, …). Sections whose inputs are absent are skipped,
//! so the report degrades gracefully when only part of the telemetry was
//! enabled.

use std::fmt::Write as _;

use crate::registry::{Labels, MetricValue, MetricsSnapshot};
use crate::span::TraceLog;

/// Stall-cause metric suffixes, in report order.
const STALL_CAUSES: &[(&str, &str)] = &[
    ("sm/stall/scoreboard", "scoreboard dep"),
    ("sm/stall/mem_pending", "memory pending"),
    ("sm/stall/mshr_full", "MSHR full"),
    ("sm/stall/pipe_busy", "exec pipe busy"),
    ("sm/stall/barrier", "barrier wait"),
];

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Counters of `name` grouped as `(label value of `key`, count)` in label
/// order, e.g. per-stream or per-SM series.
fn by_label<'a>(
    metrics: &'a MetricsSnapshot,
    name: &'a str,
    key: &'a str,
) -> impl Iterator<Item = (&'a str, u64)> {
    metrics.series(name).filter_map(move |(l, v)| match v {
        MetricValue::Counter(c) => Some((l.get(key).unwrap_or("?"), *c)),
        _ => None,
    })
}

/// Render the end-of-run profile report.
pub fn profile_report(metrics: &MetricsSnapshot, log: &TraceLog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== CRISP profile report ===");

    // --- Totals -----------------------------------------------------------
    let cycles = metrics.gauge("sim/cycles", &Labels::new()).unwrap_or(0.0);
    let instructions = metrics.counter_total("sm/instructions");
    if cycles > 0.0 {
        let _ = writeln!(
            out,
            "cycles: {cycles:.0}   instructions: {instructions}   ipc: {:.3}",
            instructions as f64 / cycles
        );
    }

    // --- Per-stream work --------------------------------------------------
    let streams: Vec<_> = by_label(metrics, "stream/instructions", "stream").collect();
    if !streams.is_empty() {
        let _ = writeln!(out, "\n-- per-stream --");
        let _ = writeln!(out, "{:<8} {:>14} {:>8}", "stream", "instructions", "share");
        for (stream, n) in &streams {
            let _ = writeln!(out, "{stream:<8} {n:>14} {:>7.1}%", pct(*n, instructions));
        }
    }

    // --- Stall causes -----------------------------------------------------
    let blocked: u64 = STALL_CAUSES
        .iter()
        .map(|(name, _)| metrics.counter_total(name))
        .sum();
    if blocked > 0 {
        let _ = writeln!(out, "\n-- stall causes ({blocked} blocked slots) --");
        for (name, label) in STALL_CAUSES {
            let n = metrics.counter_total(name);
            if n > 0 {
                let _ = writeln!(out, "{label:<16} {n:>12} {:>6.1}%", pct(n, blocked));
            }
        }
    }

    // --- Per-SM imbalance -------------------------------------------------
    let per_sm: Vec<_> = by_label(metrics, "sm/instructions", "sm").collect();
    if per_sm.len() > 1 {
        let max = per_sm.iter().map(|(_, n)| *n).max().unwrap_or(0);
        let min = per_sm.iter().map(|(_, n)| *n).min().unwrap_or(0);
        let mean = per_sm.iter().map(|(_, n)| *n).sum::<u64>() as f64 / per_sm.len() as f64;
        let _ = writeln!(
            out,
            "\n-- SM balance ({} SMs) --\ninstructions/SM: min={min} mean={mean:.0} max={max} (max/min {})",
            per_sm.len(),
            if min == 0 {
                "inf".to_string()
            } else {
                format!("{:.2}", max as f64 / min as f64)
            }
        );
    }

    // --- Cache hit rates --------------------------------------------------
    for (level, hits_name, miss_name) in [
        ("L1", "l1/hits", "l1/misses"),
        ("L2", "l2/hits", "l2/misses"),
    ] {
        let hits = metrics.counter_total(hits_name);
        let misses = metrics.counter_total(miss_name);
        if hits + misses > 0 {
            let _ = writeln!(
                out,
                "{level} accesses: {} hit rate: {:.1}%",
                hits + misses,
                pct(hits, hits + misses)
            );
        }
    }

    // --- Top kernels by duration -----------------------------------------
    let mut kernels: Vec<_> = log.spans().filter(|s| s.cat == "kernel").collect();
    if !kernels.is_empty() {
        // Stable tie-break on (start, name) keeps the listing deterministic.
        kernels.sort_by(|a, b| {
            b.dur
                .cmp(&a.dur)
                .then(a.start.cmp(&b.start))
                .then(a.name.cmp(&b.name))
        });
        let shown = kernels.len().min(10);
        let _ = writeln!(
            out,
            "\n-- top kernels by duration ({shown} of {}) --",
            kernels.len()
        );
        for k in kernels.iter().take(shown) {
            let stream = match k.track {
                crate::span::Track::Stream(s) => s.to_string(),
                _ => "?".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<24} stream{stream:<3} start={:<10} dur={}",
                k.name, k.start, k.dur
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;
    use crate::span::TraceRecorder;

    #[test]
    fn report_covers_all_sections() {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("sim/cycles", Labels::new(), 1000.0);
        for sm in 0..2u32 {
            let l = Labels::new().with("sm", sm);
            reg.counter_add("sm/instructions", l.clone(), 400 + sm as u64 * 100);
            reg.counter_add("sm/stall/scoreboard", l.clone(), 50);
            reg.counter_add("sm/stall/mshr_full", l, 10);
        }
        reg.counter_add("stream/instructions", Labels::new().with("stream", 0), 600);
        reg.counter_add("stream/instructions", Labels::new().with("stream", 1), 300);
        reg.counter_add("l2/hits", Labels::new(), 75);
        reg.counter_add("l2/misses", Labels::new(), 25);

        let mut rec = TraceRecorder::new(1, true, false);
        rec.kernel_span(0, "vs_main", 0, 800, 16);
        rec.kernel_span(1, "matmul", 100, 1000, 32);

        let report = profile_report(&reg.snapshot(), &rec.finish(1000));
        assert!(report.contains("ipc: 0.900"));
        assert!(report.contains("scoreboard dep"));
        assert!(
            report.contains("83.3%"),
            "scoreboard share of blocked slots"
        );
        assert!(report.contains("min=400 mean=450 max=500"));
        assert!(report.contains("L2 accesses: 100 hit rate: 75.0%"));
        assert!(report.contains("matmul"));
        let matmul = report.find("matmul").unwrap();
        let vs = report.find("vs_main").unwrap();
        assert!(matmul < vs, "kernels sorted by duration descending");
    }

    #[test]
    fn empty_inputs_yield_header_only() {
        let report = profile_report(&MetricsSnapshot::default(), &TraceLog::default());
        assert!(report.starts_with("=== CRISP profile report ==="));
        assert_eq!(report.lines().count(), 1);
    }
}
