//! Cycle-stamped span / event recording.
//!
//! The recorder is fed from the simulator's driving thread; events that
//! conceptually belong to one SM (CTA execution spans) are buffered in that
//! SM's private vector and only merged — in ascending SM-id order — when the
//! log is read. Together with the simulator's deterministic drain order this
//! makes the exported timeline bit-identical at any worker-thread count.

use std::collections::HashMap;

/// Where an event is drawn in the exported timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Whole-GPU track (cycle-level counters, global phases).
    Gpu,
    /// One stream's track (kernels, draws, markers).
    Stream(u32),
    /// One SM's track (CTA spans).
    Sm(u32),
}

/// A closed `[start, start+dur)` span on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Track the span belongs to.
    pub track: Track,
    /// Display name (kernel name, CTA id, …).
    pub name: String,
    /// Category tag (`kernel`, `cta`, …) for trace-viewer filtering.
    pub cat: &'static str,
    /// First cycle of the span.
    pub start: u64,
    /// Span length in cycles (0 allowed; rendered as an instant-like sliver).
    pub dur: u64,
    /// Extra `key=value` context exported into the trace `args`.
    pub args: Vec<(String, String)>,
}

/// A zero-duration event on a track (stream markers, epoch boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantEvent {
    /// Track the event belongs to.
    pub track: Track,
    /// Display name.
    pub name: String,
    /// Category tag.
    pub cat: &'static str,
    /// Cycle stamp.
    pub at: u64,
}

/// One sample of a named counter series (exported as a Perfetto counter
/// track and as CSV).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Sample cycle.
    pub cycle: u64,
    /// Counter name (e.g. `stream0/ipc`, `l2/hit_rate`).
    pub name: String,
    /// Sampled value.
    pub value: f64,
}

/// The finished, immutable event log of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Driver-thread spans (kernels, draws) in record order.
    spans: Vec<SpanEvent>,
    /// Per-SM span buffers; index = SM id.
    sm_spans: Vec<Vec<SpanEvent>>,
    /// Zero-duration events in record order.
    instants: Vec<InstantEvent>,
    /// Counter samples in record order.
    counters: Vec<CounterSample>,
}

impl TraceLog {
    /// Every span: driver-thread spans first, then each SM's buffer in
    /// ascending SM-id order. This merge order is part of the determinism
    /// contract.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter().chain(self.sm_spans.iter().flatten())
    }

    /// Zero-duration events in record order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// Counter samples in record order.
    pub fn counters(&self) -> &[CounterSample] {
        &self.counters
    }

    /// Total spans across all buffers.
    pub fn span_count(&self) -> usize {
        self.spans.len() + self.sm_spans.iter().map(Vec::len).sum::<usize>()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.span_count() == 0 && self.instants.is_empty() && self.counters.is_empty()
    }

    /// Driver-thread spans only (excluding the per-SM buffers), in record
    /// order. Used by checkpoint serialization, which must preserve the
    /// buffer structure rather than the merged view.
    pub fn driver_spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// The per-SM span buffers (index = SM id).
    pub fn sm_span_buffers(&self) -> &[Vec<SpanEvent>] {
        &self.sm_spans
    }

    /// Reassemble a log from its raw parts (checkpoint restore).
    pub fn from_parts(
        spans: Vec<SpanEvent>,
        sm_spans: Vec<Vec<SpanEvent>>,
        instants: Vec<InstantEvent>,
        counters: Vec<CounterSample>,
    ) -> Self {
        TraceLog {
            spans,
            sm_spans,
            instants,
            counters,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct OpenCta {
    sm: u32,
    stream: u32,
    cta_index: usize,
}

/// The writable recorder. Construction chooses what is recorded; when both
/// flags are off every record call is a no-op, so a disabled recorder can
/// simply not be constructed at all (the simulator holds an `Option`).
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    log: TraceLog,
    /// CTA spans currently open, keyed by the scheduler's CTA sequence
    /// number. Only keyed insert/remove — never iterated — so the HashMap
    /// cannot perturb output order.
    open_ctas: HashMap<u64, (OpenCta, u64)>,
    record_spans: bool,
    record_counters: bool,
}

impl TraceRecorder {
    /// A recorder for `n_sms` SMs. `spans` enables span/instant recording,
    /// `counters` enables counter sampling.
    pub fn new(n_sms: usize, spans: bool, counters: bool) -> Self {
        TraceRecorder {
            log: TraceLog {
                sm_spans: vec![Vec::new(); n_sms],
                ..TraceLog::default()
            },
            open_ctas: HashMap::new(),
            record_spans: spans,
            record_counters: counters,
        }
    }

    /// Whether span/instant recording is enabled.
    pub fn records_spans(&self) -> bool {
        self.record_spans
    }

    /// Whether counter sampling is enabled.
    pub fn records_counters(&self) -> bool {
        self.record_counters
    }

    /// A CTA left the GPU scheduler for SM `sm` at `now`.
    pub fn cta_issued(&mut self, seq: u64, sm: u32, stream: u32, cta_index: usize, now: u64) {
        if self.record_spans {
            self.open_ctas.insert(
                seq,
                (
                    OpenCta {
                        sm,
                        stream,
                        cta_index,
                    },
                    now,
                ),
            );
        }
    }

    /// The CTA with sequence number `seq` committed at `now`.
    pub fn cta_committed(&mut self, seq: u64, now: u64) {
        if let Some((c, start)) = self.open_ctas.remove(&seq) {
            self.log.sm_spans[c.sm as usize].push(SpanEvent {
                track: Track::Sm(c.sm),
                name: format!("cta{}", c.cta_index),
                cat: "cta",
                start,
                dur: now - start,
                args: vec![("stream".into(), c.stream.to_string())],
            });
        }
    }

    /// A kernel (or draw) ran on `stream` from `start` to `end`.
    pub fn kernel_span(&mut self, stream: u32, name: &str, start: u64, end: u64, ctas: u64) {
        if self.record_spans {
            self.log.spans.push(SpanEvent {
                track: Track::Stream(stream),
                name: name.to_string(),
                cat: "kernel",
                start,
                dur: end - start,
                args: vec![("ctas".into(), ctas.to_string())],
            });
        }
    }

    /// A stream marker (drawcall boundary, stats clear, …) at `now`.
    pub fn marker(&mut self, stream: u32, label: &str, now: u64) {
        if self.record_spans {
            self.log.instants.push(InstantEvent {
                track: Track::Stream(stream),
                name: label.to_string(),
                cat: "marker",
                at: now,
            });
        }
    }

    /// Sample a counter series.
    pub fn counter(&mut self, cycle: u64, name: impl Into<String>, value: f64) {
        if self.record_counters {
            self.log.counters.push(CounterSample {
                cycle,
                name: name.into(),
                value,
            });
        }
    }

    /// The log recorded so far (checkpoint serialization).
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Open CTA spans as `(seq, sm, stream, cta_index, start)` tuples,
    /// sorted by sequence number (checkpoint serialization).
    pub fn open_cta_entries(&self) -> Vec<(u64, u32, u32, usize, u64)> {
        let mut v: Vec<_> = self
            .open_ctas
            .iter()
            .map(|(&seq, &(c, start))| (seq, c.sm, c.stream, c.cta_index, start))
            .collect();
        v.sort_unstable_by_key(|&(seq, ..)| seq);
        v
    }

    /// Reassemble a recorder from a restored log, the open-CTA tuples from
    /// [`TraceRecorder::open_cta_entries`], and the recording flags.
    pub fn from_parts(
        log: TraceLog,
        open: Vec<(u64, u32, u32, usize, u64)>,
        record_spans: bool,
        record_counters: bool,
    ) -> Self {
        TraceRecorder {
            log,
            open_ctas: open
                .into_iter()
                .map(|(seq, sm, stream, cta_index, start)| {
                    (
                        seq,
                        (
                            OpenCta {
                                sm,
                                stream,
                                cta_index,
                            },
                            start,
                        ),
                    )
                })
                .collect(),
            record_spans,
            record_counters,
        }
    }

    /// Close the recorder at `now` (open CTA spans — possible only if the
    /// run was aborted mid-flight — are closed at `now`) and return the log.
    pub fn finish(mut self, now: u64) -> TraceLog {
        if !self.open_ctas.is_empty() {
            // Deterministic closing order: sort by sequence number.
            let mut open: Vec<_> = self.open_ctas.drain().collect();
            open.sort_unstable_by_key(|(seq, _)| *seq);
            for (seq, entry) in open {
                self.open_ctas.insert(seq, entry);
                self.cta_committed(seq, now);
            }
        }
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cta_spans_buffer_per_sm_and_merge_in_order() {
        let mut r = TraceRecorder::new(3, true, true);
        r.cta_issued(0, 2, 0, 0, 10);
        r.cta_issued(1, 0, 0, 1, 11);
        r.cta_committed(1, 20);
        r.cta_committed(0, 30);
        let log = r.finish(30);
        let spans: Vec<_> = log.spans().collect();
        // SM 0's span first despite committing later in wall order? No —
        // merge order is SM-id ascending, and SM 0 < SM 2.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].track, Track::Sm(0));
        assert_eq!(spans[0].start, 11);
        assert_eq!(spans[0].dur, 9);
        assert_eq!(spans[1].track, Track::Sm(2));
        assert_eq!(spans[1].dur, 20);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = TraceRecorder::new(2, false, false);
        r.cta_issued(0, 0, 0, 0, 1);
        r.cta_committed(0, 5);
        r.kernel_span(0, "k", 0, 10, 4);
        r.marker(0, "draw", 3);
        r.counter(0, "ipc", 1.0);
        assert!(r.finish(10).is_empty());
    }

    #[test]
    fn kernels_markers_counters_record() {
        let mut r = TraceRecorder::new(1, true, true);
        r.kernel_span(1, "vs_main", 5, 25, 8);
        r.marker(0, "draw0", 5);
        r.counter(100, "l2/hit_rate", 0.75);
        let log = r.finish(100);
        assert_eq!(log.span_count(), 1);
        assert_eq!(log.instants().len(), 1);
        assert_eq!(log.counters().len(), 1);
        assert_eq!(log.counters()[0].value, 0.75);
        assert!(!log.is_empty());
    }
}
