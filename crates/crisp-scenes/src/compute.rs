//! XR compute workloads (paper Section V-B), expressed as synthetic kernel
//! traces with the documented behavioural signatures:
//!
//! * **VIO** — visual-inertial odometry: "consists of many small kernels"
//!   (grayscale, Gaussian pyramid, FAST corner detection, undistortion,
//!   Lucas–Kanade optical flow per pyramid level). Integer-heavy stencils
//!   and gathers over camera images; small grids.
//! * **HOLO** — hologram generation: "heavily compute-bounded"; long FMA +
//!   SFU (sin/cos) chains per point, very little memory traffic, so it
//!   saturates FP units and starves of nothing else.
//! * **NN** — RITnet principal kernels at batch size 2: memory-bound
//!   convolutions plus shared-memory GEMMs ("MatMul kernels use shared
//!   memory extensively"), with low occupancy (the batch is fixed at one
//!   image per eye).

use crisp_gfx::AddressAllocator;
use crisp_trace::{
    CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, StreamId,
    StreamKind, WarpTrace, WARP_SIZE,
};

/// Base of the compute address region (clear of the graphics regions).
const COMPUTE_BASE: u64 = 0x6000_0000;

/// Scales grid sizes of the compute workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeScale {
    /// Grid-size multiplier (1.0 = default evaluation size).
    pub factor: f32,
}

impl Default for ComputeScale {
    fn default() -> Self {
        ComputeScale { factor: 1.0 }
    }
}

impl ComputeScale {
    /// A scale for quick tests.
    pub fn tiny() -> Self {
        ComputeScale { factor: 0.15 }
    }

    fn ctas(&self, base: usize) -> usize {
        ((base as f32 * self.factor) as usize).max(1)
    }
}

/// Deterministic mixing hash for gather addresses.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(b);
    x ^= x >> 31;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^ (x >> 27)
}

/// Destination of the most recent value-producing instruction. The ALU
/// blocks chain through it so every write is observed by a later read —
/// keeps the synthetic traces clean under crisp-analyze's dataflow lints
/// while preserving the instruction mix exactly.
fn last_def(w: &WarpTrace) -> Option<Reg> {
    w.iter().rev().find_map(|i| i.dst)
}

/// Destination of the most recent ALU instruction, skipping memory ops.
/// When a load lands between two ALU blocks, `last_def` points at the
/// load's register, so the first op of the new block also reads the old
/// block's tail through this — otherwise that tail is a dead write.
fn last_alu_def(w: &WarpTrace) -> Option<Reg> {
    w.iter()
        .rev()
        .filter(|i| i.mem.is_none())
        .find_map(|i| i.dst)
}

/// Emit `n` FMA-class ops with rotating destinations, each consuming the
/// previous result (one dependence chain through r10..r19).
fn fp_block(w: &mut WarpTrace, n: u32) {
    for i in 0..n {
        let prev = last_def(w).unwrap_or(Reg(2));
        let first = if i == 0 {
            last_alu_def(w).unwrap_or(Reg(2))
        } else {
            Reg(2)
        };
        w.push(Instr::alu(
            Op::FpFma,
            Reg(10 + (i % 10) as u16),
            &[first, prev],
        ));
    }
}

fn int_block(w: &mut WarpTrace, n: u32) {
    for i in 0..n {
        let prev = last_def(w).unwrap_or(Reg(2));
        w.push(Instr::alu(
            Op::IntAlu,
            Reg(24 + (i % 4) as u16),
            &[Reg(2), prev],
        ));
    }
}

fn sfu_block(w: &mut WarpTrace, n: u32) {
    for i in 0..n {
        let prev = last_def(w).unwrap_or(Reg(2));
        w.push(Instr::alu(Op::Sfu, Reg(6 + (i % 2) as u16), &[prev]));
    }
}

/// Visual-inertial odometry: a 3-level image pyramid, four CV kernels per
/// level plus setup — a dozen small kernel launches per frame.
pub fn vio(stream: StreamId, scale: ComputeScale) -> Stream {
    let mut s = Stream::new(stream, StreamKind::Compute);
    let img = COMPUTE_BASE;
    let pitch = 1024u64; // bytes per image row

    s.marker("vio:frame");
    s.launch(grayscale_kernel(img, pitch, scale.ctas(16)));
    for level in 0..3u32 {
        let lvl_ctas = scale.ctas(16 >> level);
        let lvl_img = img + level as u64 * 0x80_0000;
        s.launch(gaussian_kernel(level, lvl_img, pitch >> level, lvl_ctas));
        s.launch(fast9_kernel(level, lvl_img, pitch >> level, lvl_ctas));
        s.launch(undistort_kernel(level, lvl_img, lvl_ctas));
        s.launch(optical_flow_kernel(
            level,
            lvl_img,
            pitch >> level,
            lvl_ctas,
        ));
    }
    s.launch(reduce_kernel(img, scale.ctas(2)));
    s
}

fn stencil_warp(
    img: u64,
    pitch: u64,
    cta: usize,
    warp: usize,
    rows: u64,
    int_ops: u32,
    fp_ops: u32,
) -> WarpTrace {
    let mut w = WarpTrace::new();
    let row_base = img + (cta as u64 * 8 + warp as u64 * 2) * pitch;
    for r in 0..rows {
        // Rotate destinations so the row fetches overlap in the LSU.
        // 8 slots cover the deepest stencil (7 rows) without clobbering a
        // still-unread row register.
        w.push(Instr::load(
            Reg(2 + (r % 8) as u16),
            MemAccess::coalesced(
                Space::Global,
                DataClass::Compute,
                1,
                row_base + r * pitch,
                WARP_SIZE,
            ),
        ));
    }
    int_block(&mut w, int_ops);
    fp_block(&mut w, fp_ops);
    w.push(Instr::store(
        Reg(10),
        MemAccess::coalesced(
            Space::Global,
            DataClass::Compute,
            1,
            row_base + 0x40_0000,
            WARP_SIZE,
        ),
    ));
    w.seal();
    w
}

fn grayscale_kernel(img: u64, pitch: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|w| stencil_warp(img, pitch, c, w, 1, 8, 6))
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new("vio_grayscale", 128, 24, 0, ctav)
}

fn gaussian_kernel(level: u32, img: u64, pitch: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|w| stencil_warp(img, pitch, c, w, 5, 10, 25))
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("vio_gauss_l{level}"), 128, 28, 0, ctav)
}

fn fast9_kernel(level: u32, img: u64, pitch: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|w| stencil_warp(img, pitch, c, w, 7, 64, 4))
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("vio_fast9_l{level}"), 128, 32, 0, ctav)
}

fn undistort_kernel(level: u32, img: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        // Gather: per-lane addresses from the distortion map.
                        for g in 0..4u64 {
                            let addrs: Vec<u64> = (0..WARP_SIZE as u64)
                                .map(|l| {
                                    img + mix(c as u64 * 64 + wi as u64 * 8 + g, l) % 0x40_0000
                                })
                                .collect();
                            w.push(Instr::load(
                                Reg(2 + g as u16),
                                MemAccess::scattered(Space::Global, DataClass::Compute, 1, addrs),
                            ));
                        }
                        fp_block(&mut w, 24);
                        int_block(&mut w, 8);
                        w.push(Instr::store(
                            Reg(10),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                1,
                                img + 0x50_0000 + (c * 512 + wi * 128) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("vio_undistort_l{level}"), 128, 36, 0, ctav)
}

fn optical_flow_kernel(level: u32, img: u64, pitch: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        // Window loads from two frames. Destination slots
                        // skip r6/r7 (the SFU rotation) so no row register
                        // is clobbered before the flow math reads it.
                        const WINDOW_REGS: [u16; 8] = [2, 3, 4, 5, 20, 21, 22, 23];
                        for r in 0..4u64 {
                            for frame in 0..2u64 {
                                let base = img
                                    + frame * 0x40_0000
                                    + (c as u64 * 8 + wi as u64 * 2 + r) * pitch;
                                w.push(Instr::load(
                                    Reg(WINDOW_REGS[(r * 2 + frame) as usize]),
                                    MemAccess::coalesced(
                                        Space::Global,
                                        DataClass::Compute,
                                        1,
                                        base,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                        }
                        // Stage the window in shared memory: each warp owns
                        // a disjoint 256 B tile, so the pre-barrier stores
                        // of sibling warps never overlap.
                        for s in 0..2u16 {
                            w.push(Instr::store(
                                Reg(2 + s),
                                MemAccess::coalesced(
                                    Space::Shared,
                                    DataClass::Compute,
                                    4,
                                    (wi as u64) * 256 + s as u64 * 128,
                                    WARP_SIZE,
                                ),
                            ));
                        }
                        w.push(Instr::bar());
                        // Post-barrier: gather the neighbourhood across all
                        // four tiles (cross-warp reads are ordered by the
                        // barrier above).
                        for g in 0..4u16 {
                            w.push(Instr::load(
                                Reg(24 + g),
                                MemAccess::coalesced(
                                    Space::Shared,
                                    DataClass::Compute,
                                    4,
                                    g as u64 * 256,
                                    WARP_SIZE,
                                ),
                            ));
                        }
                        fp_block(&mut w, 60);
                        sfu_block(&mut w, 4);
                        w.push(Instr::store(
                            Reg(10),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                4,
                                img + 0x60_0000 + (c * 512 + wi * 128) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("vio_flow_l{level}"), 128, 40, 4096, ctav)
}

fn reduce_kernel(img: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..2)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        for r in 0..4u64 {
                            w.push(Instr::load(
                                Reg(2 + r as u16),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    4,
                                    img + 0x60_0000 + (c as u64 * 8 + wi as u64 * 4 + r) * 128,
                                    WARP_SIZE,
                                ),
                            ));
                        }
                        int_block(&mut w, 12);
                        w.push(Instr::bar());
                        w.push(Instr::store(
                            Reg(24),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                4,
                                img + 0x70_0000,
                                1,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new("vio_reduce", 64, 20, 1024, ctav)
}

/// Hologram generation: long sin/cos + FMA chains per output point, almost
/// no memory traffic. Saturates the FP/SFU pipes.
pub fn holo(stream: StreamId, scale: ComputeScale) -> Stream {
    let mut s = Stream::new(stream, StreamKind::Compute);
    let buf = COMPUTE_BASE + 0x1000_0000;
    s.marker("holo:frame");
    for pass in 0..2u32 {
        let ctas = scale.ctas(28);
        let ctav = (0..ctas)
            .map(|c| {
                CtaTrace::new(
                    (0..8)
                        .map(|wi| {
                            let mut w = WarpTrace::new();
                            w.push(Instr::load(
                                Reg(2),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    8,
                                    buf + (c * 4096 + wi * 512) as u64,
                                    WARP_SIZE,
                                ),
                            ));
                            // Per-point phase accumulation over the hologram
                            // plane: the compute-bound core.
                            for _ in 0..12 {
                                fp_block(&mut w, 20);
                                sfu_block(&mut w, 8);
                            }
                            w.push(Instr::store(
                                Reg(10),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    8,
                                    buf + 0x100_0000 + (c * 4096 + wi * 512) as u64,
                                    WARP_SIZE,
                                ),
                            ));
                            w.seal();
                            w
                        })
                        .collect(),
                )
            })
            .collect();
        s.launch(KernelTrace::new(
            format!("holo_phase_{pass}"),
            256,
            40,
            0,
            ctav,
        ));
    }
    // Normalisation pass.
    let ctas = scale.ctas(8);
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..4)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        w.push(Instr::load(
                            Reg(2),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                8,
                                buf + 0x100_0000 + (c * 2048 + wi * 512) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        fp_block(&mut w, 30);
                        sfu_block(&mut w, 6);
                        w.push(Instr::store(
                            Reg(10),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                4,
                                buf + 0x200_0000 + (c * 1024 + wi * 256) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    s.launch(KernelTrace::new("holo_normalize", 128, 32, 0, ctav));
    s
}

/// RITnet principal kernels at batch size 2: memory-bound convolutions and
/// shared-memory/tensor GEMMs with deliberately small grids (low occupancy
/// — "it suffers from small batch size and cannot maintain high occupancy").
pub fn nn(stream: StreamId, scale: ComputeScale) -> Stream {
    let mut s = Stream::new(stream, StreamKind::Compute);
    let act = COMPUTE_BASE + 0x2000_0000;
    let wgt = COMPUTE_BASE + 0x2800_0000;
    s.marker("nn:frame");
    // Principal kernels: conv → conv → gemm → conv → gemm.
    s.launch(conv_kernel(0, act, wgt, scale.ctas(8)));
    s.launch(conv_kernel(
        1,
        act + 0x100_0000,
        wgt + 0x20_0000,
        scale.ctas(6),
    ));
    s.launch(gemm_kernel(
        0,
        act + 0x200_0000,
        wgt + 0x40_0000,
        scale.ctas(4),
    ));
    s.launch(conv_kernel(
        2,
        act + 0x300_0000,
        wgt + 0x60_0000,
        scale.ctas(6),
    ));
    s.launch(gemm_kernel(
        1,
        act + 0x400_0000,
        wgt + 0x80_0000,
        scale.ctas(4),
    ));
    s
}

fn conv_kernel(idx: u32, act: u64, wgt: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..8)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        // Streaming activation rows across channels: large
                        // strides → distinct lines (memory-bound).
                        for ch in 0..12u64 {
                            w.push(Instr::load(
                                Reg(2 + (ch % 4) as u16),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    2,
                                    act + ch * 0x8_0000 + (c as u64 * 8 + wi as u64) * 256,
                                    WARP_SIZE,
                                ),
                            ));
                            fp_block(&mut w, 6);
                        }
                        // Weights show reuse across CTAs. Distinct
                        // destinations keep the four fetches in flight.
                        for k in 0..4u64 {
                            w.push(Instr::load(
                                Reg(2 + k as u16),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    2,
                                    wgt + k * 128,
                                    WARP_SIZE,
                                ),
                            ));
                        }
                        fp_block(&mut w, 16);
                        w.push(Instr::store(
                            Reg(10),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                2,
                                act + 0x400_0000 + (c * 2048 + wi * 256) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("nn_conv{idx}"), 256, 48, 8 << 10, ctav)
}

fn gemm_kernel(idx: u32, act: u64, wgt: u64, ctas: usize) -> KernelTrace {
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..8)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        // Tiled GEMM main loop: stage tiles in shared
                        // memory, barrier, tensor MMA, repeat. Each warp
                        // stages into its own 256 B slot of the A/B tile;
                        // the accumulator chains across k-rounds.
                        let mut acc: Option<Reg> = None;
                        for k in 0..6u64 {
                            w.push(Instr::load(
                                Reg(2),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    4,
                                    act + k * 0x2_0000 + (c as u64 * 8 + wi as u64) * 512,
                                    WARP_SIZE,
                                ),
                            ));
                            w.push(Instr::load(
                                Reg(3),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    4,
                                    wgt + k * 0x1_0000 + wi as u64 * 512,
                                    WARP_SIZE,
                                ),
                            ));
                            for s in 0..2u16 {
                                w.push(Instr::store(
                                    Reg(2 + s),
                                    MemAccess::coalesced(
                                        Space::Shared,
                                        DataClass::Compute,
                                        4,
                                        (wi as u64) * 256 + s as u64 * 128,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                            w.push(Instr::bar());
                            // Read four distinct tile fragments (other
                            // warps' slots included — the barrier ordered
                            // them).
                            for g in 0..4u16 {
                                w.push(Instr::load(
                                    Reg(4 + g),
                                    MemAccess::coalesced(
                                        Space::Shared,
                                        DataClass::Compute,
                                        4,
                                        g as u64 * 512,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                            for t in 0..8u16 {
                                let dst = Reg(30 + t % 4);
                                let second = acc.unwrap_or(Reg(5));
                                w.push(Instr::alu(Op::Tensor, dst, &[Reg(4 + t % 4), second]));
                                acc = Some(dst);
                            }
                            w.push(Instr::bar());
                        }
                        w.push(Instr::store(
                            Reg(30),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                4,
                                act + 0x500_0000 + (c * 4096 + wi * 512) as u64,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    KernelTrace::new(format!("nn_gemm{idx}"), 256, 64, 24 << 10, ctav)
}

/// Asynchronous timewarp: the MR post-process that re-projects the
/// rendered frame to the user's latest head pose ("a compute shader is
/// executed to warp the scene to reflect the user's latest position",
/// paper Section II-A). It *reads the framebuffer the graphics stream
/// wrote* — a genuine producer→consumer dependency through the L2 — and
/// writes the warped image.
///
/// `width`/`height` must match the rendered frame so the gather addresses
/// land on real framebuffer lines.
pub fn timewarp(stream: StreamId, width: u32, height: u32, scale: ComputeScale) -> Stream {
    let mut s = Stream::new(stream, StreamKind::Compute);
    let fb = AddressAllocator::FRAMEBUFFER_BASE;
    let out = fb + 0x1000_0000;
    let pixels = width as u64 * height as u64;
    let warps_needed = pixels.div_ceil(WARP_SIZE as u64 * 4); // 4 px per lane
    let ctas = (warps_needed.div_ceil(8) as usize)
        .max(1)
        .min(scale.ctas(64).max(1) * 8);
    s.marker("timewarp:frame");
    let ctav = (0..ctas)
        .map(|c| {
            CtaTrace::new(
                (0..8)
                    .map(|wi| {
                        let mut w = WarpTrace::new();
                        let warp_px = (c * 8 + wi) as u64 * WARP_SIZE as u64 * 4;
                        // Re-projection gather: each lane samples the source
                        // frame at a slightly displaced coordinate (the head
                        // rotation between render and scan-out).
                        for g in 0..4u64 {
                            let addrs: Vec<u64> = (0..WARP_SIZE as u64)
                                .map(|l| {
                                    let px = (warp_px + l * 4 + g) % pixels;
                                    let x = px % width as u64;
                                    let y = px / width as u64;
                                    // displaced source pixel, clamped
                                    let sx = (x + 3).min(width as u64 - 1);
                                    let sy = (y + 2).min(height as u64 - 1);
                                    fb + (sy * width as u64 + sx) * 4
                                })
                                .collect();
                            w.push(Instr::load(
                                Reg(2 + g as u16),
                                MemAccess::scattered(Space::Global, DataClass::Compute, 4, addrs),
                            ));
                        }
                        fp_block(&mut w, 18); // pose interpolation math
                        sfu_block(&mut w, 4);
                        w.push(Instr::store(
                            Reg(10),
                            MemAccess::coalesced(
                                Space::Global,
                                DataClass::Compute,
                                4,
                                out + warp_px * 4,
                                WARP_SIZE,
                            ),
                        ));
                        w.seal();
                        w
                    })
                    .collect(),
            )
        })
        .collect();
    s.launch(KernelTrace::new("atw_reproject", 256, 32, 0, ctav));
    s
}

/// DLSS-style neural upscaler: renders happen at a low resolution and a
/// tensor-core network super-samples the result (paper Section II). Reads
/// the framebuffer region, runs shared-memory + tensor GEMM layers, and
/// writes the upscaled image. Heavily tensor-bound — the class of work
/// async compute overlaps with FP-hungry fragment shading.
pub fn upscaler(stream: StreamId, scale: ComputeScale) -> Stream {
    let mut s = Stream::new(stream, StreamKind::Compute);
    let fb = AddressAllocator::FRAMEBUFFER_BASE;
    let out = fb + 0x2000_0000;
    s.marker("upscale:frame");
    for layer in 0..3u32 {
        let ctas = scale.ctas(12);
        let ctav = (0..ctas)
            .map(|c| {
                CtaTrace::new(
                    (0..8)
                        .map(|wi| {
                            let mut w = WarpTrace::new();
                            // Input tile from the framebuffer (or previous
                            // layer's activations).
                            let base = if layer == 0 {
                                fb
                            } else {
                                out + layer as u64 * 0x100_0000
                            };
                            for k in 0..4u64 {
                                w.push(Instr::load(
                                    Reg(2 + k as u16),
                                    MemAccess::coalesced(
                                        Space::Global,
                                        DataClass::Compute,
                                        4,
                                        base + (c as u64 * 32 + wi as u64 * 4 + k) * 512,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                            // Stage into shared memory (per-warp 256 B
                            // slot), then tensor MMAs chained through the
                            // accumulator.
                            for s in 0..2u16 {
                                w.push(Instr::store(
                                    Reg(2 + s),
                                    MemAccess::coalesced(
                                        Space::Shared,
                                        DataClass::Compute,
                                        4,
                                        (wi as u64) * 256 + s as u64 * 128,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                            w.push(Instr::bar());
                            for g in 0..4u16 {
                                w.push(Instr::load(
                                    Reg(20 + g),
                                    MemAccess::coalesced(
                                        Space::Shared,
                                        DataClass::Compute,
                                        4,
                                        g as u64 * 512,
                                        WARP_SIZE,
                                    ),
                                ));
                            }
                            let mut acc = Reg(21);
                            for t in 0..24u16 {
                                let dst = Reg(30 + t % 4);
                                w.push(Instr::alu(Op::Tensor, dst, &[Reg(20 + t % 4), acc]));
                                acc = dst;
                            }
                            w.push(Instr::bar());
                            fp_block(&mut w, 8); // activation
                            w.push(Instr::store(
                                Reg(30),
                                MemAccess::coalesced(
                                    Space::Global,
                                    DataClass::Compute,
                                    4,
                                    out + (layer + 1) as u64 * 0x100_0000
                                        + (c * 4096 + wi * 512) as u64,
                                    WARP_SIZE,
                                ),
                            ));
                            w.seal();
                            w
                        })
                        .collect(),
                )
            })
            .collect();
        s.launch(KernelTrace::new(
            format!("upscale_l{layer}"),
            256,
            56,
            16 << 10,
            ctav,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::InstrMix;

    fn mixes(s: &Stream) -> InstrMix {
        let mut m = InstrMix::default();
        for k in s.kernels() {
            let km = InstrMix::of_kernel(k);
            m.int_alu += km.int_alu;
            m.fp += km.fp;
            m.sfu += km.sfu;
            m.tensor += km.tensor;
            m.control += km.control;
            m.global_mem += km.global_mem;
            m.shared_mem += km.shared_mem;
            m.tex += km.tex;
        }
        m
    }

    #[test]
    fn vio_is_many_small_kernels() {
        let s = vio(StreamId(1), ComputeScale::default());
        assert!(s.kernel_count() >= 12, "got {}", s.kernel_count());
        for k in s.kernels() {
            assert!(
                k.grid() <= 20,
                "VIO kernels are small, {} has {}",
                k.name,
                k.grid()
            );
        }
    }

    #[test]
    fn holo_is_compute_bound() {
        let s = holo(StreamId(1), ComputeScale::default());
        let m = mixes(&s);
        let mem = m.global_mem + m.shared_mem;
        assert!(
            (m.fp + m.sfu) as f64 / mem as f64 > 30.0,
            "HOLO must be compute-dominated: fp+sfu={} mem={mem}",
            m.fp + m.sfu
        );
    }

    #[test]
    fn nn_uses_shared_memory_and_tensor_cores() {
        let s = nn(StreamId(1), ComputeScale::default());
        let m = mixes(&s);
        assert!(m.shared_mem > 0);
        assert!(m.tensor > 0);
        // Convs are memory-heavy: global accesses rival FP work.
        assert!(m.global_mem as f64 > m.fp as f64 * 0.2);
        // Low occupancy: small grids.
        for k in s.kernels() {
            assert!(k.grid() <= 8, "{} grid {}", k.name, k.grid());
        }
    }

    #[test]
    fn nn_kernels_demand_big_smem() {
        let s = nn(StreamId(1), ComputeScale::default());
        let gemm = s.kernels().find(|k| k.name.starts_with("nn_gemm")).unwrap();
        assert!(gemm.smem_per_cta >= 16 << 10);
        assert_eq!(gemm.regs_per_thread, 64);
    }

    #[test]
    fn scale_shrinks_grids() {
        let full = vio(StreamId(1), ComputeScale::default());
        let tiny = vio(StreamId(1), ComputeScale::tiny());
        assert!(tiny.instr_count() < full.instr_count());
        assert_eq!(
            tiny.kernel_count(),
            full.kernel_count(),
            "kernel count is structural"
        );
    }

    #[test]
    fn all_workloads_tag_compute_class() {
        for s in [
            vio(StreamId(1), ComputeScale::tiny()),
            holo(StreamId(1), ComputeScale::tiny()),
            nn(StreamId(1), ComputeScale::tiny()),
        ] {
            let mut f = crisp_trace::ClassFootprint::new();
            for k in s.kernels() {
                f.add_kernel(k);
            }
            assert!(f.lines(DataClass::Compute) > 0);
            assert_eq!(f.lines(DataClass::Texture), 0);
        }
    }

    #[test]
    fn timewarp_reads_the_framebuffer_region() {
        let s = timewarp(StreamId(2), 160, 90, ComputeScale::tiny());
        let mut f = crisp_trace::ClassFootprint::new();
        for k in s.kernels() {
            f.add_kernel(k);
        }
        assert!(f.lines(DataClass::Compute) > 0);
        // Every gather address must land inside the framebuffer of a
        // 160x90 frame or the warp's own output buffer.
        let fb = AddressAllocator::FRAMEBUFFER_BASE;
        let fb_end = fb + 160 * 90 * 4;
        let mut reads_fb = false;
        for k in s.kernels() {
            for cta in &k.ctas {
                for w in &cta.warps {
                    for i in w.iter() {
                        if let Some(m) = &i.mem {
                            if i.op.is_load() {
                                for &a in &m.addrs {
                                    assert!(a >= fb && a < fb_end, "gather out of fb: {a:#x}");
                                    reads_fb = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(reads_fb, "timewarp must consume the rendered frame");
    }

    #[test]
    fn upscaler_is_tensor_heavy() {
        let s = upscaler(StreamId(2), ComputeScale::default());
        let m = mixes(&s);
        assert!(
            m.tensor > m.fp,
            "tensor ops dominate: {} vs {}",
            m.tensor,
            m.fp
        );
        assert!(m.shared_mem > 0);
        assert_eq!(s.kernel_count(), 3, "three network layers");
    }

    #[test]
    fn streams_are_deterministic() {
        let a = vio(StreamId(1), ComputeScale::default());
        let b = vio(StreamId(1), ComputeScale::default());
        assert_eq!(a, b);
    }
}
