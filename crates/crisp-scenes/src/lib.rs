//! Workloads for CRISP: procedural rendering scenes matching the paper's
//! evaluated applications, XR compute workloads, and the "silicon"
//! reference model used for validation figures.
//!
//! # Rendering workloads (paper Section V-A)
//!
//! | Paper | Here ([`SceneId`]) | Character |
//! |---|---|---|
//! | Sponza (Khronos, SPL) | `SponzaKhronos` | basic shading, 1 texture/draw |
//! | Sponza PBR (Godot, SPH) | `SponzaPbr` | PBR, 8 maps/draw |
//! | Pistol (PT) | `Pistol` | one PBR object, 8 maps, plus non-PBR draws |
//! | Planets (IT) | `Planets` | instanced, layered texture, vertex-bound |
//! | Platformer (PL) | `Platformer` | many simple objects, Phong |
//! | Material testers (MT) | `MaterialTesters` | mixed materials |
//!
//! The geometry is procedural (the original scenes are licensed art), but
//! each scene reproduces the *statistics* the case studies depend on:
//! vertex reuse, instancing, texture format/count mix and shading model.
//!
//! # Compute workloads (paper Section V-B)
//!
//! [`compute::vio`] (many small CV kernels), [`compute::holo`]
//! (FP-saturating, compute-bound), [`compute::nn`] (RITnet principal
//! kernels: memory-bound convolutions + shared-memory GEMMs at batch 2),
//! plus the MR post-processing stages the paper's introduction motivates:
//! [`compute::timewarp`] (asynchronous reprojection reading the rendered
//! framebuffer) and [`compute::upscaler`] (DLSS-style tensor upscaling).
//!
//! # Silicon reference
//!
//! [`silicon`] stands in for the paper's NVIDIA hardware measurements: an
//! independent analytic estimator with deterministic measurement noise,
//! reproducing the *structure* of the validation experiments (Figures 3,
//! 6, 9) without NVIDIA silicon.

pub mod compute;
pub mod primitives;
pub mod scenes;
pub mod silicon;

pub use compute::{holo, nn, timewarp, upscaler, vio, ComputeScale};
pub use scenes::{all_scenes, Scene, SceneId};
pub use silicon::Silicon;
