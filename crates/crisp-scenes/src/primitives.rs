//! Procedural mesh primitives.

use crisp_gfx::{AddressAllocator, Mesh, Vec2, Vec3, Vertex};

/// An (n+1)×(n+1)-vertex grid plane in the XZ plane, side length `size`,
/// centred at the origin, normal +Y. High vertex reuse (each interior
/// vertex is referenced by six triangles) — the canonical batching test.
pub fn grid_plane(name: &str, n: u32, size: f32, alloc: &mut AddressAllocator) -> Mesh {
    assert!(n >= 1);
    let verts_per_side = n + 1;
    let mut vertices = Vec::with_capacity((verts_per_side * verts_per_side) as usize);
    for z in 0..verts_per_side {
        for x in 0..verts_per_side {
            let fx = x as f32 / n as f32;
            let fz = z as f32 / n as f32;
            vertices.push(Vertex {
                pos: Vec3::new((fx - 0.5) * size, 0.0, (fz - 0.5) * size),
                normal: Vec3::new(0.0, 1.0, 0.0),
                uv: Vec2::new(fx * 4.0, fz * 4.0),
                layer: 0,
            });
        }
    }
    let mut indices = Vec::new();
    for z in 0..n {
        for x in 0..n {
            let a = z * verts_per_side + x;
            let b = a + 1;
            let c = a + verts_per_side;
            let d = c + 1;
            indices.extend_from_slice(&[a, c, b, b, c, d]);
        }
    }
    Mesh::new(name, vertices, indices, alloc)
}

/// A unit axis-aligned box (24 vertices, 12 triangles).
pub fn box_mesh(name: &str, half: Vec3, alloc: &mut AddressAllocator) -> Mesh {
    let faces: [(Vec3, Vec3, Vec3); 6] = [
        (
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 1.0, 0.0),
        ),
        (
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, -1.0),
        ),
        (
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ),
    ];
    let mut vertices = Vec::with_capacity(24);
    let mut indices = Vec::with_capacity(36);
    for (normal, t, b) in faces {
        let base = vertices.len() as u32;
        for (i, (su, sv)) in [(-1.0f32, -1.0f32), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)]
            .into_iter()
            .enumerate()
        {
            let pos = Vec3::new(
                (normal.x + t.x * su + b.x * sv) * half.x,
                (normal.y + t.y * su + b.y * sv) * half.y,
                (normal.z + t.z * su + b.z * sv) * half.z,
            );
            let _ = i;
            vertices.push(Vertex {
                pos,
                normal,
                uv: Vec2::new(su * 0.5 + 0.5, sv * 0.5 + 0.5),
                layer: 0,
            });
        }
        // Both windings so one face set is visible regardless of view
        // direction conventions; backface culling removes the other.
        indices.extend_from_slice(&[base, base + 1, base + 2, base, base + 2, base + 3]);
        indices.extend_from_slice(&[base, base + 2, base + 1, base, base + 3, base + 2]);
    }
    Mesh::new(name, vertices, indices, alloc)
}

/// A UV sphere with `rings`×`sectors` quads.
pub fn uv_sphere(
    name: &str,
    rings: u32,
    sectors: u32,
    radius: f32,
    alloc: &mut AddressAllocator,
) -> Mesh {
    assert!(rings >= 2 && sectors >= 3);
    let mut vertices = Vec::new();
    for r in 0..=rings {
        let phi = std::f32::consts::PI * r as f32 / rings as f32;
        for s in 0..=sectors {
            let theta = 2.0 * std::f32::consts::PI * s as f32 / sectors as f32;
            let n = Vec3::new(phi.sin() * theta.cos(), phi.cos(), phi.sin() * theta.sin());
            vertices.push(Vertex {
                pos: n.scale(radius),
                normal: n,
                uv: Vec2::new(s as f32 / sectors as f32, r as f32 / rings as f32),
                layer: 0,
            });
        }
    }
    let stride = sectors + 1;
    let mut indices = Vec::new();
    for r in 0..rings {
        for s in 0..sectors {
            let a = r * stride + s;
            let b = a + 1;
            let c = a + stride;
            let d = c + 1;
            indices.extend_from_slice(&[a, b, c, b, d, c]);
            indices.extend_from_slice(&[a, c, b, b, c, d]);
        }
    }
    Mesh::new(name, vertices, indices, alloc)
}

/// An open cylinder along +Y.
pub fn cylinder(
    name: &str,
    sectors: u32,
    radius: f32,
    height: f32,
    alloc: &mut AddressAllocator,
) -> Mesh {
    assert!(sectors >= 3);
    let mut vertices = Vec::new();
    for y in 0..2u32 {
        for s in 0..=sectors {
            let theta = 2.0 * std::f32::consts::PI * s as f32 / sectors as f32;
            let n = Vec3::new(theta.cos(), 0.0, theta.sin());
            vertices.push(Vertex {
                pos: Vec3::new(n.x * radius, y as f32 * height, n.z * radius),
                normal: n,
                uv: Vec2::new(s as f32 / sectors as f32 * 2.0, y as f32),
                layer: 0,
            });
        }
    }
    let stride = sectors + 1;
    let mut indices = Vec::new();
    for s in 0..sectors {
        let a = s;
        let b = s + 1;
        let c = s + stride;
        let d = c + 1;
        indices.extend_from_slice(&[a, b, c, b, d, c]);
        indices.extend_from_slice(&[a, c, b, b, c, d]);
    }
    Mesh::new(name, vertices, indices, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> AddressAllocator {
        AddressAllocator::standard_layout()
    }

    #[test]
    fn grid_counts() {
        let m = grid_plane("g", 4, 10.0, &mut alloc());
        assert_eq!(m.vertices.len(), 25);
        assert_eq!(m.triangle_count(), 32);
    }

    #[test]
    fn grid_has_high_vertex_reuse() {
        let m = grid_plane("g", 10, 1.0, &mut alloc());
        assert!(m.indices.len() as f32 / m.vertices.len() as f32 > 4.0);
    }

    #[test]
    fn box_counts() {
        let m = box_mesh("b", Vec3::new(1.0, 1.0, 1.0), &mut alloc());
        assert_eq!(m.vertices.len(), 24);
        assert_eq!(m.triangle_count(), 24); // double-sided
    }

    #[test]
    fn sphere_is_on_the_sphere() {
        let m = uv_sphere("s", 8, 12, 2.0, &mut alloc());
        for v in &m.vertices {
            assert!((v.pos.length() - 2.0).abs() < 1e-4);
            assert!((v.normal.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cylinder_counts() {
        let m = cylinder("c", 12, 1.0, 3.0, &mut alloc());
        assert_eq!(m.vertices.len(), 26);
        assert_eq!(m.triangle_count(), 48);
    }

    #[test]
    fn meshes_do_not_share_buffers() {
        let mut a = alloc();
        let m1 = grid_plane("a", 4, 1.0, &mut a);
        let m2 = box_mesh("b", Vec3::new(1.0, 1.0, 1.0), &mut a);
        assert!(m2.vb_addr >= m1.ib_addr + m1.indices.len() as u64 * 4);
    }
}
