//! The six rendering workloads evaluated in the paper, built procedurally
//! with matched statistics (Section V-A).

use crisp_gfx::pipeline::{Instance, INSTANCE_STRIDE};
use crisp_gfx::{
    AddressAllocator, DrawCall, FilterMode, FragmentShader, FrameStats, Framebuffer, Mat4,
    RenderConfig, Renderer, Texture, TextureFormat, Vec3,
};
use crisp_trace::{Stream, StreamId};

use crate::primitives::{box_mesh, cylinder, grid_plane, uv_sphere};

/// The stats-clear marker label understood by `crisp-sim` (duplicated here
/// to avoid a dependency cycle; checked equal by an integration test).
fn crisp_sim_marker() -> String {
    "crisp:clear-stats".to_string()
}

/// Identifier of a rendering workload, with the paper's abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneId {
    /// Khronos Vulkan-Samples Sponza (SPL) — basic shading.
    SponzaKhronos,
    /// Godot Sponza (SPH) — PBR shading.
    SponzaPbr,
    /// Sascha Willems' PBR pistol (PT) — 8-map PBR object.
    Pistol,
    /// Khronos instancing sample (IT) — instanced asteroids, layered texture.
    Planets,
    /// Godot Platformer 3D (PL).
    Platformer,
    /// Godot Material Testers (MT).
    MaterialTesters,
}

impl SceneId {
    /// All scenes in the paper's order.
    pub const ALL: [SceneId; 6] = [
        SceneId::SponzaKhronos,
        SceneId::SponzaPbr,
        SceneId::Pistol,
        SceneId::Planets,
        SceneId::Platformer,
        SceneId::MaterialTesters,
    ];

    /// The paper's abbreviation.
    pub fn label(self) -> &'static str {
        match self {
            SceneId::SponzaKhronos => "SPL",
            SceneId::SponzaPbr => "SPH",
            SceneId::Pistol => "PT",
            SceneId::Planets => "IT",
            SceneId::Platformer => "PL",
            SceneId::MaterialTesters => "MT",
        }
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A built scene: drawcalls plus camera.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Which workload this is.
    pub id: SceneId,
    /// Recorded drawcalls.
    pub draws: Vec<DrawCall>,
    /// Combined view-projection matrix.
    pub view_proj: Mat4,
}

/// A rendered frame: the emitted graphics trace plus functional outputs.
#[derive(Debug)]
pub struct RenderedFrame {
    /// The graphics stream (markers + VS/FS kernels per drawcall).
    pub trace: Stream,
    /// Frame statistics.
    pub stats: FrameStats,
    /// The shaded framebuffer.
    pub framebuffer: Framebuffer,
}

impl Scene {
    /// Build a scene. `detail` scales tessellation: 1.0 is the default
    /// evaluation size (already scaled to simulator-friendly budgets, like
    /// the artifact's 480p tracing mode); tests use ~0.25.
    ///
    /// # Panics
    ///
    /// Panics if `detail` is not positive.
    pub fn build(id: SceneId, detail: f32) -> Scene {
        assert!(detail > 0.0, "detail must be positive");
        let mut alloc = AddressAllocator::standard_layout();
        let mut tex_alloc = AddressAllocator::new(AddressAllocator::TEXTURE_BASE);
        match id {
            SceneId::SponzaKhronos => sponza(id, detail, false, &mut alloc, &mut tex_alloc),
            SceneId::SponzaPbr => sponza(id, detail, true, &mut alloc, &mut tex_alloc),
            SceneId::Pistol => pistol(detail, &mut alloc, &mut tex_alloc),
            SceneId::Planets => planets(detail, &mut alloc, &mut tex_alloc),
            SceneId::Platformer => platformer(detail, &mut alloc, &mut tex_alloc),
            SceneId::MaterialTesters => material_testers(detail, &mut alloc, &mut tex_alloc),
        }
    }

    /// Render one frame at the given resolution, producing the graphics
    /// trace on `stream`.
    pub fn render(&self, width: u32, height: u32, lod0: bool, stream: StreamId) -> RenderedFrame {
        let mut cfg = RenderConfig::new(width, height);
        cfg.lod0 = lod0;
        cfg.stream = stream;
        let mut r = Renderer::new(cfg);
        let trace = r.render(&self.draws, &self.view_proj);
        let stats = r.stats().clone();
        RenderedFrame {
            trace,
            stats,
            framebuffer: r.into_framebuffer(),
        }
    }

    /// Render a stereo (side-by-side) frame: the left and right eyes view
    /// the scene from laterally-offset cameras and land in the left/right
    /// halves of one framebuffer — the layout an HMD compositor consumes
    /// and the input the asynchronous-timewarp workload re-projects.
    pub fn render_stereo(
        &self,
        width: u32,
        height: u32,
        lod0: bool,
        stream: StreamId,
        eye_separation: f32,
    ) -> RenderedFrame {
        let mut cfg = RenderConfig::new(width, height);
        cfg.lod0 = lod0;
        cfg.stream = stream;
        let mut r = Renderer::new(cfg);
        let mut out = Stream::new(stream, crisp_trace::StreamKind::Graphics);
        let half = width / 2;
        for (label, sign, x0) in [("left", -0.5f32, 0u32), ("right", 0.5, half)] {
            r.set_viewport(Some((x0, 0, half, height)));
            // Approximate per-eye view: shift the world laterally by the
            // half-IPD (a translation after the combined view-projection).
            let eye =
                self.view_proj
                    .mul(&Mat4::translate(Vec3::new(sign * eye_separation, 0.0, 0.0)));
            let pass = r.render(&self.draws, &eye);
            out.marker(format!("eye:{label}"));
            out.commands.extend(pass.commands);
        }
        let stats = r.stats().clone();
        RenderedFrame {
            trace: out,
            stats,
            framebuffer: r.into_framebuffer(),
        }
    }

    /// Render an animated sequence: `n_frames` frames with the camera
    /// orbiting the scene, concatenated into one stream with `frame:N`
    /// markers. Successive frames see different geometry coverage, so the
    /// traces differ — use this for steady-state and frame-rate studies.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    pub fn render_sequence(
        &self,
        width: u32,
        height: u32,
        lod0: bool,
        stream: StreamId,
        n_frames: usize,
    ) -> (Stream, Vec<FrameStats>) {
        assert!(n_frames > 0, "need at least one frame");
        let mut out = Stream::new(stream, crisp_trace::StreamKind::Graphics);
        let mut stats = Vec::with_capacity(n_frames);
        for f in 0..n_frames {
            // Orbit: rotate the world a few degrees per frame.
            let angle = f as f32 * 0.06;
            let vp = self.view_proj.mul(&Mat4::rotate_y(angle));
            let mut cfg = RenderConfig::new(width, height);
            cfg.lod0 = lod0;
            cfg.stream = stream;
            let mut r = Renderer::new(cfg);
            let frame = r.render(&self.draws, &vp);
            out.marker(format!("frame:{f}"));
            out.commands.extend(frame.commands);
            stats.push(r.stats().clone());
        }
        (out, stats)
    }

    /// Render two identical frames into one stream, separated by the
    /// simulator's stats-clear marker: statistics collected after the
    /// marker reflect steady-state (warm-cache) behaviour, the condition
    /// hardware profilers measure on a running application.
    pub fn render_warmed(
        &self,
        width: u32,
        height: u32,
        lod0: bool,
        stream: StreamId,
    ) -> RenderedFrame {
        let mut f = self.render(width, height, lod0, stream);
        let frame1 = f.trace.commands.clone();
        f.trace.marker(crisp_sim_marker());
        f.trace.commands.extend(frame1);
        f
    }

    /// Total triangles over all drawcalls and instances.
    pub fn triangles(&self) -> u64 {
        self.draws
            .iter()
            .map(|d| d.mesh.triangle_count() as u64 * d.instances.len() as u64)
            .sum()
    }
}

/// Convenience: build every scene at `detail`.
pub fn all_scenes(detail: f32) -> Vec<Scene> {
    SceneId::ALL
        .iter()
        .map(|&id| Scene::build(id, detail))
        .collect()
}

fn dim(base: u32, detail: f32, min: u32) -> u32 {
    ((base as f32 * detail) as u32).max(min)
}

/// The 8-map PBR material set the Pistol scene binds (paper Section VI-B).
fn pbr_maps(size: u32, tex_alloc: &mut AddressAllocator) -> Vec<Texture> {
    // Environment maps (irradiance, prefilter) blend across roughness mip
    // levels and sample trilinearly; surface maps are bilinear.
    let specs: [(&str, TextureFormat, FilterMode); 8] = [
        ("irradiance", TextureFormat::RgbaF16, FilterMode::Trilinear),
        ("brdf_lut", TextureFormat::Rg8, FilterMode::Bilinear),
        ("albedo", TextureFormat::Rgba8, FilterMode::Bilinear),
        ("normal", TextureFormat::Rgba8, FilterMode::Bilinear),
        ("prefilter", TextureFormat::RgbaF16, FilterMode::Trilinear),
        ("ao", TextureFormat::R8, FilterMode::Bilinear),
        ("metallic", TextureFormat::R8, FilterMode::Bilinear),
        ("roughness", TextureFormat::R8, FilterMode::Bilinear),
    ];
    specs
        .iter()
        .map(|(n, f, filter)| {
            let t = Texture::new(*n, size, size, 1, *f, *filter, 0);
            let base = tex_alloc.alloc(t.size_bytes(), 256);
            Texture::new(*n, size, size, 1, *f, *filter, base)
        })
        .collect()
}

fn basic_map(name: &str, size: u32, tex_alloc: &mut AddressAllocator) -> Vec<Texture> {
    let probe = Texture::new(
        name,
        size,
        size,
        1,
        TextureFormat::Rgba8,
        FilterMode::Bilinear,
        0,
    );
    let base = tex_alloc.alloc(probe.size_bytes(), 256);
    vec![Texture::new(
        name,
        size,
        size,
        1,
        TextureFormat::Rgba8,
        FilterMode::Bilinear,
        base,
    )]
}

fn camera(eye: Vec3, target: Vec3, fov: f32) -> Mat4 {
    let proj = Mat4::perspective(fov, 16.0 / 9.0, 0.1, 300.0);
    let view = Mat4::look_at(eye, target, Vec3::new(0.0, 1.0, 0.0));
    proj.mul(&view)
}

/// Both Sponza variants share the atrium geometry; they differ in shader
/// ("The Godot version uses PBR, whereas the Khronos version employs a
/// simpler shader").
fn sponza(
    id: SceneId,
    detail: f32,
    pbr: bool,
    alloc: &mut AddressAllocator,
    tex_alloc: &mut AddressAllocator,
) -> Scene {
    let mut draws = Vec::new();
    let fs = if pbr {
        FragmentShader::pbr()
    } else {
        FragmentShader::basic_textured()
    };
    let mat = |tex_alloc: &mut AddressAllocator, name: &str| {
        if pbr {
            pbr_maps(256, tex_alloc)
        } else {
            basic_map(name, 512, tex_alloc)
        }
    };

    // Atrium floor.
    let floor = grid_plane("floor", dim(48, detail, 4), 40.0, alloc);
    draws.push(DrawCall::simple(
        "floor",
        floor,
        mat(tex_alloc, "floor_tex"),
        fs,
        Mat4::identity(),
    ));

    // Two colonnades of columns.
    let col_tex = mat(tex_alloc, "column_tex");
    for i in 0..dim(10, detail, 2) {
        let m = cylinder(&format!("col{i}"), dim(20, detail, 6), 0.8, 7.0, alloc);
        let x = if i % 2 == 0 { -8.0 } else { 8.0 };
        let z = (i / 2) as f32 * 7.0 - 14.0;
        draws.push(DrawCall::simple(
            format!("column{i}"),
            m,
            col_tex.clone(),
            fs,
            Mat4::translate(Vec3::new(x, 0.0, z)),
        ));
    }

    // Walls (thin boxes) and arches.
    let wall_tex = mat(tex_alloc, "wall_tex");
    for (i, (pos, half)) in [
        (Vec3::new(-14.0, 4.0, 0.0), Vec3::new(0.4, 5.0, 20.0)),
        (Vec3::new(14.0, 4.0, 0.0), Vec3::new(0.4, 5.0, 20.0)),
        (Vec3::new(0.0, 4.0, -20.0), Vec3::new(14.0, 5.0, 0.4)),
    ]
    .into_iter()
    .enumerate()
    {
        let m = box_mesh(&format!("wall{i}"), half, alloc);
        draws.push(DrawCall::simple(
            format!("wall{i}"),
            m,
            wall_tex.clone(),
            fs,
            Mat4::translate(pos),
        ));
    }

    // Drapes: the curved high-poly detail geometry.
    let drape_tex = mat(tex_alloc, "drape_tex");
    for i in 0..dim(4, detail, 1) {
        let m = uv_sphere(
            &format!("drape{i}"),
            dim(16, detail, 4),
            dim(20, detail, 6),
            1.6,
            alloc,
        );
        draws.push(DrawCall::simple(
            format!("drape{i}"),
            m,
            drape_tex.clone(),
            fs,
            Mat4::translate(Vec3::new(i as f32 * 5.0 - 7.5, 5.5, -6.0)),
        ));
    }

    Scene {
        id,
        draws,
        view_proj: camera(Vec3::new(0.0, 4.5, 18.0), Vec3::new(0.0, 3.0, 0.0), 1.1),
    }
}

/// "An antique metallic pistol is rendered using PBR, and eight maps are
/// referenced as textures." Includes non-PBR backdrop draws (the paper
/// notes the workload "includes several draws that are not using PBR").
fn pistol(detail: f32, alloc: &mut AddressAllocator, tex_alloc: &mut AddressAllocator) -> Scene {
    let maps = pbr_maps(512, tex_alloc);
    let mut draws = Vec::new();

    // Backdrop (non-PBR draws).
    let bg = grid_plane("backdrop", dim(8, detail, 2), 30.0, alloc);
    draws.push(DrawCall::simple(
        "backdrop",
        bg,
        basic_map("bg_tex", 256, tex_alloc),
        FragmentShader::basic_textured(),
        Mat4::translate(Vec3::new(0.0, -1.5, 0.0)),
    ));

    // The pistol: body, barrel, grip — high-detail PBR geometry filling
    // much of the screen.
    let body = uv_sphere("body", dim(40, detail, 8), dim(56, detail, 12), 1.4, alloc);
    draws.push(DrawCall::simple(
        "pt_body",
        body,
        maps.clone(),
        FragmentShader::pbr(),
        Mat4::scale(Vec3::new(1.6, 0.7, 0.7)),
    ));
    let barrel = cylinder("barrel", dim(40, detail, 8), 0.35, 2.6, alloc);
    draws.push(DrawCall::simple(
        "pt_barrel",
        barrel,
        maps.clone(),
        FragmentShader::pbr(),
        Mat4::translate(Vec3::new(0.9, 0.1, 0.0)).mul(&Mat4::rotate_x(std::f32::consts::FRAC_PI_2)),
    ));
    let grip = box_mesh("grip", Vec3::new(0.35, 0.9, 0.25), alloc);
    draws.push(DrawCall::simple(
        "pt_grip",
        grip,
        maps,
        FragmentShader::pbr(),
        Mat4::translate(Vec3::new(-0.9, -1.0, 0.0)),
    ));

    Scene {
        id: SceneId::Pistol,
        draws,
        view_proj: camera(Vec3::new(0.0, 0.6, 4.2), Vec3::new(0.0, -0.1, 0.0), 0.9),
    }
}

/// The instancing sample: "each asteroid in the image is one instance of
/// the object. The texture used for the object is a 3D texture with
/// multiple layers ... An index in the vertex attribute describes the
/// layer." Common vertex attributes show temporal locality; per-instance
/// data streams.
fn planets(detail: f32, alloc: &mut AddressAllocator, tex_alloc: &mut AddressAllocator) -> Scene {
    // Layered texture for the asteroids.
    let probe = Texture::new(
        "rock",
        128,
        128,
        8,
        TextureFormat::Rgba8,
        FilterMode::Bilinear,
        0,
    );
    let base = tex_alloc.alloc(probe.size_bytes(), 256);
    let rock = Texture::new(
        "rock",
        128,
        128,
        8,
        TextureFormat::Rgba8,
        FilterMode::Bilinear,
        base,
    );

    let mut draws = Vec::new();

    // The central planet.
    let planet = uv_sphere(
        "planet",
        dim(28, detail, 8),
        dim(36, detail, 10),
        5.0,
        alloc,
    );
    draws.push(DrawCall::simple(
        "planet",
        planet,
        basic_map("planet_tex", 512, tex_alloc),
        FragmentShader::phong(),
        Mat4::identity(),
    ));

    // The asteroid ring: one mesh, many instances, far enough away to be
    // vertex-bound ("IT is vertex-bounded, and only limited fragments are
    // generated for each batch of vertices").
    let n_inst = ((160.0 * detail * detail) as usize).max(8);
    let rock_mesh = uv_sphere("rock", dim(14, detail, 4), dim(18, detail, 6), 0.45, alloc);
    let instance_buffer = alloc.alloc(n_inst as u64 * INSTANCE_STRIDE, 256);
    let instances: Vec<Instance> = (0..n_inst)
        .map(|i| {
            let a = i as f32 * 2.399963; // golden-angle spread
            let r = 9.0 + 4.0 * ((i * 37 % 100) as f32 / 100.0);
            Instance {
                transform: Mat4::translate(Vec3::new(
                    a.cos() * r,
                    ((i * 13 % 17) as f32 / 17.0 - 0.5) * 2.5,
                    a.sin() * r,
                )),
                layer: (i % 8) as u32,
            }
        })
        .collect();
    let mut d = DrawCall::simple(
        "asteroids",
        rock_mesh,
        vec![rock],
        FragmentShader::basic_textured(),
        Mat4::identity(),
    );
    d.instances = instances;
    d.instance_buffer = instance_buffer;
    draws.push(d);

    Scene {
        id: SceneId::Planets,
        draws,
        view_proj: camera(Vec3::new(0.0, 8.0, 26.0), Vec3::ZERO, 0.9),
    }
}

/// Godot Platformer 3D: many simple Phong-shaded objects.
fn platformer(
    detail: f32,
    alloc: &mut AddressAllocator,
    tex_alloc: &mut AddressAllocator,
) -> Scene {
    let mut draws = Vec::new();
    let ground = grid_plane("ground", dim(32, detail, 4), 60.0, alloc);
    draws.push(DrawCall::simple(
        "ground",
        ground,
        basic_map("ground_tex", 512, tex_alloc),
        FragmentShader::phong(),
        Mat4::identity(),
    ));
    let block_tex = basic_map("block_tex", 256, tex_alloc);
    for i in 0..dim(24, detail, 4) {
        let m = box_mesh(&format!("blk{i}"), Vec3::new(1.0, 0.5, 1.0), alloc);
        let x = ((i * 29) % 40) as f32 - 20.0;
        let z = ((i * 17) % 36) as f32 - 18.0;
        let y = ((i * 7) % 5) as f32 * 0.9 + 0.5;
        draws.push(DrawCall::simple(
            format!("block{i}"),
            m,
            block_tex.clone(),
            FragmentShader::phong(),
            Mat4::translate(Vec3::new(x, y, z)),
        ));
    }
    // The player character.
    let player = uv_sphere("player", dim(12, detail, 4), dim(16, detail, 6), 0.8, alloc);
    draws.push(DrawCall::simple(
        "player",
        player,
        basic_map("player_tex", 128, tex_alloc),
        FragmentShader::phong(),
        Mat4::translate(Vec3::new(0.0, 1.2, 4.0)),
    ));
    Scene {
        id: SceneId::Platformer,
        draws,
        view_proj: camera(Vec3::new(0.0, 8.0, 22.0), Vec3::new(0.0, 1.0, 0.0), 1.0),
    }
}

/// Godot Material Testers: a grid of spheres with mixed material systems.
fn material_testers(
    detail: f32,
    alloc: &mut AddressAllocator,
    tex_alloc: &mut AddressAllocator,
) -> Scene {
    let mut draws = Vec::new();
    let pbr = pbr_maps(256, tex_alloc);
    let phong_tex = basic_map("mt_phong", 256, tex_alloc);
    let basic_tex = basic_map("mt_basic", 256, tex_alloc);
    for i in 0..9u32 {
        let m = uv_sphere(
            &format!("mt{i}"),
            dim(22, detail, 6),
            dim(30, detail, 8),
            1.0,
            alloc,
        );
        let x = (i % 3) as f32 * 2.6 - 2.6;
        let y = (i / 3) as f32 * 2.6 - 2.6;
        let model = Mat4::translate(Vec3::new(x, y, 0.0));
        let d = match i % 3 {
            0 => DrawCall::simple(
                format!("mt_pbr{i}"),
                m,
                pbr.clone(),
                FragmentShader::pbr(),
                model,
            ),
            1 => DrawCall::simple(
                format!("mt_phong{i}"),
                m,
                phong_tex.clone(),
                FragmentShader::phong(),
                model,
            ),
            _ => DrawCall::simple(
                format!("mt_basic{i}"),
                m,
                basic_tex.clone(),
                FragmentShader::basic_textured(),
                model,
            ),
        };
        draws.push(d);
    }
    Scene {
        id: SceneId::MaterialTesters,
        draws,
        view_proj: camera(Vec3::new(0.0, 0.0, 9.0), Vec3::ZERO, 0.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::DataClass;

    #[test]
    fn all_scenes_build_and_render_tiny() {
        for scene in all_scenes(0.2) {
            let f = scene.render(96, 54, false, StreamId(0));
            assert!(f.stats.vs_invocations() > 0, "{}: no vertices", scene.id);
            assert!(f.stats.fragments() > 0, "{}: no fragments", scene.id);
            assert!(f.trace.kernel_count() >= 2, "{}: too few kernels", scene.id);
            assert!(f.framebuffer.coverage() > 0.05, "{}: blank frame", scene.id);
        }
    }

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<_> = SceneId::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["SPL", "SPH", "PT", "IT", "PL", "MT"]);
    }

    #[test]
    fn sponza_variants_differ_only_in_shading() {
        let spl = Scene::build(SceneId::SponzaKhronos, 0.2);
        let sph = Scene::build(SceneId::SponzaPbr, 0.2);
        assert_eq!(spl.draws.len(), sph.draws.len());
        assert_eq!(spl.triangles(), sph.triangles());
        assert!(spl.draws.iter().all(|d| d.fs.map_slots == 1));
        assert!(sph.draws.iter().all(|d| d.fs.map_slots == 8));
    }

    #[test]
    fn pistol_mixes_pbr_and_basic_draws() {
        let pt = Scene::build(SceneId::Pistol, 0.2);
        let pbr_draws = pt.draws.iter().filter(|d| d.fs.map_slots == 8).count();
        let basic_draws = pt.draws.iter().filter(|d| d.fs.map_slots == 1).count();
        assert!(pbr_draws >= 3);
        assert!(basic_draws >= 1, "several draws are not using PBR");
    }

    #[test]
    fn planets_is_instanced_and_vertex_heavy() {
        let it = Scene::build(SceneId::Planets, 0.5);
        let inst_draw = it
            .draws
            .iter()
            .find(|d| d.instances.len() > 1)
            .expect("instanced draw");
        assert!(inst_draw.instances.len() >= 8);
        assert!(inst_draw.textures[0].layers == 8, "layered texture");
        // Vertex-bound: VS invocations comparable to fragments.
        let f = it.render(128, 72, false, StreamId(0));
        let ratio = f.stats.fragments() as f64 / f.stats.vs_invocations() as f64;
        assert!(
            ratio < 20.0,
            "planets must be vertex-heavy, frag/vs = {ratio}"
        );
    }

    #[test]
    fn pbr_scene_has_more_texture_traffic_than_basic() {
        let spl = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, StreamId(0));
        let sph = Scene::build(SceneId::SponzaPbr, 0.2).render(96, 54, false, StreamId(0));
        assert!(
            sph.stats.tex_instrs() > spl.stats.tex_instrs() * 3,
            "PBR: {} vs basic: {}",
            sph.stats.tex_instrs(),
            spl.stats.tex_instrs()
        );
    }

    #[test]
    fn traces_tag_texture_and_pipeline_classes() {
        let f = Scene::build(SceneId::SponzaKhronos, 0.2).render(96, 54, false, StreamId(0));
        let mut fp = crisp_trace::ClassFootprint::new();
        for k in f.trace.kernels() {
            fp.add_kernel(k);
        }
        assert!(fp.lines(DataClass::Texture) > 0);
        assert!(fp.lines(DataClass::Pipeline) > 0);
        assert_eq!(fp.lines(DataClass::Compute), 0);
    }

    #[test]
    fn stereo_render_fills_both_halves() {
        let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
        let f = scene.render_stereo(128, 36, false, StreamId(0), 0.6);
        // Two eyes → two passes over the drawcalls.
        assert_eq!(f.stats.draws.len(), scene.draws.len() * 2);
        assert_eq!(f.trace.kernel_count(), scene.draws.len() * 2 * 2);
        // Both halves of the framebuffer received geometry.
        let fb = &f.framebuffer;
        let covered = |x0: u32, x1: u32| -> usize {
            (x0..x1)
                .flat_map(|x| (0..fb.height()).map(move |y| (x, y)))
                .filter(|&(x, y)| fb.depth_at(x, y) < 1.0)
                .count()
        };
        assert!(covered(0, 64) > 50, "left eye rendered");
        assert!(covered(64, 128) > 50, "right eye rendered");
        // The eyes see slightly different images (parallax).
        let same = (0..64)
            .flat_map(|x| (0..fb.height()).map(move |y| (x, y)))
            .filter(|&(x, y)| fb.color_at(x, y) == fb.color_at(x + 64, y))
            .count();
        assert!(
            (same as f64) < (64 * fb.height()) as f64 * 0.99,
            "parallax must differentiate the eyes"
        );
    }

    #[test]
    fn sequence_frames_differ_under_camera_motion() {
        let scene = Scene::build(SceneId::Platformer, 0.2);
        let (trace, stats) = scene.render_sequence(96, 54, false, StreamId(0), 3);
        assert_eq!(stats.len(), 3);
        // Each frame emits one VS+FS pair per drawcall.
        let per_frame = scene.draws.len() * 2;
        assert_eq!(trace.kernel_count(), 3 * per_frame);
        // The orbiting camera changes the shaded fragment counts.
        let frags: Vec<u64> = stats.iter().map(|s| s.fragments()).collect();
        assert!(frags.windows(2).any(|w| w[0] != w[1]), "{frags:?}");
    }

    #[test]
    #[should_panic(expected = "detail must be positive")]
    fn zero_detail_rejected() {
        let _ = Scene::build(SceneId::Pistol, 0.0);
    }
}
