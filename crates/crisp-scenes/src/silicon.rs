//! The "silicon" reference model.
//!
//! The paper validates CRISP against an NVIDIA RTX 3070 and a Jetson Orin
//! using Nsight counters. Neither the GPUs nor the driver stack exist in
//! this reproduction, so this module provides the substitute documented in
//! DESIGN.md: an *independent analytic estimator* of what the hardware
//! profiler would report, including the error sources the paper itself
//! names —
//!
//! * the hardware runs driver-optimised shaders, so it is consistently
//!   *faster* than the simulator ("the simulated frame time is always
//!   longer than the actual hardware, which we suspect is because of the
//!   lack of driver optimizations");
//! * the profiler reports *thread* counts while the simulator counts
//!   launched warps × 32 (Figure 3's bottom-left deviation);
//! * counter measurements carry per-drawcall noise.
//!
//! All noise is deterministic (hashed from workload names), so experiments
//! are reproducible.

use crisp_gfx::{DrawCall, FrameStats};

/// Deterministic hash → [0, 1).
fn unit_hash(s: &str, salt: u64) -> f64 {
    let mut x = salt.wrapping_mul(0x9E3779B97F4A7C15);
    for b in s.bytes() {
        x = x.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    // splitmix64 finalizer for full avalanche (labels differing in one
    // byte must land far apart).
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The silicon stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Silicon;

impl Silicon {
    /// Driver-optimisation speedup factor: hardware shaders are leaner
    /// than the Mesa-derived ones the simulator replays.
    pub const DRIVER_EFFICIENCY: f64 = 0.70;

    /// What the hardware profiler reports as vertex-shader invocations for
    /// one drawcall: the true thread count (the simulator instead reports
    /// warps × 32 — compare with `DrawStats::vs_threads_from_warps`).
    pub fn vs_thread_count(vs_invocations: u64) -> u64 {
        vs_invocations
    }

    /// Cycles a drawcall's pipeline drain costs (CTA ramp-up/down and the
    /// serialisation between its VS and FS kernels).
    pub const DRAW_DRAIN_CYCLES: f64 = 1_085.0;

    /// Cycles one DRAM row activation contributes to the critical path.
    pub const ROW_ACTIVATE_CYCLES: f64 = 24.5;

    /// Issue-side scaling of the warp-instruction estimate (latency hiding
    /// means not every instruction costs an issue slot on the critical
    /// path).
    pub const ISSUE_WEIGHT: f64 = 0.48;

    /// Estimated hardware frame time in milliseconds (the Figure 6
    /// reference series).
    ///
    /// The estimator is analytic: per-draw pipeline drain, plus issue-port
    /// cycles for the shader instruction stream where texture fetches are
    /// weighted by their L1 sector footprint, plus a fixed frame overhead
    /// — scaled by the driver-efficiency factor (hardware shaders are
    /// leaner, so real silicon is consistently *faster*) and by
    /// deterministic measurement noise. The structural coefficients were
    /// calibrated once against the simulator (see EXPERIMENTS.md) since no
    /// NVIDIA silicon is available in this reproduction.
    pub fn frame_time_ms(
        label: &str,
        draws: &[DrawCall],
        stats: &FrameStats,
        n_sms: usize,
        clock_mhz: f64,
        _dram_gbps: f64,
    ) -> f64 {
        assert_eq!(draws.len(), stats.draws.len(), "draws and stats must align");
        let issue_per_cycle = n_sms as f64 * 4.0; // 4 schedulers per SM
        let mut cycles = 0.0;
        for (d, ds) in draws.iter().zip(&stats.draws) {
            // Warp-level instruction estimate from the shader descriptors.
            let vs_warps = ds.vs_threads_from_warps as f64 / 32.0;
            let vs_instr = vs_warps * (d.vs.fp_ops + d.vs.int_ops + 7) as f64;
            let fs_warps = (ds.fragments as f64 / 32.0).ceil();
            let fs_fixed = (d.fs.fp_ops + d.fs.sfu_ops + d.fs.int_ops) as f64
                + d.fs.map_slots as f64 * 2.0
                + 9.0;
            let fs_instr = fs_warps * fs_fixed + ds.tex_instrs as f64;
            // Texture sectors occupy the L1 data port; distinct DRAM rows
            // pay their activations on the critical path.
            cycles += Self::DRAW_DRAIN_CYCLES
                + Self::ISSUE_WEIGHT * (vs_instr + fs_instr + 3.0 * ds.tex_sectors as f64)
                    / issue_per_cycle
                + Self::ROW_ACTIVATE_CYCLES * ds.tex_rows as f64;
        }
        let noise = 0.95 + 0.10 * unit_hash(label, 17);
        cycles * Self::DRIVER_EFFICIENCY * noise / (clock_mhz * 1e3)
    }

    /// What the hardware L1-texture-access counter would report for one
    /// drawcall, given the true (LoD-correct) sector count: the reference
    /// series of Figure 9. Per-drawcall multiplicative noise models the
    /// shader/driver mismatches the paper lists in Section IV.
    pub fn l1_tex_accesses(draw_label: &str, lod_correct_sectors: u64) -> f64 {
        let f = 0.72 + 0.66 * unit_hash(draw_label, 43);
        lod_correct_sectors as f64 * f
    }
}

/// Pearson correlation coefficient between two series.
///
/// # Panics
///
/// Panics if the series differ in length or have fewer than two points.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must align");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Mean absolute percentage error of `pred` against `actual`.
///
/// # Panics
///
/// Panics if the series differ in length, are empty, or `actual` contains
/// zeros.
pub fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "series must align");
    assert!(!pred.is_empty(), "need at least one point");
    pred.iter()
        .zip(actual)
        .map(|(p, a)| {
            assert!(*a != 0.0, "actual values must be non-zero");
            ((p - a) / a).abs()
        })
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenes::{Scene, SceneId};
    use crisp_trace::StreamId;

    #[test]
    fn correlation_of_identical_series_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((correlation(&xs, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_anticorrelated_series_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((correlation(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_series_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mape_basics() {
        assert!((mape(&[110.0], &[100.0]) - 0.1).abs() < 1e-12);
        assert!((mape(&[90.0, 120.0], &[100.0, 100.0]) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(
            Silicon::l1_tex_accesses("draw_a", 1000),
            Silicon::l1_tex_accesses("draw_a", 1000)
        );
        assert_ne!(
            Silicon::l1_tex_accesses("draw_a", 1000),
            Silicon::l1_tex_accesses("draw_b", 1000)
        );
    }

    #[test]
    fn tex_reference_stays_near_the_correct_counts() {
        for (i, label) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            let hw = Silicon::l1_tex_accesses(label, 1000 + i as u64);
            let rel = hw / (1000 + i as u64) as f64;
            assert!((0.7..=1.4).contains(&rel), "{rel}");
        }
    }

    #[test]
    fn frame_time_scales_with_resolution() {
        let scene = Scene::build(SceneId::SponzaKhronos, 0.2);
        let small = scene.render(96, 54, false, StreamId(0));
        let large = scene.render(192, 108, false, StreamId(0));
        let t_small = Silicon::frame_time_ms("spl", &scene.draws, &small.stats, 14, 1300.0, 200.0);
        let t_large = Silicon::frame_time_ms("spl", &scene.draws, &large.stats, 14, 1300.0, 200.0);
        assert!(
            t_large > t_small,
            "4× pixels must cost more: {t_small} vs {t_large}"
        );
        assert!(t_small > 0.0);
    }

    #[test]
    fn bigger_gpu_is_faster_on_throughput_bound_frames() {
        // A heavy frame (lots of fragments/texture work) is issue-bound, so
        // 46 SMs beat 14 despite the RTX's lower clock. Tiny frames are
        // drain-bound and need not follow this ordering.
        let scene = Scene::build(SceneId::Pistol, 1.0);
        let f = scene.render(640, 360, false, StreamId(0));
        let orin = Silicon::frame_time_ms("pt", &scene.draws, &f.stats, 14, 1300.0, 200.0);
        let rtx = Silicon::frame_time_ms("pt", &scene.draws, &f.stats, 46, 1132.0, 448.0);
        assert!(rtx < orin, "orin {orin} vs rtx {rtx}");
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn frame_time_checks_alignment() {
        let scene = Scene::build(SceneId::Pistol, 0.2);
        let f = scene.render(64, 36, false, StreamId(0));
        let _ = Silicon::frame_time_ms("x", &scene.draws[..1], &f.stats, 14, 1300.0, 200.0);
    }
}
