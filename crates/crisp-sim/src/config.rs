//! Whole-GPU configurations, including the paper's Table II presets.

use crisp_mem::{CacheGeometry, MemConfig, Replacement};
use crisp_sm::SmConfig;

/// Configuration of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("RTX 3070", "Jetson Orin").
    pub name: String,
    /// Number of SMs.
    pub n_sms: usize,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Unified L1 data-cache capacity per SM, bytes (the non-shared-memory
    /// portion of the L1/shared carve).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// Total L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 banks (memory partitions).
    pub l2_banks: u32,
    /// L2 hit latency beyond the crossbar, cycles.
    pub l2_latency: u64,
    /// Crossbar traversal latency, cycles each way.
    pub xbar_latency: u64,
    /// DRAM access latency, cycles.
    pub dram_latency: u64,
    /// Core clock, MHz.
    pub core_clock_mhz: f64,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// Hard simulation budget; `run` aborts past this many cycles.
    pub max_cycles: u64,
    /// Distinct in-flight sectors each L1 tracks (MSHR entries).
    pub l1_mshr_entries: usize,
    /// L2 victim-selection policy.
    pub l2_replacement: Replacement,
    /// Worker threads for the per-cycle SM loop (1 = fully serial). Any
    /// value produces bit-identical results; see the shard executor in
    /// `crisp_sim::gpu`.
    pub threads: usize,
}

impl GpuConfig {
    /// Table II, "Jetson Orin" column: 14 SMs, 196 KB L1+shared, 4 MB L2,
    /// 1300 MHz, LPDDR5 at 200 GB/s.
    pub fn jetson_orin() -> Self {
        GpuConfig {
            name: "Jetson Orin".into(),
            n_sms: 14,
            sm: SmConfig {
                max_smem: 68 << 10,
                ..SmConfig::default()
            },
            l1_bytes: 128 << 10, // 196 KB carve: 128 KB data + 68 KB shared
            l1_assoc: 4,
            l1_latency: 32,
            l2_bytes: 4 << 20,
            l2_assoc: 16,
            l2_banks: 8,
            l2_latency: 160,
            xbar_latency: 8,
            dram_latency: 220,
            core_clock_mhz: 1300.0,
            dram_gbps: 200.0,
            max_cycles: u64::MAX,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// Table II, "RTX 3070" column: 46 SMs, 128 KB L1+shared, 4 MB L2,
    /// 1132 MHz, GDDR6 at 448 GB/s.
    pub fn rtx3070() -> Self {
        GpuConfig {
            name: "RTX 3070".into(),
            n_sms: 46,
            sm: SmConfig {
                max_smem: 64 << 10,
                ..SmConfig::default()
            },
            l1_bytes: 96 << 10, // 128 KB carve: 96 KB data + 32 KB shared
            l1_assoc: 4,
            l1_latency: 28,
            l2_bytes: 4 << 20,
            l2_assoc: 16,
            l2_banks: 16,
            l2_latency: 140,
            xbar_latency: 8,
            dram_latency: 220,
            core_clock_mhz: 1132.0,
            dram_gbps: 448.0,
            max_cycles: u64::MAX,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// A deliberately tiny GPU for unit tests: fast to simulate, small
    /// enough that caches and partitions are exercised.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "test-tiny".into(),
            n_sms: 2,
            sm: SmConfig {
                max_warps: 16,
                max_threads: 512,
                max_ctas: 8,
                ..SmConfig::default()
            },
            l1_bytes: 16 << 10,
            l1_assoc: 4,
            l1_latency: 8,
            l2_bytes: 128 << 10,
            l2_assoc: 8,
            l2_banks: 2,
            l2_latency: 40,
            xbar_latency: 4,
            dram_latency: 100,
            core_clock_mhz: 1000.0,
            dram_gbps: 64.0,
            max_cycles: 50_000_000,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// DRAM bandwidth expressed in bytes per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps * 1e9 / (self.core_clock_mhz * 1e6)
    }

    /// Convert a cycle count to milliseconds of GPU time.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.core_clock_mhz * 1e3)
    }

    /// The derived memory-system configuration.
    pub fn mem_config(&self) -> MemConfig {
        MemConfig {
            n_sms: self.n_sms,
            l1_geom: CacheGeometry {
                size_bytes: self.l1_bytes,
                assoc: self.l1_assoc,
            },
            l1_latency: self.l1_latency,
            l1_mshr_entries: self.l1_mshr_entries,
            l1_mshr_merges: 16,
            l2_geom: CacheGeometry {
                size_bytes: self.l2_bytes,
                assoc: self.l2_assoc,
            },
            n_l2_banks: self.l2_banks,
            l2_latency: self.l2_latency,
            l2_mshr_entries: 64,
            xbar_latency: self.xbar_latency,
            dram_latency: self.dram_latency,
            dram_bytes_per_cycle: self.dram_bytes_per_cycle(),
            l2_replacement: self.l2_replacement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_presets() {
        let orin = GpuConfig::jetson_orin();
        assert_eq!(orin.n_sms, 14);
        assert_eq!(orin.l2_bytes, 4 << 20);
        assert_eq!(orin.sm.max_warps, 64);
        assert_eq!(orin.sm.schedulers, 4);
        let r = GpuConfig::rtx3070();
        assert_eq!(r.n_sms, 46);
        assert_eq!(r.sm.max_regs, 65536);
    }

    #[test]
    fn bandwidth_conversion() {
        let orin = GpuConfig::jetson_orin();
        // 200 GB/s at 1.3 GHz ≈ 153.8 B/cycle.
        assert!((orin.dram_bytes_per_cycle() - 153.8).abs() < 0.1);
        let r = GpuConfig::rtx3070();
        assert!((r.dram_bytes_per_cycle() - 395.8).abs() < 0.2);
    }

    #[test]
    fn cycles_to_ms_roundtrip() {
        let orin = GpuConfig::jetson_orin();
        // 1.3M cycles at 1300 MHz = 1 ms.
        assert!((orin.cycles_to_ms(1_300_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mem_config_is_consistent() {
        let cfg = GpuConfig::rtx3070();
        let m = cfg.mem_config();
        assert_eq!(m.n_sms, 46);
        assert_eq!(m.l2_geom.size_bytes % m.n_l2_banks as u64, 0);
        // Per-bank geometry must be constructible.
        let per_bank = m.l2_geom.size_bytes / m.n_l2_banks as u64;
        assert_eq!(per_bank % (128 * m.l2_geom.assoc as u64), 0);
    }
}
