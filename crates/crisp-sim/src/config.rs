//! Whole-GPU configurations, including the paper's Table II presets.

use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_mem::{CacheGeometry, MemConfig, Replacement};
use crisp_sm::SmConfig;
use crisp_trace::LINE_BYTES;

/// Configuration of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("RTX 3070", "Jetson Orin").
    pub name: String,
    /// Number of SMs.
    pub n_sms: usize,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Unified L1 data-cache capacity per SM, bytes (the non-shared-memory
    /// portion of the L1/shared carve).
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// Total L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 banks (memory partitions).
    pub l2_banks: u32,
    /// L2 hit latency beyond the crossbar, cycles.
    pub l2_latency: u64,
    /// Crossbar traversal latency, cycles each way.
    pub xbar_latency: u64,
    /// DRAM access latency, cycles.
    pub dram_latency: u64,
    /// Core clock, MHz.
    pub core_clock_mhz: f64,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_gbps: f64,
    /// Hard simulation budget; `run` aborts past this many cycles.
    pub max_cycles: u64,
    /// Distinct in-flight sectors each L1 tracks (MSHR entries).
    pub l1_mshr_entries: usize,
    /// L2 victim-selection policy.
    pub l2_replacement: Replacement,
    /// Worker threads for the per-cycle SM loop (1 = fully serial). Any
    /// value produces bit-identical results; see the shard executor in
    /// `crisp_sim::gpu`.
    pub threads: usize,
}

impl GpuConfig {
    /// Table II, "Jetson Orin" column: 14 SMs, 196 KB L1+shared, 4 MB L2,
    /// 1300 MHz, LPDDR5 at 200 GB/s.
    pub fn jetson_orin() -> Self {
        GpuConfig {
            name: "Jetson Orin".into(),
            n_sms: 14,
            sm: SmConfig {
                max_smem: 68 << 10,
                ..SmConfig::default()
            },
            l1_bytes: 128 << 10, // 196 KB carve: 128 KB data + 68 KB shared
            l1_assoc: 4,
            l1_latency: 32,
            l2_bytes: 4 << 20,
            l2_assoc: 16,
            l2_banks: 8,
            l2_latency: 160,
            xbar_latency: 8,
            dram_latency: 220,
            core_clock_mhz: 1300.0,
            dram_gbps: 200.0,
            max_cycles: u64::MAX,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// Table II, "RTX 3070" column: 46 SMs, 128 KB L1+shared, 4 MB L2,
    /// 1132 MHz, GDDR6 at 448 GB/s.
    pub fn rtx3070() -> Self {
        GpuConfig {
            name: "RTX 3070".into(),
            n_sms: 46,
            sm: SmConfig {
                max_smem: 64 << 10,
                ..SmConfig::default()
            },
            l1_bytes: 96 << 10, // 128 KB carve: 96 KB data + 32 KB shared
            l1_assoc: 4,
            l1_latency: 28,
            l2_bytes: 4 << 20,
            l2_assoc: 16,
            l2_banks: 16,
            l2_latency: 140,
            xbar_latency: 8,
            dram_latency: 220,
            core_clock_mhz: 1132.0,
            dram_gbps: 448.0,
            max_cycles: u64::MAX,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// A deliberately tiny GPU for unit tests: fast to simulate, small
    /// enough that caches and partitions are exercised.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "test-tiny".into(),
            n_sms: 2,
            sm: SmConfig {
                max_warps: 16,
                max_threads: 512,
                max_ctas: 8,
                ..SmConfig::default()
            },
            l1_bytes: 16 << 10,
            l1_assoc: 4,
            l1_latency: 8,
            l2_bytes: 128 << 10,
            l2_assoc: 8,
            l2_banks: 2,
            l2_latency: 40,
            xbar_latency: 4,
            dram_latency: 100,
            core_clock_mhz: 1000.0,
            dram_gbps: 64.0,
            max_cycles: 50_000_000,
            l1_mshr_entries: 64,
            l2_replacement: Replacement::Lru,
            threads: 1,
        }
    }

    /// DRAM bandwidth expressed in bytes per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbps * 1e9 / (self.core_clock_mhz * 1e6)
    }

    /// Convert a cycle count to milliseconds of GPU time.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.core_clock_mhz * 1e3)
    }

    /// The derived memory-system configuration.
    pub fn mem_config(&self) -> MemConfig {
        MemConfig {
            n_sms: self.n_sms,
            l1_geom: CacheGeometry {
                size_bytes: self.l1_bytes,
                assoc: self.l1_assoc,
            },
            l1_latency: self.l1_latency,
            l1_mshr_entries: self.l1_mshr_entries,
            l1_mshr_merges: 16,
            l2_geom: CacheGeometry {
                size_bytes: self.l2_bytes,
                assoc: self.l2_assoc,
            },
            n_l2_banks: self.l2_banks,
            l2_latency: self.l2_latency,
            l2_mshr_entries: 64,
            xbar_latency: self.xbar_latency,
            dram_latency: self.dram_latency,
            dram_bytes_per_cycle: self.dram_bytes_per_cycle(),
            l2_replacement: self.l2_replacement,
        }
    }
}

impl CheckpointState for GpuConfig {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.str(&self.name)?;
        w.u64(self.n_sms as u64)?;
        self.sm.save(w, ())?;
        w.u64(self.l1_bytes)?;
        w.u32(self.l1_assoc)?;
        w.u64(self.l1_latency)?;
        w.u64(self.l2_bytes)?;
        w.u32(self.l2_assoc)?;
        w.u32(self.l2_banks)?;
        w.u64(self.l2_latency)?;
        w.u64(self.xbar_latency)?;
        w.u64(self.dram_latency)?;
        w.f64(self.core_clock_mhz)?;
        w.f64(self.dram_gbps)?;
        w.u64(self.max_cycles)?;
        w.u64(self.l1_mshr_entries as u64)?;
        w.u8(match self.l2_replacement {
            Replacement::Lru => 0,
            Replacement::Random => 1,
        })?;
        w.u64(self.threads as u64)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let cfg = GpuConfig {
            name: r.str()?,
            n_sms: r.u64()? as usize,
            sm: SmConfig::restore(r, ())?,
            l1_bytes: r.u64()?,
            l1_assoc: r.u32()?,
            l1_latency: r.u64()?,
            l2_bytes: r.u64()?,
            l2_assoc: r.u32()?,
            l2_banks: r.u32()?,
            l2_latency: r.u64()?,
            xbar_latency: r.u64()?,
            dram_latency: r.u64()?,
            core_clock_mhz: r.f64()?,
            dram_gbps: r.f64()?,
            max_cycles: r.u64()?,
            l1_mshr_entries: r.u64()? as usize,
            l2_replacement: match r.u8()? {
                0 => Replacement::Lru,
                1 => Replacement::Random,
                t => return Err(bad(format!("unknown replacement policy tag {t}"))),
            },
            threads: r.u64()? as usize,
        };
        // Cache geometry construction *asserts* well-formedness (whole
        // number of sets, bank divisibility), so a corrupt checkpoint must
        // be rejected here with an `Err`, before `mem_config()` can panic.
        if cfg.n_sms == 0 || cfg.n_sms > 4096 {
            return Err(bad(format!("implausible SM count {}", cfg.n_sms)));
        }
        if cfg.l1_assoc == 0
            || cfg.l1_bytes == 0
            || !cfg
                .l1_bytes
                .is_multiple_of(LINE_BYTES * cfg.l1_assoc as u64)
        {
            return Err(bad(format!(
                "invalid L1 geometry: {} bytes, {}-way",
                cfg.l1_bytes, cfg.l1_assoc
            )));
        }
        let bank_bytes = match cfg.l2_banks {
            0 => 0,
            b => cfg.l2_bytes / b as u64,
        };
        if cfg.l2_assoc == 0
            || cfg.l2_banks == 0
            || !cfg.l2_bytes.is_multiple_of(cfg.l2_banks as u64)
            || bank_bytes == 0
            || !bank_bytes.is_multiple_of(LINE_BYTES * cfg.l2_assoc as u64)
        {
            return Err(bad(format!(
                "invalid L2 geometry: {} bytes, {}-way, {} banks",
                cfg.l2_bytes, cfg.l2_assoc, cfg.l2_banks
            )));
        }
        if cfg.l1_mshr_entries == 0 || cfg.l1_mshr_entries > 1 << 16 {
            return Err(bad(format!(
                "implausible L1 MSHR count {}",
                cfg.l1_mshr_entries
            )));
        }
        if !(cfg.core_clock_mhz.is_finite()
            && cfg.core_clock_mhz > 0.0
            && cfg.dram_gbps.is_finite()
            && cfg.dram_gbps > 0.0
            && cfg.dram_bytes_per_cycle().is_finite())
        {
            return Err(bad(format!(
                "invalid clocking: {} MHz, {} GB/s",
                cfg.core_clock_mhz, cfg.dram_gbps
            )));
        }
        if cfg.threads == 0 || cfg.threads > 4096 {
            return Err(bad(format!("implausible thread count {}", cfg.threads)));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_presets() {
        let orin = GpuConfig::jetson_orin();
        assert_eq!(orin.n_sms, 14);
        assert_eq!(orin.l2_bytes, 4 << 20);
        assert_eq!(orin.sm.max_warps, 64);
        assert_eq!(orin.sm.schedulers, 4);
        let r = GpuConfig::rtx3070();
        assert_eq!(r.n_sms, 46);
        assert_eq!(r.sm.max_regs, 65536);
    }

    #[test]
    fn bandwidth_conversion() {
        let orin = GpuConfig::jetson_orin();
        // 200 GB/s at 1.3 GHz ≈ 153.8 B/cycle.
        assert!((orin.dram_bytes_per_cycle() - 153.8).abs() < 0.1);
        let r = GpuConfig::rtx3070();
        assert!((r.dram_bytes_per_cycle() - 395.8).abs() < 0.2);
    }

    #[test]
    fn cycles_to_ms_roundtrip() {
        let orin = GpuConfig::jetson_orin();
        // 1.3M cycles at 1300 MHz = 1 ms.
        assert!((orin.cycles_to_ms(1_300_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_presets() {
        for cfg in [
            GpuConfig::jetson_orin(),
            GpuConfig::rtx3070(),
            GpuConfig::test_tiny(),
        ] {
            let mut buf = Vec::new();
            let mut w = Writer::new(&mut buf);
            cfg.save(&mut w, ()).unwrap();
            let mut r = Reader::new(buf.as_slice());
            assert_eq!(GpuConfig::restore(&mut r, ()).unwrap(), cfg);
        }
    }

    #[test]
    fn checkpoint_restore_rejects_broken_geometry() {
        let cfg = GpuConfig {
            l1_bytes: 1000, // not a multiple of 128 * assoc
            ..GpuConfig::test_tiny()
        };
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        cfg.save(&mut w, ()).unwrap();
        let mut r = Reader::new(buf.as_slice());
        let err = GpuConfig::restore(&mut r, ()).unwrap_err();
        assert!(err.to_string().contains("L1 geometry"), "{err}");
    }

    #[test]
    fn mem_config_is_consistent() {
        let cfg = GpuConfig::rtx3070();
        let m = cfg.mem_config();
        assert_eq!(m.n_sms, 46);
        assert_eq!(m.l2_geom.size_bytes % m.n_l2_banks as u64, 0);
        // Per-bank geometry must be constructible.
        let per_bank = m.l2_geom.size_bytes / m.n_l2_banks as u64;
        assert_eq!(per_bank % (128 * m.l2_geom.assoc as u64), 0);
    }
}
