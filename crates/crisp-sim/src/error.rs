//! Structured simulation errors and the deadlock report.
//!
//! Every way a run can fail — a cycle budget blown, a genuine scheduling
//! deadlock, a worker-thread panic, a malformed trace or config, a
//! checkpoint that would not write — maps to one [`SimError`] variant.
//! The hang-shaped variants carry a [`HangContext`]: the cycle of failure,
//! a full [`DeadlockReport`] (per-stream frontier plus per-SM scheduling
//! snapshots from [`crisp_sm::SmDiagnostics`]), the partial [`SimResult`]
//! accumulated so far, and the path of the emergency checkpoint when one
//! was written — so a wedged multi-hour run degrades into a diagnostic and
//! a resumable artifact instead of a poisoned mutex.
//!
//! `Display` on [`SimError`] renders the full multi-line diagnostic; `{e}`
//! in a log line is the report.

use std::fmt;
use std::io;
use std::path::PathBuf;

use crisp_sm::{SmDiagnostics, WarpStall};
use crisp_trace::{StreamId, TraceError};

use crate::gpu::SimResult;

/// Where one stream's dispatch frontier sat when a run failed.
#[derive(Debug, Clone)]
pub struct StreamFrontier {
    /// Stream id.
    pub id: StreamId,
    /// The stream has retired every command.
    pub finished: bool,
    /// Name of the kernel currently dispatching, if any.
    pub kernel: Option<String>,
    /// Next CTA index the dispatcher would issue from that kernel.
    pub next_cta: usize,
    /// The kernel's grid size (total CTAs).
    pub grid: usize,
    /// CTAs issued but not yet committed.
    pub outstanding: usize,
    /// Commands (kernel launches / markers) still queued behind the
    /// current kernel.
    pub commands_left: usize,
}

impl fmt::Display for StreamFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.finished {
            return write!(f, "{}: finished", self.id);
        }
        match &self.kernel {
            Some(k) => write!(
                f,
                "{}: in kernel '{}' — {}/{} CTAs dispatched, {} outstanding, {} commands queued",
                self.id, k, self.next_cta, self.grid, self.outstanding, self.commands_left
            ),
            None => write!(
                f,
                "{}: between kernels, {} commands queued",
                self.id, self.commands_left
            ),
        }
    }
}

/// Everything the watchdog could learn about why nothing retires: the
/// per-stream dispatch frontier plus a scheduling snapshot of every SM.
/// Built on the driving thread from final state, so it is identical at any
/// thread count.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Cycle the report was taken at.
    pub cycle: u64,
    /// Last cycle any SM issued an instruction.
    pub last_progress: u64,
    /// Per-stream dispatch frontier.
    pub streams: Vec<StreamFrontier>,
    /// Per-SM scheduling snapshots (index = SM id).
    pub sms: Vec<SmDiagnostics>,
}

impl DeadlockReport {
    /// Names of CTAs that look like deadlock culprits: a CTA whose barrier
    /// waits on a warp that can never arrive (trace exhausted without an
    /// `Exit`). Each entry is `(sm id, stream, cta index)`.
    #[must_use]
    pub fn culprits(&self) -> Vec<(usize, StreamId, usize)> {
        let mut out = Vec::new();
        for sm in &self.sms {
            for cta in &sm.ctas {
                let wedged = sm.warps.iter().any(|w| {
                    w.stream == cta.stream
                        && w.cta_index == cta.cta_index
                        && w.stall == WarpStall::TraceExhausted
                });
                if cta.barrier_waiting() && wedged {
                    out.push((sm.id, cta.stream, cta.cta_index));
                }
            }
        }
        out
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock report at cycle {} (last instruction issued at cycle {})",
            self.cycle, self.last_progress
        )?;
        writeln!(f, "streams:")?;
        for s in &self.streams {
            writeln!(f, "  {s}")?;
        }
        let culprits = self.culprits();
        if !culprits.is_empty() {
            writeln!(f, "likely culprits:")?;
            for (sm, stream, cta) in &culprits {
                writeln!(
                    f,
                    "  sm{sm} {stream} cta {cta}: barrier waits on a warp whose \
                     trace ended without Exit"
                )?;
            }
        }
        writeln!(f, "SMs:")?;
        for sm in &self.sms {
            if sm.idle() {
                continue;
            }
            writeln!(
                f,
                "  sm{}: {} resident warps, {} MSHR in flight, {} LSU queued, {} writebacks",
                sm.id,
                sm.warps.len(),
                sm.mshr_in_flight,
                sm.lsu_queued,
                sm.writebacks_pending
            )?;
            for cta in &sm.ctas {
                writeln!(
                    f,
                    "    {} kernel '{}' cta {}: {}/{} live warps at barrier",
                    cta.stream, cta.kernel, cta.cta_index, cta.at_barrier, cta.live_warps
                )?;
            }
            for w in &sm.warps {
                if w.stall == WarpStall::Exited {
                    continue;
                }
                writeln!(
                    f,
                    "    warp slot {} ({} cta {} warp {}): pc {}/{}, {} pending regs — {}",
                    w.slot,
                    w.stream,
                    w.cta_index,
                    w.warp_index,
                    w.pc,
                    w.trace_len,
                    w.pending_regs,
                    w.stall.label()
                )?;
            }
        }
        Ok(())
    }
}

/// Context attached to every hang-shaped failure (budget, deadlock,
/// worker panic): what the simulator knew at the moment it gave up.
#[derive(Debug)]
pub struct HangContext {
    /// Cycle the run stopped at.
    pub cycle: u64,
    /// Last cycle any SM issued an instruction.
    pub last_progress: u64,
    /// The full diagnostic snapshot.
    pub report: DeadlockReport,
    /// Stats accumulated up to the failure — everything a successful run
    /// would have reported, truncated at `cycle`.
    pub partial: SimResult,
    /// Path of the emergency checkpoint, when a checkpoint directory was
    /// configured and the write succeeded. `Simulation::resume` accepts it.
    pub emergency_checkpoint: Option<PathBuf>,
}

/// Why a simulation failed. See the module docs for the taxonomy;
/// `Display` renders the full diagnostic.
#[derive(Debug)]
pub enum SimError {
    /// The run crossed `GpuConfig::max_cycles`. Often just a budget set
    /// too low — `ctx.partial` holds the stats so far, and
    /// `ctx.emergency_checkpoint` (when written) resumes where it stopped.
    CycleBudgetExceeded {
        /// The configured budget.
        max_cycles: u64,
        /// Diagnostic context.
        ctx: Box<HangContext>,
    },
    /// No SM issued an instruction for `window` consecutive cycles while
    /// work remained — a genuine forward-progress failure (wedged barrier,
    /// unplaceable CTA, exhausted trace).
    Deadlock {
        /// The configured watchdog window, in cycles.
        window: u64,
        /// Diagnostic context.
        ctx: Box<HangContext>,
    },
    /// A worker thread panicked inside the sharded cycle loop. The panic
    /// was caught at the shard barrier; SM state was recovered onto the
    /// driving thread for the report.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
        /// Diagnostic context.
        ctx: Box<HangContext>,
    },
    /// The trace bundle failed pre-flight validation. Carries every defect
    /// found, each with its bundle location.
    InvalidTrace {
        /// All structural defects found.
        errors: Vec<TraceError>,
    },
    /// The configuration is inconsistent with itself or with the trace
    /// (partition spec vs SM count, impossible CTA resources, unwritable
    /// checkpoint directory, missing fast-forward marker, …).
    InvalidConfig {
        /// What is wrong.
        message: String,
    },
    /// The trace source failed mid-run while demand-paging a CTA: an I/O
    /// error on the underlying reader, or corruption detected when a blob
    /// was decoded. Also raised at build time when the trace input cannot
    /// be opened at all.
    TraceIo {
        /// Cycle the read was attempted at (0 when opening the input).
        cycle: u64,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A checkpoint or profile artifact could not be written or read.
    CheckpointIo {
        /// Cycle the I/O was attempted at.
        cycle: u64,
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl SimError {
    /// The simulation cycle the error is anchored at, when it has one.
    /// Pre-flight errors (`InvalidTrace`, `InvalidConfig`) have none.
    #[must_use]
    pub fn cycle(&self) -> Option<u64> {
        match self {
            SimError::CycleBudgetExceeded { ctx, .. }
            | SimError::Deadlock { ctx, .. }
            | SimError::WorkerPanic { ctx, .. } => Some(ctx.cycle),
            SimError::CheckpointIo { cycle, .. } | SimError::TraceIo { cycle, .. } => Some(*cycle),
            SimError::InvalidTrace { .. } | SimError::InvalidConfig { .. } => None,
        }
    }

    /// The hang context, for the variants that carry one.
    #[must_use]
    pub fn hang_context(&self) -> Option<&HangContext> {
        match self {
            SimError::CycleBudgetExceeded { ctx, .. }
            | SimError::Deadlock { ctx, .. }
            | SimError::WorkerPanic { ctx, .. } => Some(ctx),
            _ => None,
        }
    }

    /// The rendered multi-line diagnostic (same text `Display` produces).
    #[must_use]
    pub fn diagnostic(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleBudgetExceeded { max_cycles, ctx } => {
                writeln!(
                    f,
                    "exceeded max_cycles={max_cycles} at cycle {} — raise \
                     GpuConfig::max_cycles if the run is simply long",
                    ctx.cycle
                )?;
                hang_footer(f, ctx)
            }
            SimError::Deadlock { window, ctx } => {
                writeln!(
                    f,
                    "no instruction issued on any SM for {window} cycles \
                     (watchdog window) with work remaining",
                )?;
                write!(f, "{}", ctx.report)?;
                hang_footer(f, ctx)
            }
            SimError::WorkerPanic { message, ctx } => {
                writeln!(f, "a simulation worker thread panicked: {message}")?;
                hang_footer(f, ctx)
            }
            SimError::InvalidTrace { errors } => {
                writeln!(
                    f,
                    "trace failed pre-flight validation ({} errors):",
                    errors.len()
                )?;
                for e in errors {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            SimError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
            SimError::TraceIo { cycle, message } => {
                write!(f, "trace source failed at cycle {cycle}: {message}")
            }
            SimError::CheckpointIo {
                cycle,
                path,
                source,
            } => write!(
                f,
                "checkpoint/profile I/O failed at cycle {cycle} for {}: {source}",
                path.display()
            ),
        }
    }
}

fn hang_footer(f: &mut fmt::Formatter<'_>, ctx: &HangContext) -> fmt::Result {
    match &ctx.emergency_checkpoint {
        Some(p) => write!(
            f,
            "emergency checkpoint written to {} (load with Simulation::resume)",
            p.display()
        ),
        None => write!(
            f,
            "no emergency checkpoint (no checkpoint directory configured)"
        ),
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::CheckpointIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<Vec<TraceError>> for SimError {
    fn from(errors: Vec<TraceError>) -> Self {
        SimError::InvalidTrace { errors }
    }
}
