//! The whole-GPU simulator: stream dispatch, CTA scheduling under a
//! partition policy, and the cycle loop.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_mem::{
    BankMap, Completion, CompositionSnapshot, MemReq, MemStats, MemSystem, ReqToken, SetPartition,
    TapController, TickTimes,
};
use crisp_obs::host::{set_alloc_phase, HostPhase, HostProfile, HostProfiler, ShardTimes};
use crisp_obs::{
    CounterSample, InstantEvent, Labels, MetricRegistry, MetricsSnapshot, SpanEvent, TraceLog,
    TraceRecorder, Track,
};
use crisp_sm::{CtaResources, CtaWork, CycleOutput, ResourceQuota, Sm, StallBreakdown};
use crisp_trace::{
    CommandMeta, KernelId, KernelInfo, Space, StreamId, StreamKind, TraceBundle, TraceInput,
    TraceSource, TraceStats, SECTOR_BYTES,
};

use crate::config::GpuConfig;
use crate::error::{DeadlockReport, HangContext, SimError, StreamFrontier};
use crate::policy::{L2Policy, PartitionSpec, SmPartition};
use crate::slicer::WarpedSlicer;
use crate::stats::{OccupancySample, PerStreamStats};

/// Per-stream results of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamResult {
    /// Timing and counts.
    pub stats: PerStreamStats,
    /// DRAM bytes moved for this stream.
    pub dram_bytes: u64,
}

/// One kernel's execution record in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRecord {
    /// Stream the kernel ran on.
    pub stream: StreamId,
    /// Kernel name from the trace.
    pub name: String,
    /// Cycle its first CTA could be issued.
    pub start_cycle: u64,
    /// Cycle its last CTA committed.
    pub end_cycle: u64,
    /// Grid size.
    pub ctas: u64,
}

impl KernelRecord {
    /// Kernel wall-clock cycles.
    pub fn elapsed(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }
}

/// Everything a finished simulation reports.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total simulated cycles until the last stream finished.
    pub cycles: u64,
    /// Per-stream results.
    pub per_stream: BTreeMap<StreamId, StreamResult>,
    /// L1 statistics summed over SMs.
    pub l1_stats: MemStats,
    /// L2 statistics summed over banks.
    pub l2_stats: MemStats,
    /// Final L2 composition snapshot.
    pub l2_composition: CompositionSnapshot,
    /// Periodic L2 composition snapshots (cycle, snapshot).
    pub l2_composition_timeline: Vec<(u64, CompositionSnapshot)>,
    /// Occupancy timeline (paper Figure 13).
    pub occupancy: Vec<OccupancySample>,
    /// Per-stream IPC timeline sampled with the occupancy interval:
    /// (cycle, stream → instructions issued since the previous sample).
    pub ipc_timeline: Vec<(u64, BTreeMap<StreamId, u64>)>,
    /// Warped-slicer decisions, when the dynamic policy ran.
    pub slicer_history: Vec<(u64, f64)>,
    /// TAP's final set allocation, when TAP ran.
    pub tap_allocation: Option<Vec<(StreamId, u64)>>,
    /// Per-kernel execution timeline in completion order.
    pub kernel_log: Vec<KernelRecord>,
    /// Instructions each SM issued per stream (index = SM id) — the
    /// spatial view of the partition (which SMs actually ran what).
    pub per_sm_instructions: Vec<BTreeMap<StreamId, u64>>,
    /// Scheduler-slot accounting per SM (index = SM id), including the
    /// stall-cause breakdown. [`SimResult::stalls`] derives the aggregate.
    pub per_sm_stalls: Vec<StallBreakdown>,
    /// The unified metric registry snapshot: every counter the run
    /// produced, keyed by `sm` / `stream` / `class` labels. Always
    /// populated (built once at end of run from final state).
    pub metrics: MetricsSnapshot,
    /// The span/counter timeline. Empty unless
    /// [`Telemetry::TIMELINE`](crate::Telemetry::TIMELINE) or
    /// [`Telemetry::METRICS`](crate::Telemetry::METRICS) was enabled.
    pub timeline: TraceLog,
    /// Trace-paging statistics from the run's [`TraceSource`]: peak
    /// resident window and bytes decoded. For a materialized bundle the
    /// peak equals the whole-bundle size; for a streaming source it
    /// reflects only the CTAs that were in flight at once.
    pub trace: TraceStats,
    /// Host-clock self-profile: wall-clock attribution of the simulator's
    /// own phases (dispatch, execute, barrier wait, memory tick, telemetry,
    /// …), per-shard imbalance, heartbeats, and — when the `alloc-profile`
    /// feature's counting allocator is installed — allocation accounting.
    /// `None` unless the run was built with `.host_profile(true)`. Purely
    /// observational: simulated results and the sim-clock exports are
    /// byte-identical with or without it.
    pub host_profile: Option<HostProfile>,
}

/// Marker label that clears memory-hierarchy statistics when consumed —
/// used to measure steady-state (warmed-cache) hit rates: replay one frame,
/// clear, replay again.
pub const CLEAR_STATS_MARKER: &str = "crisp:clear-stats";

/// Default forward-progress watchdog window (cycles without any SM issuing
/// an instruction before the run fails with [`SimError::Deadlock`]).
pub const DEFAULT_WATCHDOG: u64 = 10_000_000;

/// Why the cycle loop gave up. Internal: converted into a full
/// [`SimError`] by `GpuSim::failure` once every SM is back on the driving
/// thread (the report needs them).
#[derive(Debug)]
enum Violation {
    /// `now` crossed `cfg.max_cycles`.
    Budget,
    /// The forward-progress watchdog window elapsed without any SM issuing.
    Stall,
    /// A worker thread panicked; carries the payload when it was a string.
    WorkerPanic(String),
    /// The trace source failed to page a CTA in (I/O error or a corrupt
    /// container detected mid-stream).
    TraceIo(String),
}

/// Render a caught panic payload for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl SimResult {
    /// Convenience: cycles until `stream` finished.
    pub fn stream_cycles(&self, stream: StreamId) -> u64 {
        self.per_stream
            .get(&stream)
            .map_or(0, |r| r.stats.finish_cycle)
    }

    /// Cycles until every stream finished (the concurrent makespan).
    pub fn makespan(&self) -> u64 {
        self.per_stream
            .values()
            .map(|s| s.stats.finish_cycle)
            .max()
            .unwrap_or(self.cycles)
    }

    /// Scheduler-slot accounting summed over all SMs (the aggregate view of
    /// [`per_sm_stalls`](Self::per_sm_stalls)).
    pub fn stalls(&self) -> StallBreakdown {
        let mut total = StallBreakdown::default();
        for s in &self.per_sm_stalls {
            total.merge(s);
        }
        total
    }

    /// The run's timeline as Chrome Trace Event Format JSON — load it at
    /// <https://ui.perfetto.dev> or `chrome://tracing`. Sim clock only
    /// (`ts` = cycles); the host self-profile is never mixed in here, so
    /// this export stays byte-identical whether or not profiling ran.
    pub fn chrome_trace_json(&self) -> String {
        crisp_obs::chrome::chrome_trace_string(&self.timeline)
    }

    /// The dual-clock trace: the simulated timeline (`ts` = cycles) plus
    /// the host self-profile as its own named process (`ts` = µs of
    /// wall-clock). Falls back to [`chrome_trace_json`](Self::chrome_trace_json)
    /// when the run was not profiled.
    pub fn chrome_trace_json_with_host(&self) -> String {
        match &self.host_profile {
            Some(h) => crisp_obs::chrome::chrome_trace_with_host_string(&self.timeline, h),
            None => self.chrome_trace_json(),
        }
    }

    /// The human-readable host self-profile report (phase table, shard
    /// balance, heartbeat trajectory, allocation accounting).
    pub fn host_report(&self) -> String {
        match &self.host_profile {
            Some(h) => h.report(),
            None => "host profiling disabled (build with .host_profile(true))\n".to_string(),
        }
    }

    /// The sampled counter series as `cycle,counter,value` CSV.
    pub fn counters_csv(&self) -> String {
        crisp_obs::csv::counters_csv_string(&self.timeline)
    }

    /// The metric registry snapshot as `metric,labels,kind,value` CSV.
    pub fn metrics_csv(&self) -> String {
        crisp_obs::csv::metrics_csv_string(&self.metrics)
    }

    /// The human-readable end-of-run profile report.
    pub fn profile_report(&self) -> String {
        crisp_obs::report::profile_report(&self.metrics, &self.timeline)
    }

    /// Write every profile artifact into `dir` (created if missing):
    /// `trace.json`, `counters.csv`, `metrics.csv`, `profile.txt` — plus,
    /// when the run was host-profiled, `host_profile.txt` and the
    /// dual-clock `trace_host.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or writing
    /// the files.
    pub fn write_profile(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("trace.json"), self.chrome_trace_json())?;
        std::fs::write(dir.join("counters.csv"), self.counters_csv())?;
        std::fs::write(dir.join("metrics.csv"), self.metrics_csv())?;
        std::fs::write(dir.join("profile.txt"), self.profile_report())?;
        if self.host_profile.is_some() {
            std::fs::write(dir.join("host_profile.txt"), self.host_report())?;
            std::fs::write(
                dir.join("trace_host.json"),
                self.chrome_trace_json_with_host(),
            )?;
        }
        Ok(())
    }

    /// A compact human-readable summary of the run.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} cycles ({} streams)",
            self.cycles,
            self.per_stream.len()
        );
        for (id, r) in &self.per_stream {
            let _ = writeln!(
                out,
                "  {id}: {} instrs, IPC {:.2}, {} CTAs in {} kernels, {} KiB DRAM",
                r.stats.instructions,
                r.stats.ipc(),
                r.stats.ctas,
                r.stats.kernels,
                r.dram_bytes / 1024,
            );
        }
        let l1 = self.l1_stats.total();
        let l2 = self.l2_stats.total();
        let _ = writeln!(
            out,
            "  L1 {:.1}% hit ({} acc) | L2 {:.1}% hit ({} acc) | L2 lines: {:.0}% tex / {:.0}% pipe / {:.0}% compute",
            l1.hit_rate() * 100.0,
            l1.accesses,
            l2.hit_rate() * 100.0,
            l2.accesses,
            self.l2_composition.class_fraction(crisp_trace::DataClass::Texture) * 100.0,
            self.l2_composition.class_fraction(crisp_trace::DataClass::Pipeline) * 100.0,
            self.l2_composition.class_fraction(crisp_trace::DataClass::Compute) * 100.0,
        );
        out
    }
}

#[derive(Debug)]
struct RunningKernel {
    kernel: KernelId,
    info: Arc<KernelInfo>,
    next_cta: usize,
    outstanding: usize,
    start_cycle: u64,
}

#[derive(Debug)]
struct StreamState {
    id: StreamId,
    kind: StreamKind,
    /// The stream's full command list from the trace source's directory.
    /// Instruction payloads are *not* here — CTAs are demand-paged through
    /// [`TraceSource::fetch_cta`] when dispatched.
    commands: Vec<CommandMeta>,
    /// Cursor into `commands`: the next command to consume.
    next_cmd: usize,
    current: Option<RunningKernel>,
    started: bool,
    finished: bool,
}

impl StreamState {
    fn work_remains(&self) -> bool {
        self.current.is_some() || self.next_cmd < self.commands.len()
    }

    /// The next unconsumed command, if any.
    fn front(&self) -> Option<&CommandMeta> {
        self.commands.get(self.next_cmd)
    }
}

/// The simulator. Build with [`Simulation::builder`](crate::Simulation),
/// then call [`GpuSim::run`] (the builder's `run()` does both).
///
/// # Example
///
/// ```
/// use crisp_sim::{GpuConfig, Simulation};
/// use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream, StreamId,
///                   StreamKind, TraceBundle, WarpTrace};
///
/// let mut w = WarpTrace::new();
/// w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
/// w.seal();
/// let k = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![w])]);
/// let mut s = Stream::new(StreamId(0), StreamKind::Compute);
/// s.launch(k);
///
/// let result = Simulation::builder()
///     .gpu(GpuConfig::test_tiny())
///     .trace(TraceBundle::from_streams(vec![s]))
///     .run()
///     .expect("valid trace and config");
/// assert!(result.cycles > 0);
/// ```
///
/// # Threading
///
/// With `threads > 1` (via [`GpuConfig::threads`] or the builder's
/// `.threads(n)`), the per-cycle SM loop is sharded over persistent worker
/// threads. Every cross-SM interaction — CTA dispatch, the memory
/// hierarchy, telemetry — stays on the driving thread, and each SM's
/// memory traffic is buffered in its private [`crisp_mem::SmMemPort`] and
/// drained into the crossbar in ascending SM-id order. Results are
/// therefore **bit-identical at any thread count**.
#[derive(Debug)]
pub struct GpuSim {
    cfg: GpuConfig,
    spec: PartitionSpec,
    sms: Vec<Sm>,
    mem: MemSystem,
    threads: usize,
    streams: Vec<StreamState>,
    /// The attached trace source: every CTA's instructions are paged in
    /// through it at dispatch and released at commit.
    source: Option<TraceSource>,
    /// Export `trace/*` residency gauges into the metric registry. Off by
    /// default so exports stay byte-identical between streaming and
    /// materialized inputs (paging statistics necessarily differ).
    pub residency_telemetry: bool,
    slicer: Option<WarpedSlicer>,
    now: u64,
    stats: BTreeMap<StreamId, PerStreamStats>,
    occupancy: Vec<OccupancySample>,
    ipc_timeline: Vec<(u64, BTreeMap<StreamId, u64>)>,
    last_issued_snapshot: BTreeMap<StreamId, u64>,
    /// Cycles between occupancy samples.
    pub occupancy_interval: u64,
    /// Cycles between L2 composition snapshots (0 = final only).
    pub composition_interval: u64,
    /// Cycles between counter samples in the trace (0 = off).
    pub counter_interval: u64,
    composition_timeline: Vec<(u64, CompositionSnapshot)>,
    /// Span/counter recorder; `None` (the default) keeps the hot path free
    /// of any recording work.
    recorder: Option<TraceRecorder>,
    /// Previous cumulative values behind the sampled counter deltas.
    /// Separate from `last_issued_snapshot` so counter sampling never
    /// perturbs the `ipc_timeline` windows.
    counter_prev_issued: BTreeMap<StreamId, u64>,
    counter_prev_dram: BTreeMap<StreamId, u64>,
    counter_prev_l1: (u64, u64),
    counter_prev_l2: (u64, u64),
    cta_seq: u64,
    last_progress: u64,
    rr_offset: usize,
    /// Cached per-stream SM allowlists (index = SM id), built at load().
    allowed_sms: BTreeMap<StreamId, Vec<bool>>,
    kernel_log: Vec<KernelRecord>,
    /// Write a checkpoint every this many cycles during [`GpuSim::run`]
    /// (0 = never). Not itself part of the checkpointed state: a resumed
    /// simulator starts with checkpointing off unless re-enabled.
    pub checkpoint_every: u64,
    /// Directory periodic checkpoints are written into as
    /// `ckpt-<cycle>.ckpt`; `None` means the current directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Forward-progress watchdog window: if no SM issues an instruction
    /// for this many consecutive cycles while work remains, the run fails
    /// with [`SimError::Deadlock`] carrying a full diagnostic report.
    /// `0` disables the watchdog. Like `checkpoint_every`, transient
    /// driver config — never serialized into checkpoints.
    pub watchdog: u64,
    /// While set, streams park in front of a marker with this label instead
    /// of popping it — the cross-stream barrier behind
    /// [`run_to_marker`](Self::run_to_marker). Transient; never serialized.
    hold_at_marker: Option<String>,
    /// Host-clock self-profiler; `None` (the default) keeps every
    /// wall-clock read off the hot path. Transient driver state like the
    /// watchdog — never serialized; a restored simulator starts unprofiled.
    host: Option<Box<HostProfiler>>,
    /// Reused buffer for memory-system completions, so the steady-state
    /// cycle loop allocates nothing. Always empty between cycles.
    scratch_completions: Vec<Completion>,
    /// Reused buffer for per-SM cycle outputs on the serial path (the
    /// sharded path buffers into each shard). Always empty between cycles.
    scratch_outs: Vec<CycleOutput>,
}

/// Uniform view over `Sm` and `&mut Sm`, so the driver helpers accept both
/// the serial loop's owned `&mut [Sm]` and the sharded loop's per-cycle
/// `Vec<&mut Sm>` (borrowed out of shard guards). This is what lets the
/// serial hot path run without building a reference vector every cycle.
trait AsSm {
    fn sm(&self) -> &Sm;
    fn sm_mut(&mut self) -> &mut Sm;
}

impl AsSm for Sm {
    fn sm(&self) -> &Sm {
        self
    }
    fn sm_mut(&mut self) -> &mut Sm {
        self
    }
}

impl AsSm for &mut Sm {
    fn sm(&self) -> &Sm {
        self
    }
    fn sm_mut(&mut self) -> &mut Sm {
        self
    }
}

/// Lap timer for the driver's per-cycle phases. Laps are contiguous — each
/// `switch` closes the running phase at the instant the next one starts —
/// so driver phase times sum to the loop's wall-clock with no gaps. Every
/// method is a no-op (one branch, no clock read) when profiling is off.
struct PhaseClock {
    t: Option<Instant>,
    phase: HostPhase,
}

impl PhaseClock {
    fn start(on: bool, phase: HostPhase) -> Self {
        if on {
            set_alloc_phase(phase);
        }
        PhaseClock {
            t: on.then(Instant::now),
            phase,
        }
    }

    /// Close the running lap into `host` and begin `next`.
    fn switch(&mut self, host: &mut Option<Box<HostProfiler>>, next: HostPhase) {
        if let (Some(t), Some(h)) = (self.t.as_mut(), host.as_mut()) {
            let now = Instant::now();
            h.add(self.phase, (now - *t).as_nanos() as u64);
            *t = now;
            self.phase = next;
            set_alloc_phase(next);
        }
    }

    /// Close the final lap.
    fn finish(self, host: &mut Option<Box<HostProfiler>>) {
        if let (Some(t), Some(h)) = (self.t, host.as_mut()) {
            h.add(self.phase, t.elapsed().as_nanos() as u64);
        }
    }
}

impl GpuSim {
    /// Internal constructor behind the builder.
    pub(crate) fn with_spec(cfg: GpuConfig, spec: PartitionSpec) -> Self {
        let mem = MemSystem::new(cfg.mem_config());
        let sms = mem
            .make_ports()
            .into_iter()
            .enumerate()
            .map(|(i, port)| Sm::new(i, cfg.sm, port))
            .collect();
        GpuSim {
            mem,
            sms,
            spec,
            threads: cfg.threads.max(1),
            streams: Vec::new(),
            source: None,
            residency_telemetry: false,
            slicer: None,
            now: 0,
            stats: BTreeMap::new(),
            occupancy: Vec::new(),
            ipc_timeline: Vec::new(),
            last_issued_snapshot: BTreeMap::new(),
            occupancy_interval: 2_000,
            composition_interval: 0,
            counter_interval: 0,
            composition_timeline: Vec::new(),
            recorder: None,
            counter_prev_issued: BTreeMap::new(),
            counter_prev_dram: BTreeMap::new(),
            counter_prev_l1: (0, 0),
            counter_prev_l2: (0, 0),
            cta_seq: 0,
            last_progress: 0,
            rr_offset: 0,
            allowed_sms: BTreeMap::new(),
            kernel_log: Vec::new(),
            checkpoint_every: 0,
            checkpoint_dir: None,
            watchdog: DEFAULT_WATCHDOG,
            hold_at_marker: None,
            host: None,
            scratch_completions: Vec::new(),
            scratch_outs: Vec::new(),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Load a fully-materialized bundle of streams. Equivalent to
    /// [`attach`](Self::attach) with [`TraceSource::from_bundle`]; prefer
    /// `attach` with a streaming source to keep only in-flight CTAs in RAM.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if a two-stream policy is given a bundle
    /// without exactly two streams.
    pub fn load(&mut self, bundle: TraceBundle) {
        self.attach(TraceSource::from_bundle(bundle));
    }

    /// Attach a [`TraceSource`] and configure stream-dependent partitioning
    /// (MiG bank masks, TAP controller, warped-slicer). CTA instruction
    /// payloads are demand-paged through the source at dispatch and dropped
    /// at commit, so a streaming source keeps only the in-flight window
    /// resident.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if a two-stream policy is given a source
    /// without exactly two streams.
    pub fn attach(&mut self, source: TraceSource) {
        assert!(self.streams.is_empty(), "load() may only be called once");
        let metas: Vec<crisp_trace::StreamMeta> = source.streams().to_vec();
        let mut ids: Vec<StreamId> = metas.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        // Graphics stream first for slicer convention.
        let ordered_pair = || -> (StreamId, StreamId) {
            assert_eq!(
                ids.len(),
                2,
                "this partition policy expects exactly two streams"
            );
            let g = metas
                .iter()
                .find(|s| s.kind == StreamKind::Graphics)
                .map(|s| s.id)
                .unwrap_or(ids[0]);
            let other = if ids[0] == g { ids[1] } else { ids[0] };
            (g, other)
        };
        match &self.spec.l2 {
            L2Policy::Shared => {}
            L2Policy::BankSplit => {
                let (a, b) = ordered_pair();
                self.mem
                    .set_bank_map(BankMap::mig_even_split(self.cfg.l2_banks, a, b));
            }
            L2Policy::Tap(tap_cfg) => {
                let sets_per_bank =
                    self.cfg.l2_bytes / self.cfg.l2_banks as u64 / 128 / self.cfg.l2_assoc as u64;
                let tap =
                    TapController::new(ids.clone(), sets_per_bank, self.cfg.l2_assoc, *tap_cfg);
                self.mem.set_partition(SetPartition::Tap(tap));
            }
        }
        if let SmPartition::IntraSmDynamic(slicer_cfg) = &self.spec.sm {
            let (a, b) = ordered_pair();
            self.slicer = Some(WarpedSlicer::new(slicer_cfg.clone(), a, b));
        }
        for s in &metas {
            let mut mask = vec![false; self.cfg.n_sms];
            for sm in self.spec.sms_for(s.id, self.cfg.n_sms) {
                mask[sm] = true;
            }
            self.allowed_sms.insert(s.id, mask);
        }
        for s in metas {
            self.stats.entry(s.id).or_default();
            self.streams.push(StreamState {
                id: s.id,
                kind: s.kind,
                commands: s.commands,
                next_cmd: 0,
                current: None,
                started: false,
                finished: false,
            });
        }
        self.streams.sort_by_key(|s| s.id);
        self.source = Some(source);
    }

    /// The attached trace source, if any (post-run residency inspection).
    pub fn source(&self) -> Option<&TraceSource> {
        self.source.as_ref()
    }

    /// Worker threads the cycle loop will use (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override the worker-thread count (also settable via
    /// [`GpuConfig::threads`]). Results are identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Turn on host-clock self-profiling with a heartbeat every
    /// `heartbeat_interval` simulated cycles (0 = no heartbeats). The
    /// builder's `.host_profile(true)` does this for you; profiling is
    /// purely observational and never changes simulated results.
    pub fn enable_host_profile(&mut self, heartbeat_interval: u64) {
        self.host = Some(Box::new(HostProfiler::new(heartbeat_interval)));
    }

    /// Adopt an already-running profiler — the builder starts one early so
    /// pre-flight validation, static analysis, and fast-forward are timed
    /// too, then hands it over here.
    pub(crate) fn install_host_profiler(&mut self, host: Option<Box<HostProfiler>>) {
        if host.is_some() {
            self.host = host;
        }
    }

    /// Install (or drop) the span/counter recorder. The builder calls this
    /// from its `telemetry` flags; directly-constructed `GpuSim`s keep
    /// recording off. All recording happens on the driving thread, so the
    /// timeline is bit-identical at any worker-thread count.
    pub fn set_telemetry(&mut self, spans: bool, counters: bool) {
        self.recorder = if spans || counters {
            Some(TraceRecorder::new(self.sms.len(), spans, counters))
        } else {
            None
        };
    }

    /// Run to completion.
    ///
    /// When [`checkpoint_every`](Self::checkpoint_every) is non-zero, a
    /// checkpoint is written into [`checkpoint_dir`](Self::checkpoint_dir)
    /// at every multiple of that cycle count.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleBudgetExceeded`] past `cfg.max_cycles`,
    /// [`SimError::Deadlock`] when no SM issues an instruction for
    /// [`watchdog`](Self::watchdog) cycles with work remaining,
    /// [`SimError::WorkerPanic`] when a sharded worker thread panics, and
    /// [`SimError::CheckpointIo`] when a periodic checkpoint cannot be
    /// written. The hang-shaped errors carry a [`DeadlockReport`], the
    /// partial [`SimResult`], and — when a checkpoint directory is
    /// configured — the path of an emergency checkpoint that
    /// [`Simulation::resume`](crate::Simulation::resume) accepts.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        if let Some(interval) = std::num::NonZeroU64::new(self.checkpoint_every) {
            loop {
                let boundary =
                    (self.now / interval.get() + 1).saturating_mul(self.checkpoint_every);
                if self.run_segment(Some(boundary))? {
                    break;
                }
                let dir = self.checkpoint_dir.clone().unwrap_or_default();
                let path = dir.join(format!("ckpt-{}.ckpt", self.now));
                let ckpt_start = self.host.as_ref().map(|h| {
                    set_alloc_phase(HostPhase::CheckpointIo);
                    h.elapsed_ns()
                });
                if let Err(e) = self.save_checkpoint(&path) {
                    return Err(SimError::CheckpointIo {
                        cycle: self.now,
                        path,
                        source: e,
                    });
                }
                if let Some(t0) = ckpt_start {
                    let label = format!("ckpt-{}", self.now);
                    let h = self.host.as_mut().expect("checked above");
                    h.span_end(HostPhase::CheckpointIo, &label, t0);
                }
            }
        } else {
            self.run_segment(None)?;
        }
        Ok(self.result())
    }

    /// [`run`](Self::run) that panics with the rendered diagnostic on
    /// failure — the shim for benches and throwaway scripts where a
    /// `Result` is just ceremony.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`], with the full diagnostic as the message.
    pub fn run_or_panic(&mut self) -> SimResult {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Advance until no work remains or `cycle` is reached, whichever comes
    /// first. Returns `true` when the simulation finished. Continue with
    /// another `run_until` or a final [`GpuSim::run`] for the result.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GpuSim::run`].
    pub fn run_until(&mut self, cycle: u64) -> Result<bool, SimError> {
        self.run_segment(Some(cycle))
    }

    /// Run in detail until every stream is parked in front of its next
    /// `label` marker and the machine has drained — the marker acts as a
    /// cross-stream barrier. Streams without such a marker simply run to
    /// completion. Returns the cycle the barrier was reached; a subsequent
    /// [`run`](Self::run) releases all streams in the same cycle.
    ///
    /// This is the detailed-mode counterpart of
    /// [`fast_forward_to_marker`](Self::fast_forward_to_marker): both leave
    /// every stream aligned at the marker, so a sampled region of interest
    /// can be compared against a detailed reference with identical phasing.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GpuSim::run`].
    pub fn run_to_marker(&mut self, label: &str) -> Result<u64, SimError> {
        self.hold_at_marker = Some(label.to_string());
        let r = self.run_segment(None);
        self.hold_at_marker = None;
        r.map(|_| self.now)
    }

    /// Shared driver behind [`run`](Self::run) and
    /// [`run_until`](Self::run_until): pick serial or sharded execution and
    /// advance until done or the cycle limit. Returns `true` when all work
    /// has drained. A loop violation is converted into a full [`SimError`]
    /// here, after the parallel path has merged shard SMs back into `self`,
    /// so the diagnostic covers every SM even when a worker panicked.
    fn run_segment(&mut self, limit: Option<u64>) -> Result<bool, SimError> {
        // More workers than SMs would just idle; never exceed one SM/worker.
        let workers = self.threads.min(self.sms.len().max(1));
        let r = if workers > 1 {
            self.run_parallel(workers, limit)
        } else {
            self.run_serial(limit)
        };
        r.map_err(|v| self.failure(v))
    }

    fn run_serial(&mut self, limit: Option<u64>) -> Result<bool, Violation> {
        while self.work_remains() {
            if limit.is_some_and(|l| self.now >= l) {
                return Ok(false);
            }
            self.step().map_err(|e| Violation::TraceIo(e.to_string()))?;
            if let Some(v) = self.budget_violation() {
                return Err(v);
            }
        }
        Ok(true)
    }

    fn work_remains(&self) -> bool {
        self.streams
            .iter()
            .any(|s| s.work_remains() && !self.parked(s))
            || self.sms.iter().any(Sm::busy)
            || !self.mem.quiescent()
    }

    /// Whether `st` is waiting at the held barrier marker: its previous
    /// kernel completed and the marker is next in line.
    fn parked(&self, st: &StreamState) -> bool {
        self.hold_at_marker.as_deref().is_some_and(|hold| {
            st.current.is_none() && matches!(st.front(), Some(CommandMeta::Marker(l)) if l == hold)
        })
    }

    /// Like [`work_remains`](Self::work_remains) but over SMs that have been
    /// moved out of `self` (the cycle loop holds them — owned on the serial
    /// path, borrowed out of shards on the parallel path).
    fn work_remains_in<S: AsSm>(&self, sms: &[S]) -> bool {
        self.streams
            .iter()
            .any(|s| s.work_remains() && !self.parked(s))
            || sms.iter().any(|sm| sm.sm().busy())
            || !self.mem.quiescent()
    }

    /// Whether the whole memory hierarchy — shared L2/DRAM *and* every SM's
    /// private L1/MSHRs/egress — has drained.
    fn hierarchy_quiescent<S: AsSm>(&self, sms: &[S]) -> bool {
        self.mem.quiescent() && sms.iter().all(|sm| sm.sm().port().quiescent())
    }

    fn budget_violation(&self) -> Option<Violation> {
        if self.now > self.cfg.max_cycles {
            return Some(Violation::Budget);
        }
        if self.watchdog > 0 && self.now - self.last_progress >= self.watchdog {
            return Some(Violation::Stall);
        }
        None
    }

    /// Per-stream dispatch frontier, for diagnostics.
    fn stream_frontier(&self) -> Vec<StreamFrontier> {
        self.streams
            .iter()
            .map(|s| StreamFrontier {
                id: s.id,
                finished: s.finished,
                kernel: s.current.as_ref().map(|k| k.info.name.clone()),
                next_cta: s.current.as_ref().map_or(0, |k| k.next_cta),
                grid: s.current.as_ref().map_or(0, |k| k.info.grid),
                outstanding: s.current.as_ref().map_or(0, |k| k.outstanding),
                commands_left: s.commands.len() - s.next_cmd,
            })
            .collect()
    }

    /// The full diagnostic snapshot attached to hang-shaped [`SimError`]s:
    /// per-stream frontier plus per-SM scheduling state. Built on the
    /// driving thread from architectural state only, so serial and sharded
    /// runs produce identical reports at the same cycle.
    pub fn deadlock_report(&self) -> DeadlockReport {
        DeadlockReport {
            cycle: self.now,
            last_progress: self.last_progress,
            streams: self.stream_frontier(),
            sms: self.sms.iter().map(Sm::diagnostics).collect(),
        }
    }

    /// Convert a loop [`Violation`] into a [`SimError`]: snapshot the
    /// diagnostic report, stamp the telemetry timeline, write an emergency
    /// checkpoint when a checkpoint directory is configured (best-effort),
    /// and capture the partial result. `result()` consumes the recorder,
    /// so it runs last.
    fn failure(&mut self, v: Violation) -> SimError {
        // Trace I/O failures are not hang-shaped: the machine state is
        // whatever it was when the read failed, so no diagnostic report or
        // emergency checkpoint (which would need the broken source) is made.
        if let Violation::TraceIo(message) = v {
            return SimError::TraceIo {
                cycle: self.now,
                message,
            };
        }
        let report = self.deadlock_report();
        let label = match &v {
            Violation::Budget => "crisp:budget-exceeded",
            Violation::Stall => "crisp:watchdog",
            Violation::WorkerPanic(_) => "crisp:worker-panic",
            Violation::TraceIo(_) => unreachable!("handled above"),
        };
        let now = self.now;
        if let Some(rec) = self.recorder.as_mut() {
            for s in &report.streams {
                if !s.finished {
                    rec.marker(s.id.0, label, now);
                }
            }
        }
        let emergency_checkpoint = self.checkpoint_dir.clone().and_then(|dir| {
            let path = dir.join(format!("emergency-{}.ckpt", self.now));
            self.save_checkpoint(&path).ok().map(|()| path)
        });
        let partial = self.result();
        let ctx = Box::new(HangContext {
            cycle: report.cycle,
            last_progress: report.last_progress,
            report,
            partial,
            emergency_checkpoint,
        });
        match v {
            Violation::Budget => SimError::CycleBudgetExceeded {
                max_cycles: self.cfg.max_cycles,
                ctx,
            },
            Violation::Stall => SimError::Deadlock {
                window: self.watchdog,
                ctx,
            },
            Violation::WorkerPanic(message) => SimError::WorkerPanic { message, ctx },
            Violation::TraceIo(_) => unreachable!("handled above"),
        }
    }

    /// Advance exactly one cycle (exposed for incremental drivers).
    ///
    /// # Errors
    ///
    /// Propagates trace-source I/O errors from demand-paging a CTA.
    pub fn step(&mut self) -> io::Result<()> {
        let mut sms = std::mem::take(&mut self.sms);
        let now = self.now;
        let mut clock = PhaseClock::start(self.host.is_some(), HostPhase::Dispatch);
        self.advance_streams(now, &mut sms[..]);
        let issued = self.issue_ctas(now, &mut sms[..]);
        if issued.is_ok() {
            clock.switch(&mut self.host, HostPhase::Execute);
            // Buffer the outputs and absorb after the loop, exactly like the
            // sharded path does per shard — same absorb order (ascending SM
            // id), and the buffer is reused so the steady state stays
            // allocation-free.
            let mut outs = std::mem::take(&mut self.scratch_outs);
            for sm in sms.iter_mut() {
                if sm.busy() {
                    outs.push(sm.cycle(now));
                }
            }
            clock.switch(&mut self.host, HostPhase::Dispatch);
            for out in outs.drain(..) {
                self.absorb_output(now, out);
            }
            self.scratch_outs = outs;
            clock.finish(&mut self.host);
            self.finish_cycle(now, &mut sms[..]);
        } else {
            clock.finish(&mut self.host);
        }
        self.sms = sms;
        if issued.is_ok() {
            self.now += 1;
        }
        issued
    }

    /// Fold one SM's cycle output into global accounting: progress
    /// watchdog, per-stream CTA/kernel completion, the kernel log.
    fn absorb_output(&mut self, now: u64, out: crisp_sm::CycleOutput) {
        if out.issued > 0 {
            self.last_progress = now;
        }
        for commit in out.commits {
            if let Some(rec) = self.recorder.as_mut() {
                rec.cta_committed(commit.seq, now);
            }
            // The CTA retired: drop its instruction slice from the trace
            // source's resident window (other warps of the same CTA on
            // other slots keep their Arc alive until they retire too).
            if let Some(src) = self.source.as_mut() {
                src.release_cta(commit.kernel, commit.cta_index);
            }
            let stats = self.stats.get_mut(&commit.stream).expect("registered");
            stats.ctas += 1;
            let st = self
                .streams
                .iter_mut()
                .find(|s| s.id == commit.stream)
                .expect("stream exists");
            let done = {
                let r = st.current.as_mut().expect("commit for a running kernel");
                r.outstanding -= 1;
                r.outstanding == 0 && r.next_cta >= r.info.grid
            };
            if done {
                let r = st.current.take().expect("running kernel");
                stats.kernels += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.kernel_span(
                        commit.stream.0,
                        &r.info.name,
                        r.start_cycle,
                        now,
                        r.info.grid as u64,
                    );
                }
                self.kernel_log.push(KernelRecord {
                    stream: commit.stream,
                    name: r.info.name.clone(),
                    start_cycle: r.start_cycle,
                    end_cycle: now,
                    ctas: r.info.grid as u64,
                });
            }
        }
    }

    /// Everything after the per-SM compute phase: drain the ports through
    /// the shared memory system, deliver completions, tick the slicer,
    /// sample telemetry.
    fn finish_cycle<S: AsSm + AsMut<crisp_mem::SmMemPort>>(&mut self, now: u64, sms: &mut [S]) {
        let mut tick_times = self.host.is_some().then(TickTimes::default);
        if self.host.is_some() {
            set_alloc_phase(HostPhase::MemTick);
        }
        self.mem
            .tick_into(now, sms, &mut self.scratch_completions, tick_times.as_mut());
        for c in &self.scratch_completions {
            sms[c.token.sm as usize]
                .sm_mut()
                .on_mem_completion(c.token.id);
        }
        if let (Some(tt), Some(h)) = (tick_times, self.host.as_mut()) {
            h.add(HostPhase::PortDrain, tt.drain_ns);
            h.add(HostPhase::MemTick, tt.mem_ns);
        }
        let telemetry_lap = self.host.as_ref().map(|_| {
            set_alloc_phase(HostPhase::Telemetry);
            Instant::now()
        });
        self.slicer_tick(now, sms);
        if self.occupancy_interval > 0 && now.is_multiple_of(self.occupancy_interval) {
            self.sample_occupancy(now, sms);
        }
        if self.composition_interval > 0 && now > 0 && now.is_multiple_of(self.composition_interval)
        {
            self.composition_timeline
                .push((now, self.mem.l2_composition()));
        }
        if self.counter_interval > 0
            && now > 0
            && now.is_multiple_of(self.counter_interval)
            && self
                .recorder
                .as_ref()
                .is_some_and(TraceRecorder::records_counters)
        {
            self.sample_counters(now, sms);
        }
        if self.host.as_ref().is_some_and(|h| h.heartbeat_due(now)) {
            self.record_heartbeat(now, sms);
        }
        if let Some(t) = telemetry_lap {
            let ns = t.elapsed().as_nanos() as u64;
            let h = self.host.as_mut().expect("lap only taken with profiler");
            h.add(HostPhase::Telemetry, ns);
            set_alloc_phase(HostPhase::Dispatch);
        }
    }

    /// Record one heartbeat sample: throughput since the previous beat,
    /// resident trace window, and shard skew from per-SM instruction
    /// deltas. Heartbeats are rare (default every 100k cycles), so the
    /// per-SM scratch vector here is off the steady-state path.
    fn record_heartbeat<S: AsSm>(&mut self, now: u64, sms: &[S]) {
        let per_sm: Vec<u64> = sms
            .iter()
            .map(|s| {
                let sm = s.sm();
                self.stats.keys().map(|&id| sm.issued_for(id)).sum()
            })
            .collect();
        let resident = self.source.as_ref().map_or(0, |s| s.stats().resident_bytes);
        let h = self.host.as_mut().expect("caller checked");
        h.heartbeat(now, resident, &per_sm);
    }

    /// Sample the counter series into the trace: per-stream IPC and DRAM
    /// traffic, plus windowed L1/L2 hit rates. Deltas use `saturating_sub`
    /// because [`CLEAR_STATS_MARKER`] can reset the underlying cumulative
    /// statistics mid-run.
    fn sample_counters<S: AsSm>(&mut self, now: u64, sms: &[S]) {
        let interval = self.counter_interval as f64;
        let mut samples: Vec<(String, f64)> = Vec::new();
        for st in &self.streams {
            let total: u64 = sms.iter().map(|sm| sm.sm().issued_for(st.id)).sum();
            let prev = self.counter_prev_issued.insert(st.id, total).unwrap_or(0);
            samples.push((
                format!("{}/ipc", st.id),
                total.saturating_sub(prev) as f64 / interval,
            ));
            let dram = self.mem.dram_bytes(st.id);
            let prev = self.counter_prev_dram.insert(st.id, dram).unwrap_or(0);
            samples.push((
                format!("{}/dram_bytes", st.id),
                dram.saturating_sub(prev) as f64,
            ));
        }
        let mut l1 = (0u64, 0u64);
        for sm in sms.iter() {
            let t = sm.sm().port().stats().totals();
            l1.0 += t.accesses;
            l1.1 += t.hits;
        }
        let window = (
            l1.0.saturating_sub(self.counter_prev_l1.0),
            l1.1.saturating_sub(self.counter_prev_l1.1),
        );
        self.counter_prev_l1 = l1;
        samples.push((
            "l1/hit_rate".to_string(),
            if window.0 == 0 {
                0.0
            } else {
                window.1 as f64 / window.0 as f64
            },
        ));
        let t = self.mem.l2_stats_total().totals();
        let l2 = (t.accesses, t.hits);
        let window = (
            l2.0.saturating_sub(self.counter_prev_l2.0),
            l2.1.saturating_sub(self.counter_prev_l2.1),
        );
        self.counter_prev_l2 = l2;
        samples.push((
            "l2/hit_rate".to_string(),
            if window.0 == 0 {
                0.0
            } else {
                window.1 as f64 / window.0 as f64
            },
        ));
        let rec = self.recorder.as_mut().expect("caller checked recorder");
        for (name, v) in samples {
            rec.counter(now, name, v);
        }
    }

    /// Pop markers and begin the next kernel of each idle stream.
    fn advance_streams<S: AsSm>(&mut self, now: u64, sms: &mut [S]) {
        for si in 0..self.streams.len() {
            loop {
                if self.streams[si].current.is_some() {
                    break;
                }
                // The stats-clear marker acts as a full barrier: wait for
                // in-flight stores to drain so the cleared counters reflect
                // only post-marker (steady-state) traffic.
                if matches!(self.streams[si].front(),
                    Some(CommandMeta::Marker(l)) if l == CLEAR_STATS_MARKER)
                    && !self.hierarchy_quiescent(&*sms)
                {
                    break;
                }
                // A held marker is a cross-stream barrier: park in front of
                // it (run_to_marker ends once every stream is parked).
                if self.parked(&self.streams[si]) {
                    break;
                }
                let Some(cmd) = self.streams[si].front().cloned() else {
                    if !self.streams[si].finished && self.streams[si].started {
                        self.streams[si].finished = true;
                        let id = self.streams[si].id;
                        self.stats
                            .get_mut(&id)
                            .expect("stream registered")
                            .finish_cycle = now;
                    }
                    break;
                };
                self.streams[si].next_cmd += 1;
                match cmd {
                    CommandMeta::Marker(label) => {
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.marker(self.streams[si].id.0, &label, now);
                        }
                        if label == CLEAR_STATS_MARKER {
                            self.mem.clear_stats();
                            for sm in sms.iter_mut() {
                                sm.sm_mut().port_mut().clear_stats();
                            }
                        }
                        // Drawcall boundary: dynamic partitions reset here.
                        self.reset_slicer(now, sms);
                    }
                    CommandMeta::Launch { kernel, info } => {
                        let id = self.streams[si].id;
                        if !self.streams[si].started {
                            self.streams[si].started = true;
                            self.stats.get_mut(&id).expect("registered").start_cycle = now;
                        }
                        if self.streams[si].kind == StreamKind::Compute {
                            // Kernel-launch boundary resets the partition too.
                            self.reset_slicer(now, sms);
                        }
                        {
                            // Fail fast on kernels whose CTAs can never be
                            // placed (instead of spinning to the progress
                            // watchdog). Geometry is in the directory, so
                            // this needs no instruction payload.
                            let res = CtaResources::of_info(&info);
                            let sm = &self.cfg.sm;
                            assert!(
                                res.threads <= sm.max_threads
                                    && res.warps <= sm.max_warps
                                    && res.regs <= sm.max_regs
                                    && res.smem <= sm.max_smem,
                                "kernel '{}' needs {res:?} per CTA, which exceeds the SM's \
                                 physical resources",
                                info.name
                            );
                        }
                        if info.grid == 0 {
                            // Empty launch completes instantly.
                            self.stats.get_mut(&id).expect("registered").kernels += 1;
                            if let Some(rec) = self.recorder.as_mut() {
                                rec.kernel_span(id.0, &info.name, now, now, 0);
                            }
                            self.kernel_log.push(KernelRecord {
                                stream: id,
                                name: info.name.clone(),
                                start_cycle: now,
                                end_cycle: now,
                                ctas: 0,
                            });
                            continue;
                        }
                        self.streams[si].current = Some(RunningKernel {
                            kernel,
                            info,
                            next_cta: 0,
                            outstanding: 0,
                            start_cycle: now,
                        });
                    }
                }
            }
        }
    }

    fn reset_slicer<S: AsSm>(&mut self, now: u64, sms: &mut [S]) {
        if let Some(sl) = self.slicer.as_mut() {
            sl.on_reset(now);
            let streams = sl.streams();
            for sm in sms.iter_mut() {
                for s in streams {
                    let _ = sm.sm_mut().take_window_issued(s);
                }
            }
        }
    }

    fn quota_for(&self, sm_id: usize, stream: StreamId) -> ResourceQuota {
        if let Some(sl) = &self.slicer {
            // Partitioning against a partner that has retired every command
            // is meaningless — and can starve the survivor forever: the
            // slicer only re-samples at the *partner's* kernel/drawcall
            // boundaries, so an applied ratio too small for the survivor's
            // next CTA would never be revisited. Hand the survivor the
            // whole SM; physical capacity checks still apply in fits().
            let [a, b] = sl.streams();
            let partner = if stream == a {
                Some(b)
            } else if stream == b {
                Some(a)
            } else {
                None
            };
            if let Some(p) = partner {
                let drained = self
                    .streams
                    .iter()
                    .any(|s| s.id == p && s.finished && s.current.is_none());
                if drained {
                    return ResourceQuota::unlimited();
                }
            }
            return sl.quota_for(sm_id, stream, &self.cfg.sm);
        }
        self.spec.static_quota(stream, &self.cfg.sm)
    }

    /// Issue at most one CTA per SM per cycle, honouring the partition.
    /// The CTA's instruction slice is demand-paged through the trace
    /// source here — the first (and only) decode of that CTA's payload.
    fn issue_ctas<S: AsSm>(&mut self, now: u64, sms: &mut [S]) -> io::Result<()> {
        let n_streams = self.streams.len();
        if n_streams == 0 {
            return Ok(());
        }
        // Rotate the stream priority in non-greedy modes so no stream is
        // structurally favoured; greedy always starts from stream 0.
        let greedy = matches!(self.spec.sm, SmPartition::Greedy);
        let start = if greedy {
            0
        } else {
            self.rr_offset % n_streams
        };
        self.rr_offset += 1;
        for sm_id in 0..sms.len() {
            for k in 0..n_streams {
                let si = (start + k) % n_streams;
                let (id, pending) = {
                    let st = &self.streams[si];
                    let p = st.current.as_ref().and_then(|r| {
                        (r.next_cta < r.info.grid).then(|| (r.kernel, r.info.clone(), r.next_cta))
                    });
                    (st.id, p)
                };
                let Some((kernel, info, cta_index)) = pending else {
                    continue;
                };
                // Inter-SM partitions restrict which SMs a stream may use.
                if !self.allowed_sms.get(&id).is_none_or(|m| m[sm_id]) {
                    continue;
                }
                let quota = self.quota_for(sm_id, id);
                let res = CtaResources::of_info(&info);
                if !sms[sm_id].sm().fits(id, res, quota) {
                    continue;
                }
                let cta = self
                    .source
                    .as_mut()
                    .expect("a trace source is attached before running")
                    .fetch_cta(kernel, cta_index)?;
                let running = self.streams[si].current.as_mut().expect("pending checked");
                let seq = self.cta_seq;
                let work = CtaWork {
                    stream: id,
                    kernel,
                    info,
                    cta,
                    cta_index,
                    seq,
                };
                self.cta_seq += 1;
                running.next_cta += 1;
                running.outstanding += 1;
                sms[sm_id].sm_mut().launch_cta(work);
                if let Some(rec) = self.recorder.as_mut() {
                    rec.cta_issued(seq, sm_id as u32, id.0, cta_index, now);
                }
                self.last_progress = self.now;
                break; // one CTA per SM per cycle
            }
        }
        Ok(())
    }

    fn slicer_tick<S: AsSm>(&mut self, now: u64, sms: &mut [S]) {
        let Some(sl) = self.slicer.as_mut() else {
            return;
        };
        if !sl.is_sampling() {
            return;
        }
        let n = sms.len();
        let _ = sl.maybe_decide(now, n, |sm, stream| {
            sms[sm].sm_mut().take_window_issued(stream)
        });
    }

    fn sample_occupancy<S: AsSm>(&mut self, now: u64, sms: &[S]) {
        let mut by_stream = BTreeMap::new();
        let mut issued_delta = BTreeMap::new();
        for st in &self.streams {
            let mean: f64 = sms
                .iter()
                .map(|sm| sm.sm().resources().stream_warp_occupancy(st.id))
                .sum::<f64>()
                / sms.len() as f64;
            by_stream.insert(st.id, mean);
            let total: u64 = sms.iter().map(|sm| sm.sm().issued_for(st.id)).sum();
            let prev = self.last_issued_snapshot.insert(st.id, total).unwrap_or(0);
            issued_delta.insert(st.id, total - prev);
        }
        self.occupancy.push(OccupancySample {
            cycle: now,
            by_stream,
        });
        self.ipc_timeline.push((now, issued_delta));
    }

    /// The sharded cycle loop: `workers` persistent threads each own a
    /// contiguous slice of SMs and tick them concurrently; everything that
    /// crosses SM boundaries happens on this thread between generations.
    ///
    /// Determinism: the compute phase of a cycle is embarrassingly parallel
    /// (each SM only touches its own state and its private
    /// [`crisp_mem::SmMemPort`]); the shared [`MemSystem`] then drains every
    /// port's egress in ascending SM-id order, which is exactly the order
    /// the serial loop pushes requests — so results are bit-identical.
    ///
    /// Returns `Ok(true)` when all work drained, `Ok(false)` when the cycle
    /// `limit` was reached first, and a [`Violation`] as `Err` instead of
    /// panicking inside the thread scope (a panic there would strand
    /// waiting workers). Worker panics are caught at the shard barrier
    /// (`catch_unwind` around the shard tick), surfaced as
    /// [`Violation::WorkerPanic`] with the first payload, and the shard's
    /// SMs are recovered for the diagnostic report.
    fn run_parallel(&mut self, workers: usize, limit: Option<u64>) -> Result<bool, Violation> {
        use std::sync::{Condvar, Mutex};

        struct Shard {
            sms: Vec<Sm>,
            out: Vec<crisp_sm::CycleOutput>,
            /// Wall-clock this shard's worker spent ticking its SMs
            /// (host profiling only; stays 0 otherwise).
            exec_ns: u64,
            /// Wall-clock the worker spent blocked at the generation
            /// barrier waiting for the driver's serial phases.
            wait_ns: u64,
            /// Generations the worker timed (= cycles it participated in).
            cycles: u64,
        }

        /// Generation-counted barrier state, guarded by one mutex.
        struct BarrierState {
            /// Advances once per cycle; workers run when it passes theirs.
            gen: u64,
            /// Cycle number for the current generation.
            now: u64,
            /// Workers that have finished the current generation.
            done: usize,
            quit: bool,
            /// A worker panicked while ticking its shard.
            poisoned: bool,
            /// The first caught panic payload, rendered.
            panic_msg: Option<String>,
        }

        struct Ctrl {
            state: Mutex<BarrierState>,
            /// Signalled by the driver when `gen` advances or `quit` is set.
            go: Condvar,
            /// Signalled by the last worker of a generation.
            all_done: Condvar,
        }

        // Lock even if a worker panicked while holding the mutex; the
        // poisoned flag is handled explicitly below.
        fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        let n_sms = self.sms.len();
        let chunk = n_sms.div_ceil(workers);
        let mut pool = std::mem::take(&mut self.sms);
        let mut shards: Vec<Mutex<Shard>> = Vec::new();
        while !pool.is_empty() {
            let rest = pool.split_off(chunk.min(pool.len()));
            shards.push(Mutex::new(Shard {
                sms: pool,
                out: Vec::new(),
                exec_ns: 0,
                wait_ns: 0,
                cycles: 0,
            }));
            pool = rest;
        }
        let shards = &shards;
        let n_workers = shards.len();
        let ctrl = &Ctrl {
            state: Mutex::new(BarrierState {
                gen: 0,
                now: 0,
                done: 0,
                quit: false,
                poisoned: false,
                panic_msg: None,
            }),
            go: Condvar::new(),
            all_done: Condvar::new(),
        };

        let profiling = self.host.is_some();
        if let Some(h) = self.host.as_mut() {
            h.set_workers(n_workers);
        }
        let mut violation: Option<Violation> = None;
        let mut finished = false;
        std::thread::scope(|scope| {
            for shard in shards.iter() {
                scope.spawn(move || {
                    let mut my_gen = 0u64;
                    if profiling {
                        // Everything a worker allocates is warp execution.
                        set_alloc_phase(HostPhase::Execute);
                    }
                    loop {
                        let wait_t = profiling.then(Instant::now);
                        let now = {
                            let mut st = lock(&ctrl.state);
                            while st.gen == my_gen && !st.quit {
                                st = ctrl
                                    .go
                                    .wait(st)
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                            }
                            if st.quit {
                                return;
                            }
                            my_gen = st.gen;
                            st.now
                        };
                        let wait_ns = wait_t.map(|t| t.elapsed().as_nanos() as u64);
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut g = lock(shard);
                            let sh = &mut *g;
                            sh.out.clear();
                            let exec_t = wait_ns.map(|_| Instant::now());
                            for sm in sh.sms.iter_mut() {
                                let out = if sm.busy() {
                                    sm.cycle(now)
                                } else {
                                    crisp_sm::CycleOutput::default()
                                };
                                sh.out.push(out);
                            }
                            if let (Some(t), Some(w)) = (exec_t, wait_ns) {
                                sh.exec_ns += t.elapsed().as_nanos() as u64;
                                sh.wait_ns += w;
                                sh.cycles += 1;
                            }
                        }));
                        let mut st = lock(&ctrl.state);
                        if let Err(payload) = r {
                            st.poisoned = true;
                            if st.panic_msg.is_none() {
                                st.panic_msg = Some(panic_message(payload.as_ref()));
                            }
                        }
                        st.done += 1;
                        if st.done == n_workers {
                            ctrl.all_done.notify_one();
                        }
                    }
                });
            }

            loop {
                if limit.is_some_and(|l| self.now >= l) {
                    break;
                }
                let now = self.now;
                let mut clock = PhaseClock::start(profiling, HostPhase::Dispatch);
                // Serial pre-phase: stream advance + CTA dispatch.
                {
                    let mut guards: Vec<_> = shards.iter().map(lock).collect();
                    let mut refs: Vec<&mut Sm> =
                        guards.iter_mut().flat_map(|g| g.sms.iter_mut()).collect();
                    if !self.work_remains_in(&refs) {
                        finished = true;
                        break;
                    }
                    self.advance_streams(now, &mut refs);
                    if let Err(e) = self.issue_ctas(now, &mut refs) {
                        violation = Some(Violation::TraceIo(e.to_string()));
                        break;
                    }
                }
                // Parallel compute phase: release the workers, wait for all.
                // On the driver's clock this whole window — including the
                // barrier handshake — is Execute; the workers' own
                // execute/wait split is accounted per shard.
                clock.switch(&mut self.host, HostPhase::Execute);
                let poisoned = {
                    let mut st = lock(&ctrl.state);
                    st.done = 0;
                    st.now = now;
                    st.gen += 1;
                    ctrl.go.notify_all();
                    while st.done < n_workers {
                        st = ctrl
                            .all_done
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    st.poisoned.then(|| st.panic_msg.take())
                };
                if let Some(msg) = poisoned {
                    violation = Some(Violation::WorkerPanic(
                        msg.unwrap_or_else(|| "non-string panic payload".into()),
                    ));
                    break;
                }
                // Serial post-phase: outputs in SM order, then the memory
                // hierarchy, slicer, and telemetry.
                {
                    let mut guards: Vec<_> = shards.iter().map(lock).collect();
                    clock.switch(&mut self.host, HostPhase::Dispatch);
                    for g in guards.iter_mut() {
                        for out in std::mem::take(&mut g.out) {
                            self.absorb_output(now, out);
                        }
                    }
                    clock.finish(&mut self.host);
                    let mut refs: Vec<&mut Sm> =
                        guards.iter_mut().flat_map(|g| g.sms.iter_mut()).collect();
                    self.finish_cycle(now, &mut refs);
                }
                self.now += 1;
                if let Some(v) = self.budget_violation() {
                    violation = Some(v);
                    break;
                }
            }
            let mut st = lock(&ctrl.state);
            st.quit = true;
            ctrl.go.notify_all();
        });

        if let Some(h) = self.host.as_mut() {
            for (i, s) in shards.iter().enumerate() {
                let g = lock(s);
                h.merge_shard(
                    i,
                    ShardTimes {
                        execute_ns: g.exec_ns,
                        wait_ns: g.wait_ns,
                        cycles: g.cycles,
                    },
                );
            }
        }
        self.sms = shards
            .iter()
            .flat_map(|s| std::mem::take(&mut lock(s).sms))
            .collect();
        debug_assert_eq!(self.sms.len(), n_sms);
        match violation {
            Some(v) => Err(v),
            None => Ok(finished),
        }
    }

    fn result(&mut self) -> SimResult {
        let export_start = self.host.as_ref().map(|h| {
            set_alloc_phase(HostPhase::Export);
            h.elapsed_ns()
        });
        // Fill instruction counts from the SMs.
        for (id, st) in self.stats.iter_mut() {
            st.instructions = self.sms.iter().map(|sm| sm.issued_for(*id)).sum();
            if st.finish_cycle == 0 && st.start_cycle == 0 && st.instructions == 0 {
                // Stream never ran (empty); leave zeros.
            }
        }
        let per_stream = self
            .stats
            .iter()
            .map(|(&id, &stats)| {
                (
                    id,
                    StreamResult {
                        stats,
                        dram_bytes: self.mem.dram_bytes(id),
                    },
                )
            })
            .collect();
        let per_sm_instructions: Vec<BTreeMap<StreamId, u64>> = self
            .sms
            .iter()
            .map(|sm| {
                self.stats
                    .keys()
                    .map(|&id| (id, sm.issued_for(id)))
                    .filter(|(_, n)| *n > 0)
                    .collect()
            })
            .collect();
        let per_sm_stalls: Vec<StallBreakdown> = self.sms.iter().map(Sm::stalls).collect();
        let tap_allocation = match self.mem.partition() {
            SetPartition::Tap(t) => Some(t.allocation()),
            _ => None,
        };
        let mut l1_stats = MemStats::new();
        for sm in &self.sms {
            l1_stats.merge(sm.port().stats());
        }
        let l2_stats = self.mem.l2_stats_total();
        let kernel_log = std::mem::take(&mut self.kernel_log);
        let metrics = self.build_registry(&per_sm_stalls, &l1_stats, &l2_stats, &kernel_log);
        let timeline = self
            .recorder
            .take()
            .map(|r| r.finish(self.now))
            .unwrap_or_default();
        let total_instrs: u64 = self.stats.values().map(|s| s.instructions).sum();
        let host_profile = self.host.take().map(|mut h| {
            if let Some(t0) = export_start {
                h.span_end(HostPhase::Export, "build result", t0);
            }
            h.finish(self.now, total_instrs, crisp_obs::host::alloc_report())
        });
        SimResult {
            cycles: self.now,
            per_stream,
            l1_stats,
            l2_stats,
            l2_composition: self.mem.l2_composition(),
            l2_composition_timeline: std::mem::take(&mut self.composition_timeline),
            occupancy: std::mem::take(&mut self.occupancy),
            ipc_timeline: std::mem::take(&mut self.ipc_timeline),
            slicer_history: self
                .slicer
                .as_ref()
                .map(|s| s.history().to_vec())
                .unwrap_or_default(),
            tap_allocation,
            kernel_log,
            per_sm_instructions,
            per_sm_stalls,
            metrics,
            timeline,
            trace: self
                .source
                .as_ref()
                .map(TraceSource::stats)
                .unwrap_or_default(),
            host_profile,
        }
    }

    /// Fold the run's final state into the unified metric registry. Keys
    /// and label sets are BTree-ordered, so the snapshot (and everything
    /// exported from it) is deterministic.
    fn build_registry(
        &self,
        per_sm_stalls: &[StallBreakdown],
        l1_stats: &MemStats,
        l2_stats: &MemStats,
        kernel_log: &[KernelRecord],
    ) -> MetricsSnapshot {
        let mut reg = MetricRegistry::new();
        reg.gauge_set("sim/cycles", Labels::new(), self.now as f64);
        for (i, sm) in self.sms.iter().enumerate() {
            let l = Labels::new().with("sm", i);
            let issued: u64 = self.stats.keys().map(|&id| sm.issued_for(id)).sum();
            reg.counter_add("sm/instructions", l.clone(), issued);
            let s = &per_sm_stalls[i];
            reg.counter_add("sm/slots/issued", l.clone(), s.issued);
            reg.counter_add("sm/slots/blocked", l.clone(), s.blocked);
            reg.counter_add("sm/slots/empty", l.clone(), s.empty);
            reg.counter_add("sm/stall/scoreboard", l.clone(), s.scoreboard);
            reg.counter_add("sm/stall/mem_pending", l.clone(), s.mem_pending);
            reg.counter_add("sm/stall/mshr_full", l.clone(), s.mshr_full);
            reg.counter_add("sm/stall/pipe_busy", l.clone(), s.pipe_busy);
            reg.counter_add("sm/stall/barrier", l, s.barrier);
        }
        for (&id, st) in &self.stats {
            let l = Labels::new().with("stream", id.0);
            reg.counter_add("stream/instructions", l.clone(), st.instructions);
            reg.counter_add("stream/ctas", l.clone(), st.ctas);
            reg.counter_add("stream/kernels", l.clone(), st.kernels);
            reg.counter_add("dram/bytes", l, self.mem.dram_bytes(id));
        }
        for (level, stats) in [("l1", l1_stats), ("l2", l2_stats)] {
            for ((stream, class), c) in stats.iter() {
                let l = Labels::new()
                    .with("stream", stream.0)
                    .with("class", format!("{class:?}"));
                reg.counter_add(&format!("{level}/accesses"), l.clone(), c.accesses);
                reg.counter_add(&format!("{level}/hits"), l.clone(), c.hits);
                reg.counter_add(&format!("{level}/misses"), l, c.misses);
            }
        }
        for k in kernel_log {
            let l = Labels::new().with("stream", k.stream.0);
            reg.counter_add("kernel/count", l.clone(), 1);
            reg.observe("kernel/cycles", l, k.elapsed());
        }
        // Residency gauges are opt-in: paging statistics necessarily differ
        // between streaming and materialized inputs, and the default export
        // must stay byte-identical across the two paths.
        if self.residency_telemetry {
            if let Some(src) = &self.source {
                let t = src.stats();
                let l = Labels::new;
                reg.gauge_set("trace/resident_ctas", l(), t.resident_ctas as f64);
                reg.gauge_set("trace/resident_bytes", l(), t.resident_bytes as f64);
                reg.gauge_set("trace/peak_resident_ctas", l(), t.peak_resident_ctas as f64);
                reg.gauge_set(
                    "trace/peak_resident_bytes",
                    l(),
                    t.peak_resident_bytes as f64,
                );
                reg.gauge_set("trace/ctas_decoded", l(), t.ctas_decoded as f64);
                reg.gauge_set("trace/bytes_decoded", l(), t.bytes_decoded as f64);
            }
        }
        reg.snapshot()
    }

    /// Direct access to the memory system (post-run inspection).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Functionally drain every stream's commands up to (and including) the
    /// first marker named `label`, warming the L1/L2/DRAM state with each
    /// skipped kernel's memory footprint but charging **zero cycles** — the
    /// fast-forward half of ROI sampling. Detailed simulation then starts at
    /// the region of interest with realistic cache contents.
    ///
    /// All memory-hierarchy statistics are cleared afterwards, so the
    /// detailed region's numbers cover only its own traffic. Returns the
    /// number of commands skipped. Streams without the marker are left
    /// untouched (their work runs in detail).
    ///
    /// # Errors
    ///
    /// Propagates trace-source I/O errors from paging the skipped kernels'
    /// CTAs through for warming.
    ///
    /// # Panics
    ///
    /// Panics if called after detailed simulation has started.
    pub fn fast_forward_to_marker(&mut self, label: &str) -> io::Result<u64> {
        assert!(
            self.now == 0 && !self.sms.iter().any(Sm::busy),
            "fast_forward_to_marker must run before detailed simulation"
        );
        let mut skipped = 0u64;
        for si in 0..self.streams.len() {
            let has_marker = self.streams[si].commands[self.streams[si].next_cmd..]
                .iter()
                .any(|c| matches!(c, CommandMeta::Marker(l) if l == label));
            if !has_marker {
                continue;
            }
            let id = self.streams[si].id;
            while let Some(cmd) = self.streams[si].front().cloned() {
                self.streams[si].next_cmd += 1;
                skipped += 1;
                match cmd {
                    CommandMeta::Marker(l) => {
                        if l == label {
                            break;
                        }
                    }
                    CommandMeta::Launch { kernel, info } => self.warm_kernel(id, kernel, &info)?,
                }
            }
        }
        // Warming must not pollute the ROI's statistics.
        self.mem.clear_stats();
        for sm in &mut self.sms {
            sm.port_mut().clear_stats();
        }
        Ok(skipped)
    }

    /// Replay one kernel's memory footprint through the hierarchy without
    /// timing: every global-memory sector visits the L1 of the SM the CTA
    /// would run on, and L1 misses/writes touch the shared L2/DRAM model.
    /// CTAs are paged in one at a time and released immediately, so
    /// fast-forwarding over a long prefix stays within the one-CTA window.
    fn warm_kernel(
        &mut self,
        stream: StreamId,
        kernel: KernelId,
        info: &KernelInfo,
    ) -> io::Result<()> {
        let all: Vec<usize> = (0..self.sms.len()).collect();
        let allowed: Vec<usize> = match self.allowed_sms.get(&stream) {
            Some(mask) => {
                let v: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| a)
                    .map(|(i, _)| i)
                    .collect();
                if v.is_empty() {
                    all
                } else {
                    v
                }
            }
            None => all,
        };
        let mut chunks = Vec::new();
        for cta_index in 0..info.grid {
            let cta = self
                .source
                .as_mut()
                .expect("a trace source is attached before fast-forwarding")
                .fetch_cta(kernel, cta_index)?;
            let sm = allowed[cta_index % allowed.len()];
            let token = ReqToken {
                sm: sm as u16,
                id: 0,
            };
            for w in &cta.warps {
                for instr in w.iter() {
                    let Some(mem) = &instr.mem else { continue };
                    if mem.space == Space::Shared {
                        continue;
                    }
                    let is_load = instr.op.is_load();
                    mem.distinct_chunks_into(SECTOR_BYTES, &mut chunks);
                    for &chunk in &chunks {
                        let addr = chunk * SECTOR_BYTES;
                        let req = if is_load {
                            MemReq::read(addr, stream, mem.class, token)
                        } else {
                            MemReq::write(addr, stream, mem.class, token)
                        };
                        if self.sms[sm].port_mut().warm(&req) {
                            self.mem.warm(&req);
                        }
                    }
                }
            }
            drop(cta);
            self.source
                .as_mut()
                .expect("checked above")
                .release_cta(kernel, cta_index);
        }
        Ok(())
    }

    /// Write a checkpoint of the full architectural state to `path`
    /// (parent directories are created as needed).
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn save_checkpoint(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        let mut sink = std::io::BufWriter::new(file);
        self.write_checkpoint(&mut sink)?;
        use std::io::Write as _;
        sink.flush()
    }

    /// Serialize the full architectural state — streams, SMs, memory
    /// hierarchy, statistics, telemetry — into `sink` in the versioned
    /// `CKPT` format. [`GpuSim::read_checkpoint`] restores a simulator that
    /// continues **bit-identically** at any worker-thread count.
    ///
    /// Instruction payloads are *not* serialized: the checkpoint records
    /// the trace source's provenance (its path, or — for in-memory sources
    /// — the raw CRSP container) plus `(kernel id, cta index)` cursors for
    /// every resident warp; restore re-opens the source and demand-pages
    /// the resident window back in. Needs `&mut self` because an in-memory
    /// source re-serializes its container through its own reader.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_checkpoint<W: io::Write>(&mut self, sink: W) -> io::Result<()> {
        let mut w = Writer::new(sink);
        w.header()?;
        self.cfg.save(&mut w, ())?;
        self.spec.save(&mut w, ())?;
        w.u64(self.threads as u64)?;
        w.bool(self.residency_telemetry)?;

        // Trace-source provenance: enough to re-open the same container at
        // restore. Path-backed sources store the path; everything else
        // embeds the container bytes for a self-contained checkpoint.
        // Snapshot the paging statistics FIRST: re-encoding the container
        // pages every CTA through the source, and that bookkeeping must not
        // leak into the saved counters (or into this sim, which may keep
        // running after a periodic checkpoint).
        let tstats = self
            .source
            .as_ref()
            .map(TraceSource::stats)
            .unwrap_or_default();
        match self.source.as_mut() {
            None => w.u8(0)?,
            Some(src) => {
                if let Some(p) = src.path().map(Path::to_path_buf) {
                    w.u8(1)?;
                    w.str(&p.to_string_lossy())?;
                } else {
                    w.u8(2)?;
                    let bytes = src.container_bytes()?;
                    w.bytes(&bytes)?;
                    src.set_stats(tstats);
                }
            }
        }
        // Paging statistics travel with the checkpoint so a resumed run's
        // cumulative counters continue bit-identically.
        w.u64(tstats.resident_ctas)?;
        w.u64(tstats.resident_bytes)?;
        w.u64(tstats.peak_resident_ctas)?;
        w.u64(tstats.peak_resident_bytes)?;
        w.u64(tstats.ctas_decoded)?;
        w.u64(tstats.bytes_decoded)?;

        w.u64(self.now)?;
        w.u64(self.cta_seq)?;
        w.u64(self.last_progress)?;
        w.u64(self.rr_offset as u64)?;
        w.u64(self.occupancy_interval)?;
        w.u64(self.composition_interval)?;
        w.u64(self.counter_interval)?;

        // Streams are saved as cursors into the source's directory — not
        // the command lists themselves, which restore rebuilds from the
        // re-opened source.
        w.len(self.streams.len())?;
        for st in &self.streams {
            w.stream(st.id)?;
            w.u8(match st.kind {
                StreamKind::Graphics => 0,
                StreamKind::Compute => 1,
            })?;
            w.u64(st.next_cmd as u64)?;
            w.option(st.current.as_ref(), |w, r| {
                w.u32(r.kernel.0)?;
                w.u64(r.next_cta as u64)?;
                w.u64(r.outstanding as u64)?;
                w.u64(r.start_cycle)
            })?;
            w.bool(st.started)?;
            w.bool(st.finished)?;
        }

        w.len(self.stats.len())?;
        for (&id, st) in &self.stats {
            w.stream(id)?;
            st.save(&mut w, ())?;
        }
        w.len(self.occupancy.len())?;
        for s in &self.occupancy {
            s.save(&mut w, ())?;
        }
        w.len(self.ipc_timeline.len())?;
        for (cycle, m) in &self.ipc_timeline {
            w.u64(*cycle)?;
            write_stream_u64_map(&mut w, m)?;
        }
        write_stream_u64_map(&mut w, &self.last_issued_snapshot)?;
        w.len(self.composition_timeline.len())?;
        for (cycle, snap) in &self.composition_timeline {
            w.u64(*cycle)?;
            snap.save(&mut w, ())?;
        }
        write_stream_u64_map(&mut w, &self.counter_prev_issued)?;
        write_stream_u64_map(&mut w, &self.counter_prev_dram)?;
        w.u64(self.counter_prev_l1.0)?;
        w.u64(self.counter_prev_l1.1)?;
        w.u64(self.counter_prev_l2.0)?;
        w.u64(self.counter_prev_l2.1)?;

        w.len(self.allowed_sms.len())?;
        for (&id, mask) in &self.allowed_sms {
            w.stream(id)?;
            w.len(mask.len())?;
            for &b in mask {
                w.bool(b)?;
            }
        }
        w.len(self.kernel_log.len())?;
        for k in &self.kernel_log {
            w.stream(k.stream)?;
            w.str(&k.name)?;
            w.u64(k.start_cycle)?;
            w.u64(k.end_cycle)?;
            w.u64(k.ctas)?;
        }
        w.option(self.slicer.as_ref(), |w, s| s.save(w, ()))?;
        w.option(self.recorder.as_ref(), save_recorder)?;

        for sm in &self.sms {
            sm.save(&mut w, ())?;
        }
        self.mem.save(&mut w, ())?;
        Ok(())
    }

    /// Restore a simulator from a checkpoint written by
    /// [`GpuSim::write_checkpoint`]. The worker-thread count is restored
    /// from the checkpoint but may be overridden with
    /// [`GpuSim::set_threads`] — results are identical either way.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformed, truncated, or corrupt input;
    /// never panics.
    pub fn read_checkpoint<R: io::Read>(src: R) -> io::Result<GpuSim> {
        let mut r = Reader::new(src);
        r.header()?;
        let cfg = GpuConfig::restore(&mut r, ())?;
        let spec = PartitionSpec::restore(&mut r, ())?;
        let threads = r.u64()?.clamp(1, 1 << 16) as usize;
        let residency_telemetry = r.bool()?;

        // Re-open the trace source from its provenance. Embedded container
        // bytes become an in-memory *streaming* source, so a resumed run
        // keeps the same bounded resident window.
        let mut source = match r.u8()? {
            0 => None,
            1 => {
                let path = PathBuf::from(r.str()?);
                Some(TraceInput::from(path).open()?)
            }
            2 => {
                let bytes = r.bytes(1 << 32)?;
                Some(TraceInput::reader(std::io::Cursor::new(bytes)).open()?)
            }
            t => return Err(bad(format!("unknown trace-provenance tag {t}"))),
        };
        let saved_tstats = TraceStats {
            resident_ctas: r.u64()?,
            resident_bytes: r.u64()?,
            peak_resident_ctas: r.u64()?,
            peak_resident_bytes: r.u64()?,
            ctas_decoded: r.u64()?,
            bytes_decoded: r.u64()?,
        };

        let now = r.u64()?;
        let cta_seq = r.u64()?;
        let last_progress = r.u64()?;
        let rr_offset = r.u64()? as usize;
        let occupancy_interval = r.u64()?;
        let composition_interval = r.u64()?;
        let counter_interval = r.u64()?;

        let n_streams = r.len(1 << 16)?;
        let mut streams = Vec::with_capacity(n_streams.min(64));
        for _ in 0..n_streams {
            let id = r.stream()?;
            let kind = match r.u8()? {
                0 => StreamKind::Graphics,
                1 => StreamKind::Compute,
                t => return Err(bad(format!("unknown stream-kind tag {t}"))),
            };
            let next_cmd = r.u64()? as usize;
            // Commands come from the re-opened source's directory, not the
            // checkpoint; the cursor is validated against it.
            let src = source
                .as_ref()
                .ok_or_else(|| bad("checkpoint has streams but no trace source"))?;
            let meta =
                src.streams().iter().find(|m| m.id == id).ok_or_else(|| {
                    bad(format!("checkpoint stream {id} missing from trace source"))
                })?;
            if meta.kind != kind {
                return Err(bad(format!("stream {id} kind mismatch with trace source")));
            }
            let commands = meta.commands.clone();
            if next_cmd > commands.len() {
                return Err(bad(format!(
                    "stream {id} cursor {next_cmd} past its {} commands",
                    commands.len()
                )));
            }
            let current = r.option(|r| {
                let kernel = KernelId(r.u32()?);
                let info = src
                    .kernel_info(kernel)
                    .ok_or_else(|| bad(format!("running {kernel} missing from trace source")))?
                    .clone();
                if src.kernel_stream(kernel) != Some(id) {
                    return Err(bad(format!("running {kernel} belongs to another stream")));
                }
                let next_cta = r.u64()? as usize;
                let outstanding = r.u64()? as usize;
                let start_cycle = r.u64()?;
                if next_cta > info.grid || outstanding > info.grid {
                    return Err(bad("running-kernel cursor past its grid"));
                }
                Ok(RunningKernel {
                    kernel,
                    info,
                    next_cta,
                    outstanding,
                    start_cycle,
                })
            })?;
            let started = r.bool()?;
            let finished = r.bool()?;
            streams.push(StreamState {
                id,
                kind,
                commands,
                next_cmd,
                current,
                started,
                finished,
            });
        }

        let n_stats = r.len(1 << 16)?;
        let mut stats = BTreeMap::new();
        for _ in 0..n_stats {
            let id = r.stream()?;
            stats.insert(id, PerStreamStats::restore(&mut r, ())?);
        }
        let n = r.len(1 << 28)?;
        let mut occupancy = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            occupancy.push(OccupancySample::restore(&mut r, ())?);
        }
        let n = r.len(1 << 28)?;
        let mut ipc_timeline = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let cycle = r.u64()?;
            ipc_timeline.push((cycle, read_stream_u64_map(&mut r)?));
        }
        let last_issued_snapshot = read_stream_u64_map(&mut r)?;
        let n = r.len(1 << 28)?;
        let mut composition_timeline = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let cycle = r.u64()?;
            composition_timeline.push((cycle, CompositionSnapshot::restore(&mut r, ())?));
        }
        let counter_prev_issued = read_stream_u64_map(&mut r)?;
        let counter_prev_dram = read_stream_u64_map(&mut r)?;
        let counter_prev_l1 = (r.u64()?, r.u64()?);
        let counter_prev_l2 = (r.u64()?, r.u64()?);

        let n_masks = r.len(1 << 16)?;
        let mut allowed_sms = BTreeMap::new();
        for _ in 0..n_masks {
            let id = r.stream()?;
            let len = r.len(1 << 16)?;
            if len != cfg.n_sms {
                return Err(bad(format!(
                    "SM allowlist for {id} has {len} entries, config has {} SMs",
                    cfg.n_sms
                )));
            }
            let mut mask = Vec::with_capacity(len);
            for _ in 0..len {
                mask.push(r.bool()?);
            }
            allowed_sms.insert(id, mask);
        }
        let n = r.len(1 << 24)?;
        let mut kernel_log = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            kernel_log.push(KernelRecord {
                stream: r.stream()?,
                name: r.str()?,
                start_cycle: r.u64()?,
                end_cycle: r.u64()?,
                ctas: r.u64()?,
            });
        }
        let slicer = r.option(|r| WarpedSlicer::restore(r, ()))?;
        let recorder = r.option(|r| restore_recorder(r, cfg.n_sms))?;

        let mem_cfg = cfg.mem_config();
        let mut sms = Vec::with_capacity(cfg.n_sms);
        {
            // SM restore pages every resident warp's CTA back in through
            // the source, re-establishing the Arc sharing of the resident
            // window. A checkpoint without a source can only hold empty
            // SMs; the empty fallback makes any warp reference an error.
            let mut fallback = None;
            let src: &mut TraceSource = match source.as_mut() {
                Some(s) => s,
                None => {
                    fallback.insert(TraceSource::from_bundle(TraceBundle::from_streams(vec![])))
                }
            };
            for i in 0..cfg.n_sms {
                sms.push(Sm::restore(&mut r, (i, cfg.sm, &mem_cfg, &mut *src))?);
            }
        }
        let mem = MemSystem::restore(&mut r, &mem_cfg)?;

        // Restore the paging counters last: the fetches made while paging
        // the resident window back in must not perturb the checkpointed
        // cumulative statistics, or a resumed run's exports would diverge.
        if let Some(s) = source.as_mut() {
            s.set_stats(saved_tstats);
        }

        Ok(GpuSim {
            cfg,
            spec,
            sms,
            mem,
            threads,
            streams,
            source,
            residency_telemetry,
            slicer,
            now,
            stats,
            occupancy,
            ipc_timeline,
            last_issued_snapshot,
            occupancy_interval,
            composition_interval,
            counter_interval,
            composition_timeline,
            recorder,
            counter_prev_issued,
            counter_prev_dram,
            counter_prev_l1,
            counter_prev_l2,
            cta_seq,
            last_progress,
            rr_offset,
            allowed_sms,
            kernel_log,
            checkpoint_every: 0,
            checkpoint_dir: None,
            watchdog: DEFAULT_WATCHDOG,
            hold_at_marker: None,
            host: None,
            scratch_completions: Vec::new(),
            scratch_outs: Vec::new(),
        })
    }
}

fn write_stream_u64_map<W: io::Write>(
    w: &mut Writer<W>,
    m: &BTreeMap<StreamId, u64>,
) -> io::Result<()> {
    w.len(m.len())?;
    for (&id, &v) in m {
        w.stream(id)?;
        w.u64(v)?;
    }
    Ok(())
}

fn read_stream_u64_map<R: io::Read>(r: &mut Reader<R>) -> io::Result<BTreeMap<StreamId, u64>> {
    let n = r.len(1 << 16)?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let id = r.stream()?;
        m.insert(id, r.u64()?);
    }
    Ok(m)
}

fn save_track<W: io::Write>(w: &mut Writer<W>, t: Track) -> io::Result<()> {
    match t {
        Track::Gpu => w.u8(0),
        Track::Stream(s) => {
            w.u8(1)?;
            w.u32(s)
        }
        Track::Sm(s) => {
            w.u8(2)?;
            w.u32(s)
        }
    }
}

fn restore_track<R: io::Read>(r: &mut Reader<R>) -> io::Result<Track> {
    Ok(match r.u8()? {
        0 => Track::Gpu,
        1 => Track::Stream(r.u32()?),
        2 => Track::Sm(r.u32()?),
        t => return Err(bad(format!("unknown track tag {t}"))),
    })
}

/// Span categories form a closed set (the recorder only emits these), which
/// lets restore rebuild the `&'static str` tags.
fn cat_tag(cat: &str) -> io::Result<u8> {
    match cat {
        "cta" => Ok(0),
        "kernel" => Ok(1),
        "marker" => Ok(2),
        _ => Err(bad(format!("unknown span category {cat:?}"))),
    }
}

fn cat_from(tag: u8) -> io::Result<&'static str> {
    Ok(match tag {
        0 => "cta",
        1 => "kernel",
        2 => "marker",
        t => return Err(bad(format!("unknown span-category tag {t}"))),
    })
}

fn save_span<W: io::Write>(w: &mut Writer<W>, s: &SpanEvent) -> io::Result<()> {
    save_track(w, s.track)?;
    w.str(&s.name)?;
    w.u8(cat_tag(s.cat)?)?;
    w.u64(s.start)?;
    w.u64(s.dur)?;
    w.len(s.args.len())?;
    for (k, v) in &s.args {
        w.str(k)?;
        w.str(v)?;
    }
    Ok(())
}

fn restore_span<R: io::Read>(r: &mut Reader<R>) -> io::Result<SpanEvent> {
    let track = restore_track(r)?;
    let name = r.str()?;
    let cat = cat_from(r.u8()?)?;
    let start = r.u64()?;
    let dur = r.u64()?;
    let n_args = r.len(1 << 10)?;
    let mut args = Vec::with_capacity(n_args);
    for _ in 0..n_args {
        let k = r.str()?;
        let v = r.str()?;
        args.push((k, v));
    }
    Ok(SpanEvent {
        track,
        name,
        cat,
        start,
        dur,
        args,
    })
}

fn save_recorder<W: io::Write>(w: &mut Writer<W>, rec: &TraceRecorder) -> io::Result<()> {
    w.bool(rec.records_spans())?;
    w.bool(rec.records_counters())?;
    let log = rec.log();
    w.len(log.driver_spans().len())?;
    for s in log.driver_spans() {
        save_span(w, s)?;
    }
    w.len(log.sm_span_buffers().len())?;
    for buf in log.sm_span_buffers() {
        w.len(buf.len())?;
        for s in buf {
            save_span(w, s)?;
        }
    }
    w.len(log.instants().len())?;
    for i in log.instants() {
        save_track(w, i.track)?;
        w.str(&i.name)?;
        w.u8(cat_tag(i.cat)?)?;
        w.u64(i.at)?;
    }
    w.len(log.counters().len())?;
    for c in log.counters() {
        w.u64(c.cycle)?;
        w.str(&c.name)?;
        w.f64(c.value)?;
    }
    let open = rec.open_cta_entries();
    w.len(open.len())?;
    for (seq, sm, stream, cta_index, start) in open {
        w.u64(seq)?;
        w.u32(sm)?;
        w.u32(stream)?;
        w.u64(cta_index as u64)?;
        w.u64(start)?;
    }
    Ok(())
}

fn restore_recorder<R: io::Read>(r: &mut Reader<R>, n_sms: usize) -> io::Result<TraceRecorder> {
    let record_spans = r.bool()?;
    let record_counters = r.bool()?;
    let n = r.len(1 << 28)?;
    let mut spans = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        spans.push(restore_span(r)?);
    }
    let n_bufs = r.len(1 << 16)?;
    if n_bufs != n_sms {
        return Err(bad(format!(
            "trace log has {n_bufs} SM buffers, config has {n_sms} SMs"
        )));
    }
    let mut sm_spans = Vec::with_capacity(n_bufs);
    for _ in 0..n_bufs {
        let n = r.len(1 << 28)?;
        let mut buf = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            buf.push(restore_span(r)?);
        }
        sm_spans.push(buf);
    }
    let n = r.len(1 << 28)?;
    let mut instants = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let track = restore_track(r)?;
        let name = r.str()?;
        let cat = cat_from(r.u8()?)?;
        let at = r.u64()?;
        instants.push(InstantEvent {
            track,
            name,
            cat,
            at,
        });
    }
    let n = r.len(1 << 28)?;
    let mut counters = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let cycle = r.u64()?;
        let name = r.str()?;
        let value = r.f64()?;
        counters.push(CounterSample { cycle, name, value });
    }
    let n_open = r.len(1 << 20)?;
    let mut open = Vec::with_capacity(n_open.min(1 << 12));
    for _ in 0..n_open {
        let seq = r.u64()?;
        let sm = r.u32()?;
        let stream = r.u32()?;
        let cta_index = r.u64()? as usize;
        let start = r.u64()?;
        open.push((seq, sm, stream, cta_index, start));
    }
    Ok(TraceRecorder::from_parts(
        TraceLog::from_parts(spans, sm_spans, instants, counters),
        open,
        record_spans,
        record_counters,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::SlicerConfig;
    use crisp_trace::{
        CtaTrace, DataClass, Instr, KernelTrace, MemAccess, Op, Reg, Space, Stream, WarpTrace,
    };

    const G: StreamId = StreamId(0);
    const C: StreamId = StreamId(1);

    fn alu_kernel(name: &str, n_instr: usize, warps: usize, ctas: usize, regs: u32) -> KernelTrace {
        let mut w = WarpTrace::new();
        for i in 0..n_instr {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) as u16 + 1), &[]));
        }
        w.seal();
        let cta = CtaTrace::new(vec![w; warps]);
        KernelTrace::new(name, 32 * warps as u32, regs, 0, vec![cta; ctas])
    }

    fn mem_kernel(name: &str, ctas: usize, lines_apart: u64) -> KernelTrace {
        let mut ctav = Vec::new();
        for c in 0..ctas {
            let mut w = WarpTrace::new();
            for i in 0..8u64 {
                w.push(Instr::load(
                    Reg(1),
                    MemAccess::coalesced(
                        Space::Global,
                        DataClass::Compute,
                        4,
                        (c as u64 * 64 + i) * lines_apart * 128,
                        32,
                    ),
                ));
            }
            w.seal();
            ctav.push(CtaTrace::new(vec![w]));
        }
        KernelTrace::new(name, 32, 16, 0, ctav)
    }

    fn bundle_two(g_kernel: KernelTrace, c_kernel: KernelTrace) -> TraceBundle {
        let mut gs = Stream::new(G, StreamKind::Graphics);
        gs.marker("draw0");
        gs.launch(g_kernel);
        let mut cs = Stream::new(C, StreamKind::Compute);
        cs.launch(c_kernel);
        TraceBundle::from_streams(vec![gs, cs])
    }

    #[test]
    fn single_stream_completes_and_reports() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("a", 20, 2, 4, 16));
        s.launch(alu_kernel("b", 20, 2, 4, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        let st = &r.per_stream[&C].stats;
        assert_eq!(st.kernels, 2);
        assert_eq!(st.ctas, 8);
        assert!(st.instructions >= 8 * 2 * 21);
        assert!(st.finish_cycle > 0);
        assert!(st.ipc() > 0.0);
    }

    #[test]
    fn kernels_in_a_stream_are_serialised() {
        // Kernel b must not start before kernel a fully commits: with one
        // large kernel a and tiny b, total cycles >= a's cycles + b's.
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("a", 200, 4, 2, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let solo_a = gpu.run_or_panic().cycles;

        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("a", 200, 4, 2, 16));
        s.launch(alu_kernel("b", 200, 4, 2, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let both = gpu.run_or_panic().cycles;
        assert!(
            both as f64 > solo_a as f64 * 1.5,
            "second kernel must serialise: solo {solo_a}, both {both}"
        );
    }

    #[test]
    fn two_streams_run_concurrently_under_fg() {
        let cfg = GpuConfig::test_tiny();
        let a = alu_kernel("g", 300, 2, 6, 16);
        let b = alu_kernel("c", 300, 2, 6, 16);

        // Serial baseline: one stream after the other (same stream).
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(a.clone());
        s.launch(b.clone());
        gpu.load(TraceBundle::from_streams(vec![s]));
        let serial = gpu.run_or_panic().cycles;

        // Concurrent under even intra-SM partition.
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::fg_even(&cfg, G, C));
        gpu.load(bundle_two(a, b));
        let conc = gpu.run_or_panic().cycles;
        assert!(
            (conc as f64) < serial as f64 * 0.95,
            "concurrency must beat serial: serial {serial}, concurrent {conc}"
        );
    }

    #[test]
    fn mps_partitions_sms() {
        let cfg = GpuConfig::test_tiny(); // 2 SMs → 1 each
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::mps_even(&cfg, G, C));
        gpu.load(bundle_two(
            alu_kernel("g", 50, 2, 4, 16),
            alu_kernel("c", 50, 2, 4, 16),
        ));
        let r = gpu.run_or_panic();
        assert_eq!(r.per_stream[&G].stats.ctas, 4);
        assert_eq!(r.per_stream[&C].stats.ctas, 4);
    }

    #[test]
    fn stalls_aggregate_over_sms() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("a", 50, 2, 4, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        let stalls = r.stalls();
        assert_eq!(stalls.issued, r.per_stream[&C].stats.instructions);
        assert!(stalls.issue_efficiency() > 0.0);
    }

    #[test]
    fn per_sm_instructions_respect_inter_sm_partitions() {
        let cfg = GpuConfig::test_tiny(); // 2 SMs
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::mps_even(&cfg, G, C));
        gpu.load(bundle_two(
            alu_kernel("g", 50, 2, 4, 16),
            alu_kernel("c", 50, 2, 4, 16),
        ));
        let r = gpu.run_or_panic();
        assert_eq!(r.per_sm_instructions.len(), 2);
        // SM 0 belongs to the graphics stream, SM 1 to compute: no leakage.
        assert!(!r.per_sm_instructions[0].contains_key(&C));
        assert!(!r.per_sm_instructions[1].contains_key(&G));
        // Per-SM counts sum to the per-stream totals.
        let g_sum: u64 = r.per_sm_instructions.iter().filter_map(|m| m.get(&G)).sum();
        assert_eq!(g_sum, r.per_stream[&G].stats.instructions);
    }

    #[test]
    fn mig_isolates_dram_partitions() {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::mig_even(&cfg, G, C));
        let mut gs = Stream::new(G, StreamKind::Graphics);
        gs.launch(mem_kernel("gmem", 4, 3));
        let mut cs = Stream::new(C, StreamKind::Compute);
        cs.launch(mem_kernel("cmem", 4, 5));
        gpu.load(TraceBundle::from_streams(vec![gs, cs]));
        let r = gpu.run_or_panic();
        assert!(r.per_stream[&G].dram_bytes > 0);
        assert!(r.per_stream[&C].dram_bytes > 0);
    }

    #[test]
    fn warped_slicer_makes_decisions() {
        let cfg = GpuConfig::test_tiny();
        let slicer = SlicerConfig {
            sample_cycles: 200,
            ratios: vec![(2, 8), (4, 8), (6, 8)],
        };
        let mut gpu = GpuSim::with_spec(cfg, PartitionSpec::fg_dynamic(slicer));
        gpu.load(bundle_two(
            alu_kernel("g", 2000, 2, 12, 16),
            alu_kernel("c", 2000, 2, 12, 16),
        ));
        let r = gpu.run_or_panic();
        assert!(
            !r.slicer_history.is_empty(),
            "slicer must have decided at least once"
        );
        for (_, f) in &r.slicer_history {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn slicer_releases_quota_when_partner_stream_drains() {
        // Regression: once the partner stream retired every command, an
        // applied ratio too small for the survivor's next CTA used to
        // starve it forever — the slicer only re-samples at the *partner's*
        // kernel/drawcall boundaries, so the decision was never revisited
        // and the run hit the forward-progress watchdog.
        let cfg = GpuConfig::test_tiny();
        let slicer = SlicerConfig {
            sample_cycles: 100,
            // The only candidate gives graphics 2 of 16 warps — too small
            // for its 4-warp CTA, on every SM, in every state.
            ratios: vec![(1, 8)],
        };
        let mut gpu = GpuSim::with_spec(cfg, PartitionSpec::fg_dynamic(slicer));
        gpu.load(bundle_two(
            alu_kernel("g", 50, 4, 1, 16),
            alu_kernel("c", 50, 1, 1, 16),
        ));
        let r = gpu.run_or_panic();
        assert_eq!(r.kernel_log.len(), 2, "both kernels must complete");
    }

    #[test]
    fn tap_reports_allocation() {
        let cfg = GpuConfig::test_tiny();
        let tap = crisp_mem::TapConfig {
            epoch_accesses: 200,
            sample_every: 1,
            min_sets: 1,
        };
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::tap_even(&cfg, G, C, tap));
        let mut gs = Stream::new(G, StreamKind::Graphics);
        gs.launch(mem_kernel("gmem", 6, 1));
        let mut cs = Stream::new(C, StreamKind::Compute);
        cs.launch(alu_kernel("calu", 100, 2, 6, 16));
        gpu.load(TraceBundle::from_streams(vec![gs, cs]));
        let r = gpu.run_or_panic();
        let alloc = r.tap_allocation.expect("TAP ran");
        let total: u64 = alloc.iter().map(|(_, n)| n).sum();
        let sets_per_bank = (128 << 10) / 2 / 128 / 8;
        assert_eq!(total, sets_per_bank);
    }

    #[test]
    fn occupancy_timeline_is_sampled() {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::fg_even(&cfg, G, C));
        gpu.occupancy_interval = 50;
        gpu.load(bundle_two(
            alu_kernel("g", 500, 2, 8, 16),
            alu_kernel("c", 500, 2, 8, 16),
        ));
        let r = gpu.run_or_panic();
        assert!(r.occupancy.len() >= 2);
        let mid = &r.occupancy[r.occupancy.len() / 2];
        assert!(mid.total() > 0.0, "occupancy must be visible mid-run");
    }

    #[test]
    #[should_panic(expected = "exceeds the SM")]
    fn unplaceable_kernel_fails_fast() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        // 512 regs/thread × 256 threads = 131072 regs > 65536.
        s.launch(alu_kernel("hog", 4, 8, 1, 512));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let _ = gpu.run_or_panic();
    }

    #[test]
    fn max_cycles_budget_is_enforced() {
        let mut cfg = GpuConfig::test_tiny();
        cfg.max_cycles = 10;
        let mut gpu = GpuSim::with_spec(cfg, PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("long", 1000, 2, 4, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let err = gpu.run().expect_err("budget of 10 cycles must trip");
        match &err {
            SimError::CycleBudgetExceeded { max_cycles, ctx } => {
                assert_eq!(*max_cycles, 10);
                assert_eq!(ctx.cycle, 11, "stops on the first cycle past the budget");
                assert!(
                    ctx.partial.per_stream[&C].stats.instructions > 0,
                    "partial stats carry the work done before the trip"
                );
                assert!(ctx.emergency_checkpoint.is_none(), "no checkpoint dir set");
            }
            other => panic!("expected CycleBudgetExceeded, got {other}"),
        }
        assert!(err.to_string().contains("max_cycles=10"), "{err}");
        assert_eq!(err.cycle(), Some(11));
    }

    #[test]
    fn summary_mentions_every_stream() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("a", 10, 1, 1, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        let text = r.summary();
        assert!(text.contains("stream1"));
        assert!(text.contains("L2"));
        assert_eq!(r.makespan(), r.per_stream[&C].stats.finish_cycle);
    }

    #[test]
    fn kernel_log_records_the_timeline() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(alu_kernel("first", 20, 2, 2, 16));
        s.launch(alu_kernel("second", 20, 2, 2, 16));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        assert_eq!(r.kernel_log.len(), 2);
        assert_eq!(r.kernel_log[0].name, "first");
        assert_eq!(r.kernel_log[1].name, "second");
        assert!(
            r.kernel_log[0].end_cycle <= r.kernel_log[1].start_cycle + 1,
            "stream kernels serialise"
        );
        assert!(r.kernel_log[0].elapsed() > 0);
        assert_eq!(r.kernel_log[0].ctas, 2);
    }

    #[test]
    fn ipc_timeline_sums_to_total_instructions() {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::fg_even(&cfg, G, C));
        gpu.occupancy_interval = 50;
        gpu.load(bundle_two(
            alu_kernel("g", 500, 2, 8, 16),
            alu_kernel("c", 500, 2, 8, 16),
        ));
        let r = gpu.run_or_panic();
        assert!(!r.ipc_timeline.is_empty());
        let g_sum: u64 = r.ipc_timeline.iter().filter_map(|(_, m)| m.get(&G)).sum();
        // The final partial window after the last sample is not captured,
        // so the timeline sums to at most the total.
        assert!(g_sum <= r.per_stream[&G].stats.instructions);
        assert!(g_sum > 0);
    }

    #[test]
    fn empty_kernel_completes_instantly() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(KernelTrace::new("empty", 32, 8, 0, vec![]));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        assert_eq!(r.per_stream[&C].stats.kernels, 1);
    }

    #[test]
    #[should_panic(expected = "load() may only be called once")]
    fn double_load_panics() {
        let mut gpu = GpuSim::with_spec(GpuConfig::test_tiny(), PartitionSpec::greedy());
        gpu.load(TraceBundle::from_streams(vec![Stream::new(
            C,
            StreamKind::Compute,
        )]));
        gpu.load(TraceBundle::from_streams(vec![Stream::new(
            G,
            StreamKind::Graphics,
        )]));
    }

    /// A telemetry-heavy two-stream workload for checkpoint tests.
    fn ckpt_sim() -> GpuSim {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::fg_even(&cfg, G, C));
        gpu.set_telemetry(true, true);
        gpu.occupancy_interval = 50;
        gpu.composition_interval = 60;
        gpu.counter_interval = 40;
        gpu.load(bundle_two(
            alu_kernel("g", 300, 2, 6, 16),
            mem_kernel("cmem", 6, 3),
        ));
        gpu
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let r_base = ckpt_sim().run_or_panic();

        let mut gpu = ckpt_sim();
        assert!(
            !gpu.run_until(100).unwrap(),
            "workload must outlast the checkpoint"
        );
        let mut bytes = Vec::new();
        gpu.write_checkpoint(&mut bytes).unwrap();
        let mut resumed = GpuSim::read_checkpoint(&bytes[..]).unwrap();
        let r_resumed = resumed.run_or_panic();
        // The checkpointed original keeps running unperturbed too.
        let r_orig = gpu.run_or_panic();

        for r in [&r_orig, &r_resumed] {
            assert_eq!(r.cycles, r_base.cycles);
            assert_eq!(r.per_stream, r_base.per_stream);
            assert_eq!(r.per_sm_stalls, r_base.per_sm_stalls);
            assert_eq!(r.occupancy, r_base.occupancy);
            assert_eq!(r.kernel_log, r_base.kernel_log);
            assert_eq!(r.metrics_csv(), r_base.metrics_csv());
            assert_eq!(r.chrome_trace_json(), r_base.chrome_trace_json());
            assert_eq!(r.counters_csv(), r_base.counters_csv());
        }
    }

    #[test]
    fn checkpoint_resume_is_thread_count_independent() {
        let r_base = ckpt_sim().run_or_panic();
        let mut gpu = ckpt_sim();
        gpu.run_until(100).unwrap();
        let mut bytes = Vec::new();
        gpu.write_checkpoint(&mut bytes).unwrap();
        for threads in [2, 4] {
            let mut resumed = GpuSim::read_checkpoint(&bytes[..]).unwrap();
            resumed.set_threads(threads);
            let r = resumed.run_or_panic();
            assert_eq!(r.cycles, r_base.cycles);
            assert_eq!(r.per_stream, r_base.per_stream);
            assert_eq!(r.chrome_trace_json(), r_base.chrome_trace_json());
        }
    }

    #[test]
    fn periodic_checkpoints_are_written_and_resumable() {
        let dir = std::env::temp_dir().join(format!("crisp-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r_base = ckpt_sim().run_or_panic();

        let mut gpu = ckpt_sim();
        gpu.checkpoint_every = 100;
        gpu.checkpoint_dir = Some(dir.clone());
        let r_full = gpu.run_or_panic();
        assert_eq!(r_full.cycles, r_base.cycles);

        let first = dir.join("ckpt-100.ckpt");
        assert!(first.exists(), "periodic checkpoint must be on disk");
        let mut resumed = crate::Simulation::resume(&first).unwrap();
        assert_eq!(resumed.now(), 100);
        let r = resumed.run_or_panic();
        assert_eq!(r.cycles, r_base.cycles);
        assert_eq!(r.per_stream, r_base.per_stream);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_checkpoint_rejects_garbage() {
        assert!(GpuSim::read_checkpoint(&b""[..]).is_err());
        assert!(GpuSim::read_checkpoint(&b"not a checkpoint"[..]).is_err());
        let mut bytes = Vec::new();
        ckpt_sim().write_checkpoint(&mut bytes).unwrap();
        // Truncation anywhere must error, never panic.
        assert!(GpuSim::read_checkpoint(&bytes[..bytes.len() / 2]).is_err());
        assert!(GpuSim::read_checkpoint(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn run_to_marker_parks_all_streams_at_the_barrier() {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg.clone(), PartitionSpec::fg_even(&cfg, G, C));
        gpu.set_telemetry(true, false);
        let mut sg = Stream::new(G, StreamKind::Graphics);
        sg.launch(alu_kernel("g0", 300, 2, 6, 16));
        sg.marker("roi");
        sg.launch(alu_kernel("g1", 300, 2, 6, 16));
        let mut sc = Stream::new(C, StreamKind::Compute);
        sc.launch(mem_kernel("c0", 6, 3));
        sc.marker("roi");
        sc.launch(mem_kernel("c1", 6, 3));
        gpu.load(TraceBundle::from_streams(vec![sg, sc]));

        let barrier = gpu.run_to_marker("roi").unwrap();
        assert!(barrier > 0, "the pre-barrier kernels take time");
        let r = gpu.run_or_panic();
        assert!(r.cycles > barrier, "the post-barrier kernels take time");
        // Both streams cross the barrier in the same cycle: the slower
        // stream's kernel gates the faster one's marker.
        let marks: Vec<u64> = r
            .timeline
            .instants()
            .iter()
            .filter(|i| i.name == "roi")
            .map(|i| i.at)
            .collect();
        assert_eq!(marks, vec![barrier, barrier]);
        assert_eq!(r.per_stream[&G].stats.kernels, 2);
        assert_eq!(r.per_stream[&C].stats.kernels, 2);
    }

    #[test]
    fn l2_composition_reflects_data_classes() {
        let cfg = GpuConfig::test_tiny();
        let mut gpu = GpuSim::with_spec(cfg, PartitionSpec::greedy());
        let mut s = Stream::new(C, StreamKind::Compute);
        s.launch(mem_kernel("m", 4, 1));
        gpu.load(TraceBundle::from_streams(vec![s]));
        let r = gpu.run_or_panic();
        assert!(r.l2_composition.class_lines(DataClass::Compute) > 0);
        assert!(r.l2_stats.total().accesses > 0);
        assert!(r.l1_stats.total().accesses > 0);
    }
}
