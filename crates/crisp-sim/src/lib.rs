//! Cycle-level concurrent GPU simulator for CRISP.
//!
//! Assembles the substrates — SM cores from `crisp-sm`, the memory hierarchy
//! from `crisp-mem` — into a whole GPU, replays [`crisp_trace::TraceBundle`]s
//! on it, and implements the GPU-sharing machinery that is the paper's core
//! contribution:
//!
//! * **Streams** execute concurrently; commands within a stream are ordered.
//! * The **CTA scheduler** ([`gpu::GpuSim`]) issues CTAs to SMs under a
//!   [`PartitionSpec`]:
//!   - `Greedy` — Accel-Sim's default: fill SMs from the oldest kernel.
//!   - `Mps` — coarse inter-SM partition, shared L2.
//!   - `Mig` — inter-SM partition plus L2 bank masks (full isolation).
//!   - `FgStatic` — fine-grained intra-SM partition via per-stream resource
//!     quotas (async-compute style).
//!   - `FgDynamic` — the quota ratio is chosen at runtime by
//!     **warped-slicer** (Xu et al., ISCA 2016): parallel SMs sample
//!     different ratios, and water-filling over the measured performance
//!     curves picks the split, re-evaluated at kernel launches and drawcalls.
//! * The L2 can independently run **TAP** set partitioning or **MiG** bank
//!   masking (see `crisp-mem`).
//! * Statistics are kept **per stream** (the paper extends Accel-Sim the
//!   same way), including occupancy timelines (Fig 13) and L2 composition
//!   snapshots (Figs 11, 15).
//!
//! The front door is [`Simulation::builder`]: pick a [`GpuConfig`], a
//! [`PartitionSpec`], optionally a worker-thread count (`.threads(n)` — the
//! sharded cycle loop is bit-identical to serial at any count) and a
//! [`Telemetry`] set, hand it a trace, and `run()`. `.trace(..)` accepts
//! anything convertible to a [`TraceInput`] — an in-memory bundle, a path
//! to a CRSP container, or a seekable reader. Container inputs **stream**:
//! each CTA's instructions are demand-paged through a [`TraceSource`] on
//! first dispatch and dropped when the CTA commits, so peak memory tracks
//! the in-flight window rather than the whole trace, with bit-identical
//! results either way ([`SimResult::trace`] reports the paging counters).
//!
//! Long simulations can **checkpoint and resume**: `.checkpoint_every(n)` /
//! `.checkpoint_to(dir)` write the full architectural state (warp contexts,
//! caches, MSHRs, queues, statistics, telemetry) into versioned `CKPT`
//! files via `crisp-ckpt`, and [`Simulation::resume`] restores a simulator
//! that continues bit-identically at any worker-thread count. For region-of-
//! interest sampling, `.fast_forward_to(marker)` functionally drains the
//! commands before a marker — warming L1/L2/DRAM state without charging
//! cycles — then simulates the ROI in detail.

mod config;
mod error;
mod gpu;
mod policy;
mod sim;
mod slicer;
mod stats;

pub use config::GpuConfig;
pub use error::{DeadlockReport, HangContext, SimError, StreamFrontier};
pub use gpu::{
    GpuSim, KernelRecord, SimResult, StreamResult, CLEAR_STATS_MARKER, DEFAULT_WATCHDOG,
};
pub use policy::{L2Policy, PartitionSpec, SmPartition};
pub use sim::{Simulation, SimulationBuilder, Telemetry};
pub use slicer::{SlicerConfig, WarpedSlicer};
pub use stats::{OccupancySample, PerStreamStats};

pub use crisp_analyze::{AnalysisConfig, LintLevel};
pub use crisp_mem::{MemConfig, TapConfig};
pub use crisp_obs as obs;
pub use crisp_obs::{Labels, MetricsSnapshot, TraceLog};
pub use crisp_sm::{
    CtaDiagnostics, ResourceQuota, SchedulerPolicy, SmConfig, SmDiagnostics, StallBreakdown,
    WarpDiagnostics, WarpStall,
};
pub use crisp_trace::{
    KernelId, KernelInfo, StreamId, StreamKind, TraceBundle, TraceError, TraceErrorKind,
    TraceInput, TraceSource, TraceStats,
};
