//! GPU partition policies (paper Figure 4).

use std::collections::HashMap;
use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_mem::TapConfig;
use crisp_sm::{ResourceQuota, SmConfig};
use crisp_trace::StreamId;

use crate::config::GpuConfig;
use crate::slicer::SlicerConfig;

/// How SMs are divided among streams.
#[derive(Debug, Clone)]
pub enum SmPartition {
    /// Accel-Sim default: launch CTAs from the oldest stream exhaustively
    /// before the next ("if a kernel is large enough ... there is no
    /// concurrent execution").
    Greedy,
    /// Coarse inter-SM partition: each stream owns the listed SMs
    /// (MPS and MiG).
    InterSm(HashMap<StreamId, Vec<usize>>),
    /// Fine-grained intra-SM partition with static per-stream quotas.
    IntraSm(HashMap<StreamId, ResourceQuota>),
    /// Fine-grained intra-SM partition tuned at runtime by warped-slicer.
    IntraSmDynamic(SlicerConfig),
}

/// How the L2 is divided among streams.
#[derive(Debug, Clone)]
pub enum L2Policy {
    /// Fully shared (MPS and intra-SM modes).
    Shared,
    /// MiG: L2 banks split between the two streams (bank-level isolation,
    /// which also slices L2 bandwidth).
    BankSplit,
    /// TAP set partitioning: banks shared, sets assigned per stream by the
    /// TLP-aware utility controller.
    Tap(TapConfig),
}

/// A full partition specification: SM side plus L2 side.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// SM-side policy.
    pub sm: SmPartition,
    /// L2-side policy.
    pub l2: L2Policy,
}

impl PartitionSpec {
    /// Accel-Sim's default greedy scheduler, shared L2.
    pub fn greedy() -> Self {
        PartitionSpec {
            sm: SmPartition::Greedy,
            l2: L2Policy::Shared,
        }
    }

    /// MPS with an even inter-SM split between two streams; L2 shared.
    pub fn mps_even(cfg: &GpuConfig, a: StreamId, b: StreamId) -> Self {
        let half = cfg.n_sms / 2;
        let mut m = HashMap::new();
        m.insert(a, (0..half).collect());
        m.insert(b, (half..cfg.n_sms).collect());
        PartitionSpec {
            sm: SmPartition::InterSm(m),
            l2: L2Policy::Shared,
        }
    }

    /// MiG with an even inter-SM split and bank-level L2 isolation.
    pub fn mig_even(cfg: &GpuConfig, a: StreamId, b: StreamId) -> Self {
        let spec = PartitionSpec::mps_even(cfg, a, b);
        PartitionSpec {
            sm: spec.sm,
            l2: L2Policy::BankSplit,
        }
    }

    /// Fine-grained intra-SM partition with an even static split ("EVEN" in
    /// Figure 12): every SM runs both streams, half resources each.
    pub fn fg_even(cfg: &GpuConfig, a: StreamId, b: StreamId) -> Self {
        let mut q = HashMap::new();
        q.insert(a, ResourceQuota::fraction(&cfg.sm, 1, 2));
        q.insert(b, ResourceQuota::fraction(&cfg.sm, 1, 2));
        PartitionSpec {
            sm: SmPartition::IntraSm(q),
            l2: L2Policy::Shared,
        }
    }

    /// Fine-grained intra-SM partition driven by warped-slicer ("Dynamic"
    /// in Figure 12).
    pub fn fg_dynamic(slicer: SlicerConfig) -> Self {
        PartitionSpec {
            sm: SmPartition::IntraSmDynamic(slicer),
            l2: L2Policy::Shared,
        }
    }

    /// Fine-grained intra-SM partition with arbitrary per-stream fractions
    /// — the paper's Section IV notes the framework "can be easily
    /// extended to support more than 2 workloads"; this is that extension.
    ///
    /// # Panics
    ///
    /// Panics if the fractions sum to more than 1.
    pub fn fg_fractions(
        cfg: &GpuConfig,
        shares: impl IntoIterator<Item = (StreamId, (u32, u32))>,
    ) -> Self {
        let mut q = HashMap::new();
        let mut total = 0.0;
        for (id, (num, denom)) in shares {
            total += num as f64 / denom as f64;
            q.insert(id, ResourceQuota::fraction(&cfg.sm, num, denom));
        }
        assert!(
            total <= 1.0 + 1e-9,
            "quota fractions exceed the SM ({total})"
        );
        PartitionSpec {
            sm: SmPartition::IntraSm(q),
            l2: L2Policy::Shared,
        }
    }

    /// MPS inter-SM split with TAP set partitioning in the L2 (Figure 14's
    /// "TAP" configuration).
    pub fn tap_even(cfg: &GpuConfig, a: StreamId, b: StreamId, tap: TapConfig) -> Self {
        let spec = PartitionSpec::mps_even(cfg, a, b);
        PartitionSpec {
            sm: spec.sm,
            l2: L2Policy::Tap(tap),
        }
    }

    /// The SMs `stream` may receive CTAs on, out of `n_sms`.
    pub fn sms_for(&self, stream: StreamId, n_sms: usize) -> Vec<usize> {
        match &self.sm {
            SmPartition::InterSm(m) => m
                .get(&stream)
                .cloned()
                .unwrap_or_else(|| (0..n_sms).collect()),
            _ => (0..n_sms).collect(),
        }
    }

    /// The static quota `stream` gets on every SM (dynamic mode returns the
    /// quota chosen by the slicer at runtime, handled in `GpuSim`).
    pub fn static_quota(&self, stream: StreamId, _sm_cfg: &SmConfig) -> ResourceQuota {
        match &self.sm {
            SmPartition::IntraSm(q) => q
                .get(&stream)
                .copied()
                .unwrap_or_else(ResourceQuota::unlimited),
            _ => ResourceQuota::unlimited(),
        }
    }
}

impl CheckpointState for SmPartition {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        match self {
            SmPartition::Greedy => w.u8(0),
            SmPartition::InterSm(m) => {
                w.u8(1)?;
                let mut streams: Vec<StreamId> = m.keys().copied().collect();
                streams.sort_unstable();
                w.len(streams.len())?;
                for s in streams {
                    w.stream(s)?;
                    let sms = &m[&s];
                    w.len(sms.len())?;
                    for &sm in sms {
                        w.u64(sm as u64)?;
                    }
                }
                Ok(())
            }
            SmPartition::IntraSm(q) => {
                w.u8(2)?;
                let mut streams: Vec<StreamId> = q.keys().copied().collect();
                streams.sort_unstable();
                w.len(streams.len())?;
                for s in streams {
                    w.stream(s)?;
                    q[&s].save(w, ())?;
                }
                Ok(())
            }
            SmPartition::IntraSmDynamic(cfg) => {
                w.u8(3)?;
                cfg.save(w, ())
            }
        }
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        match r.u8()? {
            0 => Ok(SmPartition::Greedy),
            1 => {
                let n = r.len(1 << 16)?;
                let mut m = HashMap::with_capacity(n);
                for _ in 0..n {
                    let s = r.stream()?;
                    let k = r.len(1 << 16)?;
                    let mut sms = Vec::with_capacity(k);
                    for _ in 0..k {
                        sms.push(r.u64()? as usize);
                    }
                    m.insert(s, sms);
                }
                Ok(SmPartition::InterSm(m))
            }
            2 => {
                let n = r.len(1 << 16)?;
                let mut q = HashMap::with_capacity(n);
                for _ in 0..n {
                    let s = r.stream()?;
                    q.insert(s, ResourceQuota::restore(r, ())?);
                }
                Ok(SmPartition::IntraSm(q))
            }
            3 => Ok(SmPartition::IntraSmDynamic(SlicerConfig::restore(r, ())?)),
            t => Err(bad(format!("unknown SM-partition tag {t}"))),
        }
    }
}

impl CheckpointState for L2Policy {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        match self {
            L2Policy::Shared => w.u8(0),
            L2Policy::BankSplit => w.u8(1),
            L2Policy::Tap(tap) => {
                w.u8(2)?;
                w.u64(tap.epoch_accesses)?;
                w.u64(tap.sample_every)?;
                w.u64(tap.min_sets)
            }
        }
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        match r.u8()? {
            0 => Ok(L2Policy::Shared),
            1 => Ok(L2Policy::BankSplit),
            2 => Ok(L2Policy::Tap(TapConfig {
                epoch_accesses: r.u64()?,
                sample_every: r.u64()?,
                min_sets: r.u64()?,
            })),
            t => Err(bad(format!("unknown L2-policy tag {t}"))),
        }
    }
}

impl CheckpointState for PartitionSpec {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        self.sm.save(w, ())?;
        self.l2.save(w, ())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(PartitionSpec {
            sm: SmPartition::restore(r, ())?,
            l2: L2Policy::restore(r, ())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: StreamId = StreamId(0);
    const B: StreamId = StreamId(1);

    #[test]
    fn mps_even_splits_sms() {
        let cfg = GpuConfig::rtx3070();
        let p = PartitionSpec::mps_even(&cfg, A, B);
        let sa = p.sms_for(A, cfg.n_sms);
        let sb = p.sms_for(B, cfg.n_sms);
        assert_eq!(sa.len(), 23);
        assert_eq!(sb.len(), 23);
        assert!(sa.iter().all(|s| !sb.contains(s)), "disjoint SM sets");
        assert!(matches!(p.l2, L2Policy::Shared));
    }

    #[test]
    fn mig_uses_bank_split() {
        let cfg = GpuConfig::rtx3070();
        let p = PartitionSpec::mig_even(&cfg, A, B);
        assert!(matches!(p.l2, L2Policy::BankSplit));
    }

    #[test]
    fn fg_even_quotas_are_half() {
        let cfg = GpuConfig::jetson_orin();
        let p = PartitionSpec::fg_even(&cfg, A, B);
        let q = p.static_quota(A, &cfg.sm);
        assert_eq!(q.warps, cfg.sm.max_warps / 2);
        assert_eq!(q.regs, cfg.sm.max_regs / 2);
        // Every SM remains available to both streams.
        assert_eq!(p.sms_for(A, cfg.n_sms).len(), cfg.n_sms);
    }

    #[test]
    fn greedy_imposes_nothing() {
        let cfg = GpuConfig::test_tiny();
        let p = PartitionSpec::greedy();
        assert_eq!(p.sms_for(A, cfg.n_sms).len(), cfg.n_sms);
        assert_eq!(p.static_quota(A, &cfg.sm), ResourceQuota::unlimited());
    }

    #[test]
    fn fg_fractions_supports_three_streams() {
        let cfg = GpuConfig::jetson_orin();
        let p =
            PartitionSpec::fg_fractions(&cfg, [(A, (4, 8)), (B, (2, 8)), (StreamId(2), (2, 8))]);
        assert_eq!(p.static_quota(A, &cfg.sm).warps, cfg.sm.max_warps / 2);
        assert_eq!(p.static_quota(B, &cfg.sm).warps, cfg.sm.max_warps / 4);
        assert_eq!(
            p.static_quota(StreamId(2), &cfg.sm).warps,
            cfg.sm.max_warps / 4
        );
    }

    #[test]
    #[should_panic(expected = "exceed the SM")]
    fn fg_fractions_rejects_oversubscription() {
        let cfg = GpuConfig::jetson_orin();
        let _ = PartitionSpec::fg_fractions(&cfg, [(A, (6, 8)), (B, (4, 8))]);
    }

    #[test]
    fn checkpoint_roundtrip_covers_every_variant() {
        let cfg = GpuConfig::test_tiny();
        let specs = [
            PartitionSpec::greedy(),
            PartitionSpec::mps_even(&cfg, A, B),
            PartitionSpec::mig_even(&cfg, A, B),
            PartitionSpec::fg_even(&cfg, A, B),
            PartitionSpec::fg_dynamic(SlicerConfig::default()),
            PartitionSpec::tap_even(&cfg, A, B, TapConfig::default()),
        ];
        for spec in specs {
            let mut buf = Vec::new();
            let mut w = Writer::new(&mut buf);
            spec.save(&mut w, ()).unwrap();
            let mut r = Reader::new(buf.as_slice());
            let back = PartitionSpec::restore(&mut r, ()).unwrap();
            // No PartialEq on the spec (HashMaps inside); compare behaviour.
            for s in [A, B, StreamId(7)] {
                assert_eq!(back.sms_for(s, cfg.n_sms), spec.sms_for(s, cfg.n_sms));
                assert_eq!(back.static_quota(s, &cfg.sm), spec.static_quota(s, &cfg.sm));
            }
            assert_eq!(
                std::mem::discriminant(&back.l2),
                std::mem::discriminant(&spec.l2)
            );
        }
    }

    #[test]
    fn unknown_stream_defaults_to_everything() {
        let cfg = GpuConfig::test_tiny();
        let p = PartitionSpec::mps_even(&cfg, A, B);
        assert_eq!(p.sms_for(StreamId(9), cfg.n_sms).len(), cfg.n_sms);
    }
}
