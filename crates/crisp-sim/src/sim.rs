//! The front-door simulation API: a fluent builder over [`GpuSim`].
//!
//! ```
//! use crisp_sim::{GpuConfig, PartitionSpec, Simulation, Telemetry};
//! # use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream, StreamId,
//! #                   StreamKind, TraceBundle, WarpTrace};
//! # let mut w = WarpTrace::new();
//! # w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
//! # w.seal();
//! # let k = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![w])]);
//! # let mut s = Stream::new(StreamId(0), StreamKind::Compute);
//! # s.launch(k);
//! # let bundle = TraceBundle::from_streams(vec![s]);
//! let result = Simulation::builder()
//!     .gpu(GpuConfig::test_tiny())
//!     .partition(PartitionSpec::greedy())
//!     .threads(4)                  // bit-identical to .threads(1)
//!     .telemetry(Telemetry::FULL)
//!     .trace(bundle)
//!     .run();
//! assert!(result.cycles > 0);
//! ```

use crate::config::GpuConfig;
use crate::gpu::{GpuSim, SimResult};
use crate::policy::{L2Policy, PartitionSpec};
use crisp_trace::TraceBundle;

/// Which periodic telemetry a simulation records.
///
/// A set of flags combined with `|`. Collecting timelines costs memory and
/// a little time on large runs; [`Telemetry::NONE`] turns them all off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry(u8);

impl Telemetry {
    /// No periodic sampling: `occupancy` and `ipc_timeline` stay empty and
    /// only the final L2 composition snapshot is taken.
    pub const NONE: Telemetry = Telemetry(0);
    /// Occupancy + per-stream IPC timelines (paper Figure 13).
    pub const OCCUPANCY: Telemetry = Telemetry(1);
    /// Periodic L2 composition snapshots (paper Figures 11 and 15).
    pub const COMPOSITION: Telemetry = Telemetry(2);
    /// Cycle-stamped span timeline: kernel launch→retire, CTA issue→commit,
    /// stream markers. Exported via [`SimResult::chrome_trace_json`].
    pub const TIMELINE: Telemetry = Telemetry(1 << 2);
    /// Periodic counter sampling (per-stream IPC, cache hit rates, DRAM
    /// traffic) into the trace, plus the counter CSV export.
    pub const METRICS: Telemetry = Telemetry(1 << 3);
    /// Everything — always the union of every defined flag.
    pub const FULL: Telemetry = Telemetry(
        Telemetry::OCCUPANCY.0
            | Telemetry::COMPOSITION.0
            | Telemetry::TIMELINE.0
            | Telemetry::METRICS.0,
    );

    /// Whether every flag in `other` is enabled.
    pub fn contains(self, other: Telemetry) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Telemetry {
    type Output = Telemetry;
    fn bitor(self, rhs: Telemetry) -> Telemetry {
        Telemetry(self.0 | rhs.0)
    }
}

impl Default for Telemetry {
    /// Occupancy sampling on, composition timeline off — the historical
    /// default of [`GpuSim`].
    fn default() -> Self {
        Telemetry::OCCUPANCY
    }
}

/// Entry point of the simulation API; see [`Simulation::builder`].
///
/// The name exists so call sites read `Simulation::builder()...run()`;
/// configuring and running happens entirely on [`SimulationBuilder`].
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Start configuring a simulation. Every knob has a sensible default:
    /// Jetson Orin hardware, greedy (unpartitioned) scheduling, shared L2,
    /// one worker thread, occupancy telemetry, no trace.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Restore a simulator from a checkpoint file written via
    /// [`SimulationBuilder::checkpoint_every`] or
    /// [`GpuSim::save_checkpoint`]. The resumed run is **bit-identical** to
    /// the uninterrupted one — same [`SimResult`], metrics, and exported
    /// timeline — at any worker-thread count ([`GpuSim::set_threads`] may
    /// be called on the result).
    ///
    /// # Errors
    ///
    /// Returns filesystem errors and `InvalidData` for malformed, truncated,
    /// or corrupt checkpoints; never panics on bad input.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<GpuSim> {
        let file = std::fs::File::open(path)?;
        GpuSim::read_checkpoint(std::io::BufReader::new(file))
    }
}

/// Fluent configuration for one simulation run.
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    gpu: Option<GpuConfig>,
    partition: Option<PartitionSpec>,
    l2: Option<L2Policy>,
    threads: Option<usize>,
    telemetry: Telemetry,
    occupancy_interval: Option<u64>,
    composition_interval: Option<u64>,
    counter_interval: Option<u64>,
    profile_to: Option<std::path::PathBuf>,
    checkpoint_every: Option<u64>,
    checkpoint_to: Option<std::path::PathBuf>,
    fast_forward_to: Option<String>,
    trace: Option<TraceBundle>,
}

impl SimulationBuilder {
    /// Hardware configuration (default: [`GpuConfig::jetson_orin`]).
    pub fn gpu(mut self, cfg: GpuConfig) -> Self {
        self.gpu = Some(cfg);
        self
    }

    /// Partition policy (default: [`PartitionSpec::greedy`]).
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partition = Some(spec);
        self
    }

    /// Override just the L2 policy of the partition spec.
    pub fn l2(mut self, policy: L2Policy) -> Self {
        self.l2 = Some(policy);
        self
    }

    /// Worker threads for the cycle loop (default: [`GpuConfig::threads`],
    /// i.e. 1). Results are bit-identical for any value.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Which periodic telemetry to record (default:
    /// [`Telemetry::OCCUPANCY`]).
    pub fn telemetry(mut self, t: Telemetry) -> Self {
        self.telemetry = t;
        self
    }

    /// Cycles between occupancy/IPC samples (default 2000; 0 disables,
    /// equivalent to dropping [`Telemetry::OCCUPANCY`]).
    pub fn occupancy_interval(mut self, cycles: u64) -> Self {
        self.occupancy_interval = Some(cycles);
        self
    }

    /// Cycles between L2 composition snapshots (default 10_000 when
    /// [`Telemetry::COMPOSITION`] is enabled; 0 disables the timeline).
    pub fn composition_interval(mut self, cycles: u64) -> Self {
        self.composition_interval = Some(cycles);
        self
    }

    /// Cycles between counter samples in the trace (default 1000 when
    /// [`Telemetry::METRICS`] is enabled; a non-zero value here enables
    /// counter sampling even without the flag, mirroring
    /// [`occupancy_interval`](Self::occupancy_interval)).
    pub fn counter_interval(mut self, cycles: u64) -> Self {
        self.counter_interval = Some(cycles);
        self
    }

    /// Write the run's profile artifacts into `dir` after
    /// [`run`](Self::run): `trace.json` (Chrome Trace Event Format, load in
    /// Perfetto), `counters.csv`, `metrics.csv`, and `profile.txt` (the
    /// human-readable report). Equivalent to calling
    /// [`SimResult::write_profile`] yourself; only applies to `run()`, not
    /// [`build`](Self::build).
    pub fn profile_to(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.profile_to = Some(dir.into());
        self
    }

    /// Write a checkpoint every `cycles` cycles during the run (0 disables,
    /// the default). Files are named `ckpt-<cycle>.ckpt` inside the
    /// [`checkpoint_to`](Self::checkpoint_to) directory. Resume with
    /// [`Simulation::resume`].
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = Some(cycles);
        self
    }

    /// Directory periodic checkpoints are written into (default: the
    /// current directory). Created on first write if missing.
    pub fn checkpoint_to(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_to = Some(dir.into());
        self
    }

    /// Skip ahead to the region of interest: functionally drain every
    /// stream's commands up to the first marker named `label`, warming the
    /// cache/DRAM state without charging cycles, then simulate in detail
    /// from there (see [`GpuSim::fast_forward_to_marker`]).
    pub fn fast_forward_to(mut self, label: impl Into<String>) -> Self {
        self.fast_forward_to = Some(label.into());
        self
    }

    /// The workload to replay.
    pub fn trace(mut self, bundle: TraceBundle) -> Self {
        self.trace = Some(bundle);
        self
    }

    /// Construct the configured [`GpuSim`] without running it (incremental
    /// drivers call [`GpuSim::step`] themselves).
    ///
    /// # Panics
    ///
    /// Panics if the trace violates the partition policy's expectations
    /// (see [`GpuSim::load`]).
    pub fn build(self) -> GpuSim {
        let cfg = self.gpu.unwrap_or_else(GpuConfig::jetson_orin);
        let mut spec = self.partition.unwrap_or_else(PartitionSpec::greedy);
        if let Some(l2) = self.l2 {
            spec.l2 = l2;
        }
        let mut sim = GpuSim::with_spec(cfg, spec);
        if let Some(n) = self.threads {
            sim.set_threads(n);
        }
        sim.occupancy_interval = match self.occupancy_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::OCCUPANCY) => 2_000,
            None => 0,
        };
        sim.composition_interval = match self.composition_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::COMPOSITION) => 10_000,
            None => 0,
        };
        sim.counter_interval = match self.counter_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::METRICS) => 1_000,
            None => 0,
        };
        sim.set_telemetry(
            self.telemetry.contains(Telemetry::TIMELINE),
            sim.counter_interval > 0,
        );
        if let Some(cycles) = self.checkpoint_every {
            sim.checkpoint_every = cycles;
        }
        sim.checkpoint_dir = self.checkpoint_to;
        if let Some(bundle) = self.trace {
            sim.load(bundle);
        }
        if let Some(label) = self.fast_forward_to {
            sim.fast_forward_to_marker(&label);
        }
        sim
    }

    /// Build and run to completion.
    ///
    /// # Panics
    ///
    /// As [`GpuSim::run`]: on an unplaceable CTA or a blown cycle budget.
    /// Additionally panics if [`profile_to`](Self::profile_to) was set and
    /// the artifacts cannot be written.
    pub fn run(mut self) -> SimResult {
        let profile_dir = self.profile_to.take();
        let result = self.build().run();
        if let Some(dir) = profile_dir {
            result
                .write_profile(&dir)
                .unwrap_or_else(|e| panic!("failed to write profile to {}: {e}", dir.display()));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{
        CtaTrace, Instr, KernelTrace, Op, Reg, Stream, StreamId, StreamKind, WarpTrace,
    };

    fn bundle() -> TraceBundle {
        let mut w = WarpTrace::new();
        for i in 0..20 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("k", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        TraceBundle::from_streams(vec![s])
    }

    #[test]
    fn defaults_match_historical_behavior() {
        let sim = Simulation::builder().build();
        assert_eq!(sim.config().name, "Jetson Orin");
        assert_eq!(sim.occupancy_interval, 2_000);
        assert_eq!(sim.composition_interval, 0);
        assert_eq!(sim.threads(), 1);
    }

    #[test]
    fn telemetry_flags_combine() {
        assert!(Telemetry::FULL.contains(Telemetry::OCCUPANCY));
        assert!(Telemetry::FULL.contains(Telemetry::COMPOSITION));
        assert!(Telemetry::FULL.contains(Telemetry::TIMELINE));
        assert!(Telemetry::FULL.contains(Telemetry::METRICS));
        assert!(!Telemetry::NONE.contains(Telemetry::OCCUPANCY));
        // FULL is exactly the union of every defined flag — adding a flag
        // without folding it into FULL is the historical bug this guards.
        assert_eq!(
            Telemetry::OCCUPANCY
                | Telemetry::COMPOSITION
                | Telemetry::TIMELINE
                | Telemetry::METRICS,
            Telemetry::FULL
        );
        assert!(!(Telemetry::OCCUPANCY | Telemetry::COMPOSITION).contains(Telemetry::TIMELINE));
    }

    #[test]
    fn telemetry_none_disables_sampling() {
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::NONE)
            .trace(bundle())
            .run();
        assert!(r.occupancy.is_empty());
        assert!(r.ipc_timeline.is_empty());
        assert!(r.l2_composition_timeline.is_empty());
        assert!(r.timeline.is_empty(), "no spans without TIMELINE");
        assert!(r.cycles > 0);
    }

    #[test]
    fn timeline_telemetry_records_spans() {
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::TIMELINE)
            .trace(bundle())
            .run();
        // One kernel span + one CTA span per CTA in the grid.
        assert!(r.timeline.span_count() >= 5, "kernel + 4 CTA spans");
        assert!(r
            .timeline
            .spans()
            .any(|s| s.cat == "kernel" && s.name == "k"));
        let json = r.chrome_trace_json();
        crisp_obs::json::validate(&json).expect("valid Chrome trace");
    }

    #[test]
    fn metrics_telemetry_samples_counters() {
        let mut w = WarpTrace::new();
        for i in 0..400 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("long", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::METRICS)
            .counter_interval(50)
            .trace(TraceBundle::from_streams(vec![s]))
            .run();
        assert!(!r.timeline.counters().is_empty());
        assert!(r
            .timeline
            .counters()
            .iter()
            .any(|c| c.name == "stream0/ipc" && c.value > 0.0));
        let csv = r.counters_csv();
        assert!(csv.starts_with("cycle,counter,value\n"));
        assert!(csv.lines().count() > 1);
    }

    #[test]
    fn explicit_interval_overrides_telemetry() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::NONE)
            .occupancy_interval(50)
            .build();
        assert_eq!(sim.occupancy_interval, 50);
    }

    #[test]
    fn composition_telemetry_samples_timeline() {
        let mut w = WarpTrace::new();
        for i in 0..500 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("long", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::FULL)
            .occupancy_interval(50)
            .composition_interval(25)
            .trace(TraceBundle::from_streams(vec![s]))
            .run();
        assert!(r.cycles > 100, "workload long enough to sample");
        assert!(!r.occupancy.is_empty());
        assert!(!r.l2_composition_timeline.is_empty());
    }

    #[test]
    fn l2_override_applies() {
        let cfg = GpuConfig::test_tiny();
        let spec = PartitionSpec::greedy();
        let sim = Simulation::builder()
            .gpu(cfg)
            .partition(spec)
            .l2(L2Policy::Shared)
            .build();
        assert_eq!(sim.threads(), 1);
    }

    #[test]
    fn threads_knob_reaches_the_sim() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .threads(4)
            .build();
        assert_eq!(sim.threads(), 4);
        let mut cfg = GpuConfig::test_tiny();
        cfg.threads = 3;
        let sim = Simulation::builder().gpu(cfg).build();
        assert_eq!(sim.threads(), 3);
    }

    #[test]
    fn builder_constructs_a_runnable_sim() {
        let mut gpu = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .partition(PartitionSpec::greedy())
            .trace(bundle())
            .build();
        assert!(gpu.run().cycles > 0);
    }

    #[test]
    fn checkpoint_knobs_reach_the_sim() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .checkpoint_every(5_000)
            .checkpoint_to("/tmp/ckpts")
            .build();
        assert_eq!(sim.checkpoint_every, 5_000);
        assert_eq!(
            sim.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpts"))
        );
    }

    #[test]
    fn fast_forward_skips_to_the_marker() {
        // Two identical kernels split by a marker: fast-forwarding to the
        // marker must simulate only the second one in detail.
        let mk = |name: &str| {
            let mut w = WarpTrace::new();
            for i in 0..200 {
                w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
            }
            w.seal();
            KernelTrace::new(name, 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4])
        };
        let two_phase = || {
            let mut s = Stream::new(StreamId(0), StreamKind::Compute);
            s.launch(mk("warmup"));
            s.marker("roi");
            s.launch(mk("roi_kernel"));
            TraceBundle::from_streams(vec![s])
        };
        let full = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(two_phase())
            .run();
        let roi = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(two_phase())
            .fast_forward_to("roi")
            .run();
        assert_eq!(full.per_stream[&StreamId(0)].stats.kernels, 2);
        assert_eq!(roi.per_stream[&StreamId(0)].stats.kernels, 1);
        assert!(
            roi.cycles * 2 < full.cycles + 10,
            "ROI run must only simulate the second kernel: full {} roi {}",
            full.cycles,
            roi.cycles
        );
        assert_eq!(roi.kernel_log.len(), 1);
        assert_eq!(roi.kernel_log[0].name, "roi_kernel");
    }
}
