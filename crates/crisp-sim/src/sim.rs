//! The front-door simulation API: a fluent builder over [`GpuSim`].
//!
//! ```
//! use crisp_sim::{GpuConfig, PartitionSpec, Simulation, Telemetry};
//! # use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream, StreamId,
//! #                   StreamKind, TraceBundle, WarpTrace};
//! # let mut w = WarpTrace::new();
//! # w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
//! # w.seal();
//! # let k = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![w])]);
//! # let mut s = Stream::new(StreamId(0), StreamKind::Compute);
//! # s.launch(k);
//! # let bundle = TraceBundle::from_streams(vec![s]);
//! let result = Simulation::builder()
//!     .gpu(GpuConfig::test_tiny())
//!     .partition(PartitionSpec::greedy())
//!     .threads(4)                  // bit-identical to .threads(1)
//!     .telemetry(Telemetry::FULL)
//!     .trace(bundle)
//!     .run()
//!     .expect("valid trace and config");
//! assert!(result.cycles > 0);
//! ```
//!
//! `run()` returns `Result<SimResult, SimError>`: the trace and
//! configuration are validated up front (pre-flight), and a run that
//! wedges, blows its cycle budget, or loses a worker thread comes back as
//! a structured [`SimError`] with a diagnostic report instead of a panic.
//! Benches and throwaway scripts can use
//! [`run_or_panic`](SimulationBuilder::run_or_panic).

use crate::config::GpuConfig;
use crate::error::SimError;
use crate::gpu::{GpuSim, SimResult, DEFAULT_WATCHDOG};
use crate::policy::{L2Policy, PartitionSpec, SmPartition};
use crisp_analyze::{AnalysisConfig, LintLevel};
use crisp_obs::host::{set_alloc_phase, HostPhase, HostProfiler};
use crisp_sm::CtaResources;
use crisp_trace::{CommandMeta, TraceInput, TraceSource};

/// Which periodic telemetry a simulation records.
///
/// A set of flags combined with `|`. Collecting timelines costs memory and
/// a little time on large runs; [`Telemetry::NONE`] turns them all off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry(u8);

impl Telemetry {
    /// No periodic sampling: `occupancy` and `ipc_timeline` stay empty and
    /// only the final L2 composition snapshot is taken.
    pub const NONE: Telemetry = Telemetry(0);
    /// Occupancy + per-stream IPC timelines (paper Figure 13).
    pub const OCCUPANCY: Telemetry = Telemetry(1);
    /// Periodic L2 composition snapshots (paper Figures 11 and 15).
    pub const COMPOSITION: Telemetry = Telemetry(2);
    /// Cycle-stamped span timeline: kernel launch→retire, CTA issue→commit,
    /// stream markers. Exported via [`SimResult::chrome_trace_json`].
    pub const TIMELINE: Telemetry = Telemetry(1 << 2);
    /// Periodic counter sampling (per-stream IPC, cache hit rates, DRAM
    /// traffic) into the trace, plus the counter CSV export.
    pub const METRICS: Telemetry = Telemetry(1 << 3);
    /// Trace-paging residency gauges (`trace/resident_ctas`,
    /// `trace/bytes_decoded`, …) in the final metrics snapshot — the
    /// observability half of the streaming [`TraceSource`] path. See
    /// [`SimResult::trace`](crate::SimResult::trace) for the raw counters.
    pub const RESIDENCY: Telemetry = Telemetry(1 << 4);
    /// Everything — always the union of every defined flag.
    pub const FULL: Telemetry = Telemetry(
        Telemetry::OCCUPANCY.0
            | Telemetry::COMPOSITION.0
            | Telemetry::TIMELINE.0
            | Telemetry::METRICS.0
            | Telemetry::RESIDENCY.0,
    );

    /// Whether every flag in `other` is enabled.
    pub fn contains(self, other: Telemetry) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Telemetry {
    type Output = Telemetry;
    fn bitor(self, rhs: Telemetry) -> Telemetry {
        Telemetry(self.0 | rhs.0)
    }
}

impl Default for Telemetry {
    /// Occupancy sampling on, composition timeline off — the historical
    /// default of [`GpuSim`].
    fn default() -> Self {
        Telemetry::OCCUPANCY
    }
}

/// Entry point of the simulation API; see [`Simulation::builder`].
///
/// The name exists so call sites read `Simulation::builder()...run()`;
/// configuring and running happens entirely on [`SimulationBuilder`].
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Start configuring a simulation. Every knob has a sensible default:
    /// Jetson Orin hardware, greedy (unpartitioned) scheduling, shared L2,
    /// one worker thread, occupancy telemetry, no trace.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Restore a simulator from a checkpoint file written via
    /// [`SimulationBuilder::checkpoint_every`] or
    /// [`GpuSim::save_checkpoint`]. The resumed run is **bit-identical** to
    /// the uninterrupted one — same [`SimResult`], metrics, and exported
    /// timeline — at any worker-thread count ([`GpuSim::set_threads`] may
    /// be called on the result).
    ///
    /// # Errors
    ///
    /// Returns filesystem errors and `InvalidData` for malformed, truncated,
    /// or corrupt checkpoints; never panics on bad input.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<GpuSim> {
        let file = std::fs::File::open(path)?;
        GpuSim::read_checkpoint(std::io::BufReader::new(file))
    }
}

/// Fluent configuration for one simulation run.
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    gpu: Option<GpuConfig>,
    partition: Option<PartitionSpec>,
    l2: Option<L2Policy>,
    threads: Option<usize>,
    telemetry: Telemetry,
    occupancy_interval: Option<u64>,
    composition_interval: Option<u64>,
    counter_interval: Option<u64>,
    profile_to: Option<std::path::PathBuf>,
    checkpoint_every: Option<u64>,
    checkpoint_to: Option<std::path::PathBuf>,
    fast_forward_to: Option<String>,
    trace: Option<TraceInput>,
    watchdog: Option<u64>,
    skip_preflight: bool,
    analyze: LintLevel,
    analyze_config: Option<AnalysisConfig>,
    host_profile: bool,
    heartbeat_interval: Option<u64>,
}

impl SimulationBuilder {
    /// Hardware configuration (default: [`GpuConfig::jetson_orin`]).
    pub fn gpu(mut self, cfg: GpuConfig) -> Self {
        self.gpu = Some(cfg);
        self
    }

    /// Partition policy (default: [`PartitionSpec::greedy`]).
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partition = Some(spec);
        self
    }

    /// Override just the L2 policy of the partition spec.
    pub fn l2(mut self, policy: L2Policy) -> Self {
        self.l2 = Some(policy);
        self
    }

    /// Worker threads for the cycle loop (default: [`GpuConfig::threads`],
    /// i.e. 1). Results are bit-identical for any value.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Which periodic telemetry to record (default:
    /// [`Telemetry::OCCUPANCY`]).
    pub fn telemetry(mut self, t: Telemetry) -> Self {
        self.telemetry = t;
        self
    }

    /// Cycles between occupancy/IPC samples (default 2000; 0 disables,
    /// equivalent to dropping [`Telemetry::OCCUPANCY`]).
    pub fn occupancy_interval(mut self, cycles: u64) -> Self {
        self.occupancy_interval = Some(cycles);
        self
    }

    /// Cycles between L2 composition snapshots (default 10_000 when
    /// [`Telemetry::COMPOSITION`] is enabled; 0 disables the timeline).
    pub fn composition_interval(mut self, cycles: u64) -> Self {
        self.composition_interval = Some(cycles);
        self
    }

    /// Cycles between counter samples in the trace (default 1000 when
    /// [`Telemetry::METRICS`] is enabled; a non-zero value here enables
    /// counter sampling even without the flag, mirroring
    /// [`occupancy_interval`](Self::occupancy_interval)).
    pub fn counter_interval(mut self, cycles: u64) -> Self {
        self.counter_interval = Some(cycles);
        self
    }

    /// Write the run's profile artifacts into `dir` after
    /// [`run`](Self::run): `trace.json` (Chrome Trace Event Format, load in
    /// Perfetto), `counters.csv`, `metrics.csv`, and `profile.txt` (the
    /// human-readable report). Equivalent to calling
    /// [`SimResult::write_profile`] yourself; only applies to `run()`, not
    /// [`build`](Self::build).
    pub fn profile_to(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.profile_to = Some(dir.into());
        self
    }

    /// Write a checkpoint every `cycles` cycles during the run (0 disables,
    /// the default). Files are named `ckpt-<cycle>.ckpt` inside the
    /// [`checkpoint_to`](Self::checkpoint_to) directory. Resume with
    /// [`Simulation::resume`].
    pub fn checkpoint_every(mut self, cycles: u64) -> Self {
        self.checkpoint_every = Some(cycles);
        self
    }

    /// Directory periodic checkpoints are written into (default: the
    /// current directory). Created on first write if missing.
    pub fn checkpoint_to(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_to = Some(dir.into());
        self
    }

    /// Skip ahead to the region of interest: functionally drain every
    /// stream's commands up to the first marker named `label`, warming the
    /// cache/DRAM state without charging cycles, then simulate in detail
    /// from there (see [`GpuSim::fast_forward_to_marker`]). On a streaming
    /// source the skipped kernels' CTAs are paged in one at a time and
    /// released immediately, so the fast-forward itself stays within a
    /// one-CTA resident window.
    ///
    /// ```
    /// use crisp_sim::{GpuConfig, Simulation};
    /// # use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream,
    /// #                   StreamId, StreamKind, TraceBundle, WarpTrace};
    /// # let mk = |name: &str| {
    /// #     let mut w = WarpTrace::new();
    /// #     w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
    /// #     w.seal();
    /// #     KernelTrace::new(name, 32, 16, 0, vec![CtaTrace::new(vec![w])])
    /// # };
    /// # let mut s = Stream::new(StreamId(0), StreamKind::Compute);
    /// # s.launch(mk("warmup"));
    /// # s.marker("roi");
    /// # s.launch(mk("roi_kernel"));
    /// # let bundle = TraceBundle::from_streams(vec![s]);
    /// let result = Simulation::builder()
    ///     .gpu(GpuConfig::test_tiny())
    ///     .trace(bundle)
    ///     .fast_forward_to("roi")
    ///     .run()
    ///     .unwrap();
    /// // Only the kernel after the marker is simulated in detail.
    /// assert_eq!(result.kernel_log.len(), 1);
    /// assert_eq!(result.kernel_log[0].name, "roi_kernel");
    /// ```
    pub fn fast_forward_to(mut self, label: impl Into<String>) -> Self {
        self.fast_forward_to = Some(label.into());
        self
    }

    /// The workload to replay: anything convertible to a [`TraceInput`] —
    /// an in-memory [`crisp_trace::TraceBundle`], a path to a CRSP
    /// container, or a seekable reader via [`TraceInput::reader`]. Bundles
    /// are fully materialized; version-2 containers from paths or readers
    /// **stream**, demand-paging each CTA's instructions on first dispatch
    /// and dropping them when the CTA commits. Both forms produce
    /// bit-identical results.
    ///
    /// ```
    /// use crisp_sim::{GpuConfig, Simulation};
    /// # use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream,
    /// #                   StreamId, StreamKind, TraceBundle, WarpTrace};
    /// # let mut w = WarpTrace::new();
    /// # w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
    /// # w.seal();
    /// # let k = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![w])]);
    /// # let mut s = Stream::new(StreamId(0), StreamKind::Compute);
    /// # s.launch(k);
    /// # let bundle = TraceBundle::from_streams(vec![s]);
    /// # let dir = std::env::temp_dir().join("crisp-doc-trace-input");
    /// # std::fs::create_dir_all(&dir).unwrap();
    /// # let path = dir.join("workload.crsp");
    /// # crisp_trace::codec::save(&bundle, &path).unwrap();
    /// // In-memory bundle: fully materialized.
    /// let a = Simulation::builder()
    ///     .gpu(GpuConfig::test_tiny())
    ///     .trace(bundle)
    ///     .run()
    ///     .unwrap();
    /// // Same workload from disk: CTAs are demand-paged, results identical.
    /// let b = Simulation::builder()
    ///     .gpu(GpuConfig::test_tiny())
    ///     .trace(path)
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(a.cycles, b.cycles);
    /// assert!(b.trace.peak_resident_bytes > 0);
    /// ```
    pub fn trace(mut self, input: impl Into<TraceInput>) -> Self {
        self.trace = Some(input.into());
        self
    }

    /// Forward-progress watchdog window: if no SM issues an instruction
    /// for `cycles` consecutive cycles while work remains, the run fails
    /// with [`SimError::Deadlock`] carrying a per-warp diagnostic report
    /// (default [`DEFAULT_WATCHDOG`]; 0 disables).
    pub fn watchdog(mut self, cycles: u64) -> Self {
        self.watchdog = Some(cycles);
        self
    }

    /// Enable or disable pre-flight validation of the trace and
    /// configuration (default: enabled). Validation runs **incrementally
    /// over the trace source** — a single streaming pass with a bounded
    /// resident window, never materializing the whole bundle. Disabling it
    /// lets structurally bad inputs reach the cycle loop — useful only for
    /// testing the runtime fail-safes themselves (the watchdog, the panic
    /// capture) — and also disables the [`analyze`](Self::analyze) hook,
    /// which runs as part of pre-flight.
    ///
    /// ```
    /// use crisp_sim::{GpuConfig, SimError, Simulation};
    /// let mut cfg = GpuConfig::test_tiny();
    /// cfg.max_cycles = 0;
    /// // Pre-flight names the problem before the first cycle runs.
    /// let err = Simulation::builder().gpu(cfg).run().unwrap_err();
    /// assert!(matches!(err, SimError::InvalidConfig { .. }));
    /// ```
    pub fn preflight(mut self, enabled: bool) -> Self {
        self.skip_preflight = !enabled;
        self
    }

    /// Run `crisp-analyze` static analysis over the trace during
    /// pre-flight (default: [`LintLevel::Off`]). The analysis streams
    /// kernel-by-kernel over the same [`TraceSource`] the simulation will
    /// use, so it stays within the paging window. With
    /// [`LintLevel::Errors`], error-severity findings (shared-memory
    /// races, use-before-def) fail the build as
    /// [`SimError::InvalidTrace`]; with [`LintLevel::Deny`], warnings fail
    /// it too. Thresholds and allow/deny entries come from
    /// [`analyze_config`](Self::analyze_config).
    ///
    /// ```
    /// use crisp_sim::{GpuConfig, LintLevel, Simulation};
    /// # use crisp_trace::{CtaTrace, Instr, KernelTrace, Op, Reg, Stream,
    /// #                   StreamId, StreamKind, TraceBundle, WarpTrace};
    /// # let mut w = WarpTrace::new();
    /// # w.push(Instr::alu(Op::FpFma, Reg(1), &[]));
    /// # w.seal();
    /// # let k = KernelTrace::new("k", 32, 16, 0, vec![CtaTrace::new(vec![w])]);
    /// # let mut s = Stream::new(StreamId(0), StreamKind::Compute);
    /// # s.launch(k);
    /// # let bundle = TraceBundle::from_streams(vec![s]);
    /// // A clean trace passes the lint gate.
    /// assert!(Simulation::builder()
    ///     .gpu(GpuConfig::test_tiny())
    ///     .trace(bundle)
    ///     .analyze(LintLevel::Errors)
    ///     .run()
    ///     .is_ok());
    /// ```
    pub fn analyze(mut self, level: LintLevel) -> Self {
        self.analyze = level;
        self
    }

    /// Configuration for the [`analyze`](Self::analyze) pass (thresholds,
    /// allow/deny lists, analysis threads). Setting a config does not by
    /// itself enable analysis — the level stays [`LintLevel::Off`] until
    /// `analyze(..)` is called.
    pub fn analyze_config(mut self, cfg: AnalysisConfig) -> Self {
        self.analyze_config = Some(cfg);
        self
    }

    /// Profile the **simulator itself** on the host clock (default: off).
    /// Wall-clock time is attributed to every phase of the run — pre-flight
    /// validation, static analysis, fast-forward, and the cycle loop's
    /// dispatch / execute / barrier-wait / memory / telemetry phases — and
    /// returned as [`SimResult::host_profile`], with a rendered report via
    /// [`SimResult::host_report`] and a dual-clock Chrome trace via
    /// [`SimResult::chrome_trace_json_with_host`]. Purely observational:
    /// simulated results and the sim-clock exports are byte-identical with
    /// or without it.
    pub fn host_profile(mut self, enabled: bool) -> Self {
        self.host_profile = enabled;
        self
    }

    /// Simulated cycles between host-profile heartbeats (throughput,
    /// resident trace window, shard skew). Default
    /// [`HostProfiler::DEFAULT_HEARTBEAT`]; 0 disables heartbeats. Only
    /// meaningful with [`host_profile`](Self::host_profile)`(true)`.
    pub fn heartbeat_interval(mut self, cycles: u64) -> Self {
        self.heartbeat_interval = Some(cycles);
        self
    }

    /// Pre-flight validation: lint the opened trace source incrementally
    /// ([`crisp_trace::validate_source`] — one streaming pass with a
    /// bounded resident window) and cross-check the configuration against
    /// its metadata, so bad inputs fail in milliseconds with a named error
    /// instead of mid-run.
    fn preflight_check(
        &self,
        mut source: Option<&mut TraceSource>,
        mut host: Option<&mut HostProfiler>,
    ) -> Result<(), SimError> {
        let invalid = |message: String| Err(SimError::InvalidConfig { message });
        let cfg = self
            .gpu
            .clone()
            .unwrap_or_else(crate::config::GpuConfig::jetson_orin);
        if cfg.max_cycles == 0 {
            return invalid("max_cycles is 0 — no cycle could ever run".into());
        }
        if let Some(src) = source.as_deref_mut() {
            let t0 = host.as_deref_mut().map(|h| {
                set_alloc_phase(HostPhase::Preflight);
                h.elapsed_ns()
            });
            crisp_trace::validate_source(src)?;
            if let (Some(t0), Some(h)) = (t0, host.as_deref_mut()) {
                h.span_end(HostPhase::Preflight, "validate trace", t0);
            }
            if self.analyze != LintLevel::Off {
                let t0 = host.as_deref_mut().map(|h| {
                    set_alloc_phase(HostPhase::Analyze);
                    h.elapsed_ns()
                });
                let acfg = self.analyze_config.clone().unwrap_or_default();
                let report =
                    crisp_analyze::analyze_source(src, &acfg).map_err(|e| SimError::TraceIo {
                        cycle: 0,
                        message: e.to_string(),
                    })?;
                if let (Some(t0), Some(h)) = (t0, host) {
                    h.span_end(HostPhase::Analyze, "static analysis", t0);
                }
                let errors: Vec<crisp_trace::TraceError> = match self.analyze {
                    LintLevel::Deny => report
                        .diagnostics
                        .iter()
                        .map(crisp_analyze::Diagnostic::to_trace_error)
                        .collect(),
                    _ => report.to_trace_errors(),
                };
                if !errors.is_empty() {
                    return Err(errors.into());
                }
            }
        }
        let n_streams = source.as_ref().map(|s| s.streams().len());
        let spec_sm = self.partition.as_ref().map(|p| &p.sm);
        match spec_sm {
            Some(SmPartition::InterSm(map)) => {
                for (stream, sms) in map {
                    if sms.is_empty() {
                        return invalid(format!(
                            "partition assigns no SMs to {stream} — its CTAs could \
                             never be placed"
                        ));
                    }
                    if let Some(&idx) = sms.iter().find(|&&i| i >= cfg.n_sms) {
                        return invalid(format!(
                            "partition assigns SM {idx} to {stream}, but the GPU has \
                             only {} SMs",
                            cfg.n_sms
                        ));
                    }
                }
            }
            Some(SmPartition::IntraSm(map)) => {
                // Summing u32::MAX ("unlimited") would always trip the
                // check, so only bounded quotas participate.
                let sum = |f: fn(&crisp_sm::ResourceQuota) -> u32, cap: u32, what: &str| {
                    let bounded: Vec<u32> =
                        map.values().map(f).filter(|&v| v != u32::MAX).collect();
                    let total: u64 = bounded.iter().map(|&v| u64::from(v)).sum();
                    if bounded.len() == map.len() && total > u64::from(cap) {
                        Some(format!(
                            "intra-SM quotas oversubscribe {what}: {total} > {cap} \
                             physically available per SM"
                        ))
                    } else {
                        None
                    }
                };
                let sm = &cfg.sm;
                let oversubscribed = [
                    sum(|q| q.threads, sm.max_threads, "threads"),
                    sum(|q| q.warps, sm.max_warps, "warp slots"),
                    sum(|q| q.regs, sm.max_regs, "registers"),
                    sum(|q| q.smem, sm.max_smem, "shared memory"),
                ]
                .into_iter()
                .flatten()
                .next();
                if let Some(msg) = oversubscribed {
                    return invalid(msg);
                }
            }
            Some(SmPartition::IntraSmDynamic(_)) => {
                if let Some(n) = n_streams {
                    if n != 2 {
                        return invalid(format!(
                            "the warped-slicer policy expects exactly two streams, \
                             the trace has {n}"
                        ));
                    }
                }
            }
            Some(SmPartition::Greedy) | None => {}
        }
        let l2 = self.l2.as_ref().or(self.partition.as_ref().map(|p| &p.l2));
        if let Some(L2Policy::BankSplit) = l2 {
            if cfg.l2_banks < 2 {
                return invalid(format!(
                    "L2 bank-split needs at least 2 banks, the GPU has {}",
                    cfg.l2_banks
                ));
            }
            if let Some(n) = n_streams {
                if n != 2 {
                    return invalid(format!(
                        "the L2 bank-split policy expects exactly two streams, \
                         the trace has {n}"
                    ));
                }
            }
        }
        if let Some(src) = source.as_ref() {
            let sm = &cfg.sm;
            for s in src.streams() {
                for cmd in &s.commands {
                    let CommandMeta::Launch { info, .. } = cmd else {
                        continue;
                    };
                    if info.grid == 0 {
                        continue;
                    }
                    let res = CtaResources::of_info(info);
                    if res.threads > sm.max_threads
                        || res.warps > sm.max_warps
                        || res.regs > sm.max_regs
                        || res.smem > sm.max_smem
                    {
                        return invalid(format!(
                            "kernel '{}' on {} needs {res:?} per CTA, which exceeds \
                             the SM's physical resources",
                            info.name, s.id
                        ));
                    }
                }
            }
            if let Some(label) = &self.fast_forward_to {
                let found = src.streams().iter().any(|s| {
                    s.commands
                        .iter()
                        .any(|c| matches!(c, CommandMeta::Marker(l) if l == label))
                });
                if !found {
                    return invalid(format!(
                        "fast-forward marker '{label}' appears in no stream"
                    ));
                }
            }
        }
        // Probe checkpoint-directory writability up front: an emergency or
        // periodic checkpoint that cannot be written is discovered now, not
        // millions of cycles in.
        if self.checkpoint_every.is_some_and(|c| c > 0) || self.checkpoint_to.is_some() {
            let dir = self.checkpoint_to.clone().unwrap_or_default();
            let probe = || -> std::io::Result<()> {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(&dir)?;
                }
                let p = dir.join(".crisp-write-probe");
                std::fs::write(&p, b"probe")?;
                std::fs::remove_file(&p)
            };
            if let Err(e) = probe() {
                return invalid(format!(
                    "checkpoint directory {} is not writable: {e}",
                    if dir.as_os_str().is_empty() {
                        std::path::Path::new(".").display()
                    } else {
                        dir.display()
                    }
                ));
            }
        }
        Ok(())
    }

    /// Open the builder's trace input (if any) into a [`TraceSource`].
    fn open_input(trace: Option<TraceInput>) -> Result<Option<TraceSource>, SimError> {
        match trace {
            None => Ok(None),
            Some(input) => input.open().map(Some).map_err(|e| SimError::TraceIo {
                cycle: 0,
                message: e.to_string(),
            }),
        }
    }

    /// The unchecked constructor behind [`build`](Self::build) and
    /// [`try_build`](Self::try_build); `source` is the already-opened
    /// trace and `host` the (possibly already-ticking) self-profiler,
    /// which times fast-forward here and is then handed to the sim.
    fn construct(
        self,
        source: Option<TraceSource>,
        mut host: Option<Box<HostProfiler>>,
    ) -> Result<GpuSim, SimError> {
        let cfg = self.gpu.unwrap_or_else(GpuConfig::jetson_orin);
        let mut spec = self.partition.unwrap_or_else(PartitionSpec::greedy);
        if let Some(l2) = self.l2 {
            spec.l2 = l2;
        }
        let mut sim = GpuSim::with_spec(cfg, spec);
        if let Some(n) = self.threads {
            sim.set_threads(n);
        }
        sim.occupancy_interval = match self.occupancy_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::OCCUPANCY) => 2_000,
            None => 0,
        };
        sim.composition_interval = match self.composition_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::COMPOSITION) => 10_000,
            None => 0,
        };
        sim.counter_interval = match self.counter_interval {
            Some(cycles) => cycles,
            None if self.telemetry.contains(Telemetry::METRICS) => 1_000,
            None => 0,
        };
        sim.set_telemetry(
            self.telemetry.contains(Telemetry::TIMELINE),
            sim.counter_interval > 0,
        );
        if let Some(cycles) = self.checkpoint_every {
            sim.checkpoint_every = cycles;
        }
        sim.checkpoint_dir = self.checkpoint_to;
        sim.watchdog = self.watchdog.unwrap_or(DEFAULT_WATCHDOG);
        sim.residency_telemetry = self.telemetry.contains(Telemetry::RESIDENCY);
        if let Some(src) = source {
            sim.attach(src);
        }
        if let Some(label) = self.fast_forward_to {
            let t0 = host.as_deref_mut().map(|h| {
                set_alloc_phase(HostPhase::FastForward);
                h.elapsed_ns()
            });
            sim.fast_forward_to_marker(&label)
                .map_err(|e| SimError::TraceIo {
                    cycle: 0,
                    message: e.to_string(),
                })?;
            if let (Some(t0), Some(h)) = (t0, host.as_deref_mut()) {
                h.span_end(HostPhase::FastForward, &label, t0);
            }
        }
        sim.install_host_profiler(host);
        Ok(sim)
    }

    /// Construct the configured [`GpuSim`] without running it (incremental
    /// drivers call [`GpuSim::step`] themselves). Skips pre-flight
    /// validation — see [`try_build`](Self::try_build) for the checked
    /// variant.
    ///
    /// # Panics
    ///
    /// Panics if the trace input cannot be opened, a fast-forward read
    /// fails, or the trace violates the partition policy's expectations
    /// (see [`GpuSim::attach`]).
    pub fn build(mut self) -> GpuSim {
        let source = Self::open_input(self.trace.take()).unwrap_or_else(|e| panic!("{e}"));
        let host = self.make_profiler();
        self.construct(source, host)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The profiler the builder starts when `.host_profile(true)` is set —
    /// created before pre-flight so validation, analysis, and fast-forward
    /// land on its clock.
    fn make_profiler(&self) -> Option<Box<HostProfiler>> {
        self.host_profile.then(|| {
            Box::new(HostProfiler::new(
                self.heartbeat_interval
                    .unwrap_or(HostProfiler::DEFAULT_HEARTBEAT),
            ))
        })
    }

    /// Open the trace input, pre-flight-validate it together with the
    /// configuration, then construct the [`GpuSim`]. This is what
    /// [`run`](Self::run) uses. The source is opened **once** and shared by
    /// validation, analysis, fast-forward, and the simulation itself, so a
    /// streaming input is read in a single pass with bounded memory.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceIo`] when the input cannot be opened (missing
    /// file, malformed container, corrupt CTA index),
    /// [`SimError::InvalidTrace`] when the trace fails structural
    /// validation, [`SimError::InvalidConfig`] when the configuration is
    /// inconsistent with itself or the trace.
    pub fn try_build(mut self) -> Result<GpuSim, SimError> {
        let mut host = self.make_profiler();
        let mut source = Self::open_input(self.trace.take())?;
        if !self.skip_preflight {
            self.preflight_check(source.as_mut(), host.as_deref_mut())?;
            // Validation and analysis page CTAs through the source; zero the
            // accounting so the run's counters start at cycle 0 and results
            // are identical whether or not the pre-flight pass ran.
            if let Some(src) = source.as_mut() {
                src.set_stats(crisp_trace::TraceStats::default());
            }
        }
        self.construct(source, host)
    }

    /// Build and run to completion.
    ///
    /// # Errors
    ///
    /// Pre-flight errors ([`SimError::InvalidTrace`],
    /// [`SimError::InvalidConfig`]) before the first cycle; the failure
    /// modes of [`GpuSim::run`] during it. A
    /// [`profile_to`](Self::profile_to) directory that cannot be written
    /// surfaces as [`SimError::CheckpointIo`].
    pub fn run(mut self) -> Result<SimResult, SimError> {
        let profile_dir = self.profile_to.take();
        let mut sim = self.try_build()?;
        let result = sim.run()?;
        if let Some(dir) = profile_dir {
            if let Err(e) = result.write_profile(&dir) {
                return Err(SimError::CheckpointIo {
                    cycle: result.cycles,
                    path: dir,
                    source: e,
                });
            }
        }
        Ok(result)
    }

    /// [`run`](Self::run) that panics with the rendered diagnostic on any
    /// failure — the shim for benches and throwaway scripts.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimError`], with the full diagnostic as the message.
    pub fn run_or_panic(self) -> SimResult {
        self.run().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{
        CtaTrace, Instr, KernelTrace, Op, Reg, Stream, StreamId, StreamKind, TraceBundle, WarpTrace,
    };

    fn bundle() -> TraceBundle {
        let mut w = WarpTrace::new();
        for i in 0..20 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("k", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        TraceBundle::from_streams(vec![s])
    }

    #[test]
    fn defaults_match_historical_behavior() {
        let sim = Simulation::builder().build();
        assert_eq!(sim.config().name, "Jetson Orin");
        assert_eq!(sim.occupancy_interval, 2_000);
        assert_eq!(sim.composition_interval, 0);
        assert_eq!(sim.threads(), 1);
    }

    #[test]
    fn telemetry_flags_combine() {
        assert!(Telemetry::FULL.contains(Telemetry::OCCUPANCY));
        assert!(Telemetry::FULL.contains(Telemetry::COMPOSITION));
        assert!(Telemetry::FULL.contains(Telemetry::TIMELINE));
        assert!(Telemetry::FULL.contains(Telemetry::METRICS));
        assert!(Telemetry::FULL.contains(Telemetry::RESIDENCY));
        assert!(!Telemetry::NONE.contains(Telemetry::OCCUPANCY));
        // FULL is exactly the union of every defined flag — adding a flag
        // without folding it into FULL is the historical bug this guards.
        assert_eq!(
            Telemetry::OCCUPANCY
                | Telemetry::COMPOSITION
                | Telemetry::TIMELINE
                | Telemetry::METRICS
                | Telemetry::RESIDENCY,
            Telemetry::FULL
        );
        assert!(!(Telemetry::OCCUPANCY | Telemetry::COMPOSITION).contains(Telemetry::TIMELINE));
    }

    #[test]
    fn residency_flag_reaches_the_sim() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::FULL)
            .build();
        assert!(sim.residency_telemetry);
        let sim = Simulation::builder().gpu(GpuConfig::test_tiny()).build();
        assert!(!sim.residency_telemetry, "not part of the default set");
    }

    #[test]
    fn telemetry_none_disables_sampling() {
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::NONE)
            .trace(bundle())
            .run_or_panic();
        assert!(r.occupancy.is_empty());
        assert!(r.ipc_timeline.is_empty());
        assert!(r.l2_composition_timeline.is_empty());
        assert!(r.timeline.is_empty(), "no spans without TIMELINE");
        assert!(r.cycles > 0);
    }

    #[test]
    fn timeline_telemetry_records_spans() {
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::TIMELINE)
            .trace(bundle())
            .run_or_panic();
        // One kernel span + one CTA span per CTA in the grid.
        assert!(r.timeline.span_count() >= 5, "kernel + 4 CTA spans");
        assert!(r
            .timeline
            .spans()
            .any(|s| s.cat == "kernel" && s.name == "k"));
        let json = r.chrome_trace_json();
        crisp_obs::json::validate(&json).expect("valid Chrome trace");
    }

    #[test]
    fn metrics_telemetry_samples_counters() {
        let mut w = WarpTrace::new();
        for i in 0..400 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("long", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::METRICS)
            .counter_interval(50)
            .trace(TraceBundle::from_streams(vec![s]))
            .run_or_panic();
        assert!(!r.timeline.counters().is_empty());
        assert!(r
            .timeline
            .counters()
            .iter()
            .any(|c| c.name == "stream0/ipc" && c.value > 0.0));
        let csv = r.counters_csv();
        assert!(csv.starts_with("cycle,counter,value\n"));
        assert!(csv.lines().count() > 1);
    }

    #[test]
    fn explicit_interval_overrides_telemetry() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::NONE)
            .occupancy_interval(50)
            .build();
        assert_eq!(sim.occupancy_interval, 50);
    }

    #[test]
    fn composition_telemetry_samples_timeline() {
        let mut w = WarpTrace::new();
        for i in 0..500 {
            w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
        }
        w.seal();
        let k = KernelTrace::new("long", 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4]);
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let r = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .telemetry(Telemetry::FULL)
            .occupancy_interval(50)
            .composition_interval(25)
            .trace(TraceBundle::from_streams(vec![s]))
            .run_or_panic();
        assert!(r.cycles > 100, "workload long enough to sample");
        assert!(!r.occupancy.is_empty());
        assert!(!r.l2_composition_timeline.is_empty());
    }

    #[test]
    fn l2_override_applies() {
        let cfg = GpuConfig::test_tiny();
        let spec = PartitionSpec::greedy();
        let sim = Simulation::builder()
            .gpu(cfg)
            .partition(spec)
            .l2(L2Policy::Shared)
            .build();
        assert_eq!(sim.threads(), 1);
    }

    #[test]
    fn threads_knob_reaches_the_sim() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .threads(4)
            .build();
        assert_eq!(sim.threads(), 4);
        let mut cfg = GpuConfig::test_tiny();
        cfg.threads = 3;
        let sim = Simulation::builder().gpu(cfg).build();
        assert_eq!(sim.threads(), 3);
    }

    #[test]
    fn builder_constructs_a_runnable_sim() {
        let mut gpu = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .partition(PartitionSpec::greedy())
            .trace(bundle())
            .build();
        assert!(gpu.run_or_panic().cycles > 0);
    }

    #[test]
    fn checkpoint_knobs_reach_the_sim() {
        let sim = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .checkpoint_every(5_000)
            .checkpoint_to("/tmp/ckpts")
            .build();
        assert_eq!(sim.checkpoint_every, 5_000);
        assert_eq!(
            sim.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpts"))
        );
    }

    #[test]
    fn analyze_hook_fails_racy_traces() {
        use crisp_trace::{DataClass, MemAccess, Space};
        // Structurally valid, semantically racy: two warps write the same
        // shared bytes in the same barrier interval.
        let warp = || {
            let mut w = WarpTrace::new();
            w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
            w.push(Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Shared, DataClass::Compute, 4, 0, 32),
            ));
            w.push(Instr::bar());
            w.seal();
            w
        };
        let k = KernelTrace::new(
            "racy",
            64,
            8,
            1024,
            vec![CtaTrace::new(vec![warp(), warp()])],
        );
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let racy = TraceBundle::from_streams(vec![s]);

        // Without the hook the structural validator passes it.
        assert!(Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(racy.clone())
            .run()
            .is_ok());

        let err = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(racy)
            .analyze(LintLevel::Errors)
            .run()
            .unwrap_err();
        let SimError::InvalidTrace { errors } = err else {
            panic!("expected InvalidTrace, got {err}");
        };
        assert!(
            errors
                .iter()
                .any(|e| e.to_string().contains("race/shared-write-write")),
            "{errors:?}"
        );
    }

    #[test]
    fn analyze_hook_passes_clean_traces_and_deny_catches_warnings() {
        assert!(Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(bundle())
            .analyze(LintLevel::Errors)
            .run()
            .is_ok());

        use crisp_trace::{DataClass, MemAccess, Space};
        // Two CTAs write the same global bytes: a warning, not an error.
        let warp = || {
            let mut w = WarpTrace::new();
            w.push(Instr::alu(Op::IntAlu, Reg(1), &[]));
            w.push(Instr::store(
                Reg(1),
                MemAccess::coalesced(Space::Global, DataClass::Compute, 4, 0x100, 32),
            ));
            w.seal();
            w
        };
        let k = KernelTrace::new(
            "overlap",
            32,
            8,
            0,
            vec![CtaTrace::new(vec![warp()]), CtaTrace::new(vec![warp()])],
        );
        let mut s = Stream::new(StreamId(0), StreamKind::Compute);
        s.launch(k);
        let b = TraceBundle::from_streams(vec![s]);

        assert!(
            Simulation::builder()
                .gpu(GpuConfig::test_tiny())
                .trace(b.clone())
                .analyze(LintLevel::Errors)
                .run()
                .is_ok(),
            "warnings must not fail LintLevel::Errors"
        );
        let err = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(b.clone())
            .analyze(LintLevel::Deny)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidTrace { .. }), "{err}");
        // An allow entry restores the pass under Deny.
        assert!(Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(b)
            .analyze(LintLevel::Deny)
            .analyze_config(
                AnalysisConfig::new()
                    .allow_in(crisp_analyze::LintCode::GlobalWriteOverlap, "overlap"),
            )
            .run()
            .is_ok());
    }

    #[test]
    fn fast_forward_skips_to_the_marker() {
        // Two identical kernels split by a marker: fast-forwarding to the
        // marker must simulate only the second one in detail.
        let mk = |name: &str| {
            let mut w = WarpTrace::new();
            for i in 0..200 {
                w.push(Instr::alu(Op::FpFma, Reg((i % 8) + 1), &[]));
            }
            w.seal();
            KernelTrace::new(name, 64, 16, 0, vec![CtaTrace::new(vec![w; 2]); 4])
        };
        let two_phase = || {
            let mut s = Stream::new(StreamId(0), StreamKind::Compute);
            s.launch(mk("warmup"));
            s.marker("roi");
            s.launch(mk("roi_kernel"));
            TraceBundle::from_streams(vec![s])
        };
        let full = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(two_phase())
            .run_or_panic();
        let roi = Simulation::builder()
            .gpu(GpuConfig::test_tiny())
            .trace(two_phase())
            .fast_forward_to("roi")
            .run_or_panic();
        assert_eq!(full.per_stream[&StreamId(0)].stats.kernels, 2);
        assert_eq!(roi.per_stream[&StreamId(0)].stats.kernels, 1);
        assert!(
            roi.cycles * 2 < full.cycles + 10,
            "ROI run must only simulate the second kernel: full {} roi {}",
            full.cycles,
            roi.cycles
        );
        assert_eq!(roi.kernel_log.len(), 1);
        assert_eq!(roi.kernel_log[0].name, "roi_kernel");
    }
}
