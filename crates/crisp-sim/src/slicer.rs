//! Warped-slicer dynamic intra-SM partitioning (Xu et al., ISCA 2016).
//!
//! "At the beginning of the execution, parallel SMs are used to measure the
//! performance impact of varying CTA counts for each kernel running
//! concurrently in an SM. Then, it uses the water-filling algorithm to find
//! the best partition ratio between two workloads." The partition is reset
//! at compute-kernel launches and at graphics drawcalls (paper Fig 12
//! methodology).

use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_sm::{ResourceQuota, SmConfig};
use crisp_trace::StreamId;

/// Warped-slicer tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicerConfig {
    /// Length of the sampling window in cycles.
    pub sample_cycles: u64,
    /// Candidate quota fractions for the first stream, as (num, denom);
    /// the second stream gets the complement.
    pub ratios: Vec<(u32, u32)>,
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            sample_cycles: 10_000,
            ratios: (1..8).map(|n| (n, 8)).collect(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Measuring candidate ratios; ends at the stored cycle.
    Sampling { until: u64 },
    /// A ratio has been chosen and applies to every SM.
    Applied,
}

/// The runtime controller.
#[derive(Debug, Clone)]
pub struct WarpedSlicer {
    cfg: SlicerConfig,
    streams: [StreamId; 2],
    state: State,
    chosen: (u32, u32),
    /// (decision cycle, chosen fraction for stream 0) — Figure 13 material.
    history: Vec<(u64, f64)>,
    resets: u64,
}

impl WarpedSlicer {
    /// A slicer partitioning between `a` (graphics, by Fig 12's convention)
    /// and `b`; starts in sampling mode at cycle 0.
    pub fn new(cfg: SlicerConfig, a: StreamId, b: StreamId) -> Self {
        assert!(!cfg.ratios.is_empty(), "need at least one candidate ratio");
        let until = cfg.sample_cycles;
        WarpedSlicer {
            cfg,
            streams: [a, b],
            state: State::Sampling { until },
            chosen: (1, 2),
            history: Vec::new(),
            resets: 0,
        }
    }

    /// The two streams being partitioned.
    pub fn streams(&self) -> [StreamId; 2] {
        self.streams
    }

    /// Whether the controller is currently sampling.
    pub fn is_sampling(&self) -> bool {
        matches!(self.state, State::Sampling { .. })
    }

    /// Number of resets (kernel-launch / drawcall boundaries) seen.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Decision history: (cycle, fraction of resources given to stream 0).
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    /// The currently-chosen fraction for stream 0.
    pub fn chosen_fraction(&self) -> f64 {
        self.chosen.0 as f64 / self.chosen.1 as f64
    }

    /// A new kernel launch or drawcall: restart sampling.
    pub fn on_reset(&mut self, now: u64) {
        self.state = State::Sampling {
            until: now + self.cfg.sample_cycles,
        };
        self.resets += 1;
    }

    /// The quota `stream` gets on SM `sm_id` right now.
    ///
    /// During sampling, SM `i` trials candidate `i % candidates`; afterwards
    /// every SM uses the chosen ratio. Streams outside the managed pair are
    /// unlimited.
    pub fn quota_for(&self, sm_id: usize, stream: StreamId, sm_cfg: &SmConfig) -> ResourceQuota {
        let side = if stream == self.streams[0] {
            0
        } else if stream == self.streams[1] {
            1
        } else {
            return ResourceQuota::unlimited();
        };
        let (num, denom) = match self.state {
            State::Sampling { .. } => self.cfg.ratios[sm_id % self.cfg.ratios.len()],
            State::Applied => self.chosen,
        };
        if side == 0 {
            ResourceQuota::fraction(sm_cfg, num, denom)
        } else {
            ResourceQuota::fraction(sm_cfg, denom - num, denom)
        }
    }

    /// If the sampling window has elapsed, run water-filling over the
    /// measured per-SM instruction counts and apply the best ratio.
    ///
    /// `issued(sm, stream)` must return the instructions `stream` issued on
    /// `sm` during the window. Returns `true` when a decision was made.
    pub fn maybe_decide(
        &mut self,
        now: u64,
        n_sms: usize,
        mut issued: impl FnMut(usize, StreamId) -> u64,
    ) -> bool {
        let State::Sampling { until } = self.state else {
            return false;
        };
        if now < until {
            return false;
        }
        let k = self.cfg.ratios.len();
        // Aggregate per candidate: SMs trialling the same ratio pool their
        // counts (groups may have unequal size; normalise by group size).
        let mut thr = vec![[0f64; 2]; k];
        let mut group = vec![0f64; k];
        for sm in 0..n_sms {
            let c = sm % k;
            group[c] += 1.0;
            thr[c][0] += issued(sm, self.streams[0]) as f64;
            thr[c][1] += issued(sm, self.streams[1]) as f64;
        }
        for c in 0..k {
            if group[c] > 0.0 {
                thr[c][0] /= group[c];
                thr[c][1] /= group[c];
            }
        }
        // Water-filling: maximise the sum of per-stream throughputs,
        // each normalised by its best point across candidates.
        let max0 = thr.iter().map(|t| t[0]).fold(0.0, f64::max).max(1.0);
        let max1 = thr.iter().map(|t| t[1]).fold(0.0, f64::max).max(1.0);
        let best = (0..k)
            .max_by(|&a, &b| {
                let sa = thr[a][0] / max0 + thr[a][1] / max1;
                let sb = thr[b][0] / max0 + thr[b][1] / max1;
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one candidate");
        self.chosen = self.cfg.ratios[best];
        self.history.push((now, self.chosen_fraction()));
        self.state = State::Applied;
        true
    }
}

impl CheckpointState for SlicerConfig {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.sample_cycles)?;
        w.len(self.ratios.len())?;
        for &(num, denom) in &self.ratios {
            w.u32(num)?;
            w.u32(denom)?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let sample_cycles = r.u64()?;
        let n = r.len(1 << 12)?;
        let mut ratios = Vec::with_capacity(n);
        for _ in 0..n {
            let num = r.u32()?;
            let denom = r.u32()?;
            // `ResourceQuota::fraction` divides by `denom` and the slicer
            // computes `denom - num` for the complement side — both panic
            // paths on corrupt input.
            if denom == 0 || num > denom {
                return Err(bad(format!("invalid slicer ratio {num}/{denom}")));
            }
            ratios.push((num, denom));
        }
        Ok(SlicerConfig {
            sample_cycles,
            ratios,
        })
    }
}

impl CheckpointState for WarpedSlicer {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        self.cfg.save(w, ())?;
        w.stream(self.streams[0])?;
        w.stream(self.streams[1])?;
        match self.state {
            State::Sampling { until } => {
                w.u8(0)?;
                w.u64(until)?;
            }
            State::Applied => w.u8(1)?,
        }
        w.u32(self.chosen.0)?;
        w.u32(self.chosen.1)?;
        w.len(self.history.len())?;
        for &(cycle, frac) in &self.history {
            w.u64(cycle)?;
            w.f64(frac)?;
        }
        w.u64(self.resets)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let cfg = SlicerConfig::restore(r, ())?;
        if cfg.ratios.is_empty() {
            return Err(bad("slicer checkpoint has no candidate ratios"));
        }
        let streams = [r.stream()?, r.stream()?];
        let state = match r.u8()? {
            0 => State::Sampling { until: r.u64()? },
            1 => State::Applied,
            t => return Err(bad(format!("unknown slicer state tag {t}"))),
        };
        let chosen = (r.u32()?, r.u32()?);
        if chosen.1 == 0 || chosen.0 > chosen.1 {
            return Err(bad(format!(
                "invalid chosen slicer ratio {}/{}",
                chosen.0, chosen.1
            )));
        }
        let n = r.len(1 << 20)?;
        let mut history = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let cycle = r.u64()?;
            history.push((cycle, r.f64()?));
        }
        Ok(WarpedSlicer {
            cfg,
            streams,
            state,
            chosen,
            history,
            resets: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: StreamId = StreamId(0);
    const B: StreamId = StreamId(1);

    fn slicer() -> WarpedSlicer {
        WarpedSlicer::new(SlicerConfig::default(), A, B)
    }

    #[test]
    fn sampling_assigns_different_ratios_to_different_sms() {
        let s = slicer();
        let cfg = SmConfig::default();
        assert!(s.is_sampling());
        let q0 = s.quota_for(0, A, &cfg); // ratio 1/8
        let q6 = s.quota_for(6, A, &cfg); // ratio 7/8
        assert!(q0.warps < q6.warps);
        // Complements for stream B.
        let q0b = s.quota_for(0, B, &cfg); // 7/8
        assert_eq!(q0b.warps, q6.warps);
    }

    #[test]
    fn unmanaged_stream_is_unlimited() {
        let s = slicer();
        let cfg = SmConfig::default();
        assert_eq!(
            s.quota_for(0, StreamId(42), &cfg),
            ResourceQuota::unlimited()
        );
    }

    #[test]
    fn decision_waits_for_the_window() {
        let mut s = slicer();
        assert!(!s.maybe_decide(10, 14, |_, _| 0), "window not elapsed");
        assert!(s.is_sampling());
    }

    #[test]
    fn water_filling_picks_the_joint_best_ratio() {
        let mut s = slicer();
        // Stream A scales with its share; stream B is insensitive
        // (compute-bound with few warps needed). Best joint = A-heavy.
        let decided = s.maybe_decide(10_000, 14, |sm, stream| {
            let c = sm % 7; // candidate index == ratio (c+1)/8 for A
            if stream == A {
                ((c + 1) * 100) as u64
            } else {
                700 // flat: B does not benefit from more resources
            }
        });
        assert!(decided);
        assert!(!s.is_sampling());
        assert!(
            s.chosen_fraction() > 0.8,
            "A should win most of the SM: {}",
            s.chosen_fraction()
        );
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn balanced_scaling_picks_the_middle() {
        let mut s = slicer();
        // Both streams scale with diminishing returns (sqrt of their
        // share) — the classic case where water-filling lands in the
        // middle: sqrt(4/8)+sqrt(4/8) beats any lopsided split.
        let decided = s.maybe_decide(10_000, 14, |sm, stream| {
            let c = (sm % 7) as f64;
            let v = if stream == A {
                (c + 1.0).sqrt()
            } else {
                (7.0 - c).sqrt()
            };
            (v * 1000.0) as u64
        });
        assert!(decided);
        let f = s.chosen_fraction();
        assert!((f - 0.5).abs() < 0.15, "middle ratio expected, got {f}");
    }

    #[test]
    fn checkpoint_roundtrip_preserves_slicer() {
        let mut s = slicer();
        let _ = s.maybe_decide(10_000, 14, |sm, _| (sm as u64 + 1) * 10);
        s.on_reset(20_000);
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        s.save(&mut w, ()).unwrap();
        let mut r = Reader::new(buf.as_slice());
        let back = WarpedSlicer::restore(&mut r, ()).unwrap();
        assert_eq!(back.streams(), s.streams());
        assert_eq!(back.is_sampling(), s.is_sampling());
        assert_eq!(back.chosen_fraction(), s.chosen_fraction());
        assert_eq!(back.history(), s.history());
        assert_eq!(back.resets(), s.resets());
    }

    #[test]
    fn checkpoint_restore_rejects_zero_denominator() {
        // Hand-craft a config with a zero denominator — `fraction` would
        // divide by it at quota time.
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u64(100).unwrap(); // sample_cycles
        w.len(1).unwrap();
        w.u32(1).unwrap(); // num
        w.u32(0).unwrap(); // denom = 0
        let mut r = Reader::new(buf.as_slice());
        let err = SlicerConfig::restore(&mut r, ()).unwrap_err();
        assert!(err.to_string().contains("ratio"), "{err}");
    }

    #[test]
    fn reset_reenters_sampling() {
        let mut s = slicer();
        let _ = s.maybe_decide(10_000, 14, |_, _| 1);
        assert!(!s.is_sampling());
        s.on_reset(20_000);
        assert!(s.is_sampling());
        assert_eq!(s.resets(), 1);
        assert!(
            !s.maybe_decide(25_000, 14, |_, _| 1),
            "new window runs to 30k"
        );
        assert!(s.maybe_decide(30_000, 14, |_, _| 1));
    }
}
