//! Per-stream simulation statistics.
//!
//! Accel-Sim aggregates statistics across streams, which is "misleading when
//! concurrent execution is enabled"; CRISP collects them individually per
//! stream (paper Section III-A). This module also records the occupancy
//! timeline behind Figure 13.

use std::collections::BTreeMap;
use std::io;

use crisp_ckpt::{CheckpointState, Reader, Writer};
use crisp_trace::StreamId;

/// One occupancy sample: resident-warp fraction per stream at a cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySample {
    /// Sample cycle.
    pub cycle: u64,
    /// Mean warp occupancy per stream over all SMs, in [0, 1].
    pub by_stream: BTreeMap<StreamId, f64>,
}

impl OccupancySample {
    /// Total occupancy across streams.
    pub fn total(&self) -> f64 {
        self.by_stream.values().sum()
    }
}

/// Counters for one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerStreamStats {
    /// Cycle the stream's first CTA was issued.
    pub start_cycle: u64,
    /// Cycle the stream's last command completed.
    pub finish_cycle: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// CTAs committed.
    pub ctas: u64,
    /// Kernels completed.
    pub kernels: u64,
}

impl PerStreamStats {
    /// Wall-clock cycles from first issue to completion.
    pub fn elapsed(&self) -> u64 {
        self.finish_cycle.saturating_sub(self.start_cycle)
    }

    /// Instructions per cycle over the stream's lifetime.
    pub fn ipc(&self) -> f64 {
        let e = self.elapsed();
        if e == 0 {
            0.0
        } else {
            self.instructions as f64 / e as f64
        }
    }
}

impl CheckpointState for OccupancySample {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.cycle)?;
        w.len(self.by_stream.len())?;
        for (&s, &v) in &self.by_stream {
            w.stream(s)?;
            w.f64(v)?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let cycle = r.u64()?;
        let n = r.len(1 << 16)?;
        let mut by_stream = BTreeMap::new();
        for _ in 0..n {
            let s = r.stream()?;
            by_stream.insert(s, r.f64()?);
        }
        Ok(OccupancySample { cycle, by_stream })
    }
}

impl CheckpointState for PerStreamStats {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u64(self.start_cycle)?;
        w.u64(self.finish_cycle)?;
        w.u64(self.instructions)?;
        w.u64(self.ctas)?;
        w.u64(self.kernels)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(PerStreamStats {
            start_cycle: r.u64()?,
            finish_cycle: r.u64()?,
            instructions: r.u64()?,
            ctas: r.u64()?,
            kernels: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_and_ipc() {
        let s = PerStreamStats {
            start_cycle: 100,
            finish_cycle: 1100,
            instructions: 5000,
            ctas: 10,
            kernels: 2,
        };
        assert_eq!(s.elapsed(), 1000);
        assert!((s.ipc() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_has_zero_ipc() {
        assert_eq!(PerStreamStats::default().ipc(), 0.0);
    }

    #[test]
    fn occupancy_sample_totals() {
        let mut by_stream = BTreeMap::new();
        by_stream.insert(StreamId(0), 0.4);
        by_stream.insert(StreamId(1), 0.25);
        let s = OccupancySample {
            cycle: 10,
            by_stream,
        };
        assert!((s.total() - 0.65).abs() < 1e-12);
    }
}
