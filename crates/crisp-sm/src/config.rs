//! SM configuration: resource caps and execution-pipe timing.

use crisp_trace::{Op, Space};

/// Warp-scheduler selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the same warp until it
    /// stalls, then fall back to the oldest ready warp (Accel-Sim's
    /// default, best for locality).
    Gto,
    /// Loose round-robin: rotate through ready warps, spreading issue
    /// bandwidth evenly (better fairness, worse intra-warp locality).
    Lrr,
}

/// Static configuration of one SM.
///
/// Defaults follow the paper's Table II (shared by the Jetson Orin and the
/// RTX 3070 rows): 64 warps, 4 schedulers, 65536 registers, 4 units of each
/// execution class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// Maximum resident warps.
    pub max_warps: u32,
    /// Maximum resident threads (warp slots × 32 unless reduced).
    pub max_threads: u32,
    /// Maximum resident CTAs.
    pub max_ctas: u32,
    /// Architectural registers in the register file.
    pub max_regs: u32,
    /// Shared-memory capacity in bytes (the L1 carve-out).
    pub max_smem: u32,
    /// Warp schedulers (issue ports) per SM.
    pub schedulers: u32,
    /// FP32 pipelines.
    pub fp_units: u32,
    /// Integer pipelines.
    pub int_units: u32,
    /// Special-function pipelines.
    pub sfu_units: u32,
    /// Tensor-core pipelines.
    pub tensor_units: u32,
    /// Sector accesses the LSU can present to the L1 per cycle
    /// (4 × 32 B = 128 B/cycle, the Ampere L1 port width).
    pub l1_ports: u32,
    /// Pending memory instructions the LSU queue holds.
    pub lsu_queue_depth: usize,
    /// Shared-memory access latency in cycles.
    pub smem_latency: u64,
    /// Warp-scheduler policy.
    pub scheduler: SchedulerPolicy,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            max_warps: 64,
            max_threads: 2048,
            max_ctas: 32,
            max_regs: 65536,
            max_smem: 100 << 10,
            schedulers: 4,
            fp_units: 4,
            int_units: 4,
            sfu_units: 4,
            tensor_units: 4,
            l1_ports: 4,
            lsu_queue_depth: 8,
            smem_latency: 29,
            scheduler: SchedulerPolicy::Gto,
        }
    }
}

impl SmConfig {
    /// (latency, initiation interval) of an opcode's execution pipe.
    ///
    /// Memory opcodes return the pipe cost of address generation; their real
    /// latency comes from the memory system.
    pub fn timing(&self, op: Op) -> (u64, u64) {
        match op {
            Op::IntAlu => (4, 1),
            Op::FpAlu | Op::FpMul | Op::FpFma => (4, 1),
            Op::Sfu => (21, 4),
            Op::Tensor => (16, 2),
            Op::Branch => (2, 1),
            Op::Bar | Op::Exit => (1, 1),
            Op::Ld(Space::Shared) | Op::St(Space::Shared) => (self.smem_latency, 1),
            Op::Ld(_) | Op::St(_) => (1, 1),
        }
    }

    /// Number of pipes available for an opcode class.
    pub fn units_for(&self, op: Op) -> u32 {
        match op {
            Op::IntAlu | Op::Branch => self.int_units,
            Op::FpAlu | Op::FpMul | Op::FpFma => self.fp_units,
            Op::Sfu => self.sfu_units,
            Op::Tensor => self.tensor_units,
            // Memory ops contend on the LSU queue instead of a pipe group.
            Op::Bar | Op::Exit | Op::Ld(_) | Op::St(_) => self.schedulers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = SmConfig::default();
        assert_eq!(c.max_warps, 64);
        assert_eq!(c.schedulers, 4);
        assert_eq!(c.max_regs, 65536);
        assert_eq!(c.fp_units, 4);
        assert_eq!(c.sfu_units, 4);
        assert_eq!(c.int_units, 4);
        assert_eq!(c.tensor_units, 4);
    }

    #[test]
    fn sfu_is_long_latency_low_throughput() {
        let c = SmConfig::default();
        let (fp_lat, fp_ii) = c.timing(Op::FpFma);
        let (sfu_lat, sfu_ii) = c.timing(Op::Sfu);
        assert!(sfu_lat > fp_lat);
        assert!(sfu_ii > fp_ii);
    }

    #[test]
    fn shared_memory_latency_is_configurable() {
        let c = SmConfig {
            smem_latency: 40,
            ..SmConfig::default()
        };
        assert_eq!(c.timing(Op::Ld(Space::Shared)).0, 40);
    }
}
