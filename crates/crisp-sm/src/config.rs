//! SM configuration: resource caps and execution-pipe timing.

use std::io;

use crisp_ckpt::{bad, CheckpointState, Reader, Writer};
use crisp_trace::{Op, Space};

/// Warp-scheduler selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the same warp until it
    /// stalls, then fall back to the oldest ready warp (Accel-Sim's
    /// default, best for locality).
    Gto,
    /// Loose round-robin: rotate through ready warps, spreading issue
    /// bandwidth evenly (better fairness, worse intra-warp locality).
    Lrr,
}

/// Static configuration of one SM.
///
/// Defaults follow the paper's Table II (shared by the Jetson Orin and the
/// RTX 3070 rows): 64 warps, 4 schedulers, 65536 registers, 4 units of each
/// execution class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// Maximum resident warps.
    pub max_warps: u32,
    /// Maximum resident threads (warp slots × 32 unless reduced).
    pub max_threads: u32,
    /// Maximum resident CTAs.
    pub max_ctas: u32,
    /// Architectural registers in the register file.
    pub max_regs: u32,
    /// Shared-memory capacity in bytes (the L1 carve-out).
    pub max_smem: u32,
    /// Warp schedulers (issue ports) per SM.
    pub schedulers: u32,
    /// FP32 pipelines.
    pub fp_units: u32,
    /// Integer pipelines.
    pub int_units: u32,
    /// Special-function pipelines.
    pub sfu_units: u32,
    /// Tensor-core pipelines.
    pub tensor_units: u32,
    /// Sector accesses the LSU can present to the L1 per cycle
    /// (4 × 32 B = 128 B/cycle, the Ampere L1 port width).
    pub l1_ports: u32,
    /// Pending memory instructions the LSU queue holds.
    pub lsu_queue_depth: usize,
    /// Shared-memory access latency in cycles.
    pub smem_latency: u64,
    /// Warp-scheduler policy.
    pub scheduler: SchedulerPolicy,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            max_warps: 64,
            max_threads: 2048,
            max_ctas: 32,
            max_regs: 65536,
            max_smem: 100 << 10,
            schedulers: 4,
            fp_units: 4,
            int_units: 4,
            sfu_units: 4,
            tensor_units: 4,
            l1_ports: 4,
            lsu_queue_depth: 8,
            smem_latency: 29,
            scheduler: SchedulerPolicy::Gto,
        }
    }
}

impl SmConfig {
    /// (latency, initiation interval) of an opcode's execution pipe.
    ///
    /// Memory opcodes return the pipe cost of address generation; their real
    /// latency comes from the memory system.
    pub fn timing(&self, op: Op) -> (u64, u64) {
        match op {
            Op::IntAlu => (4, 1),
            Op::FpAlu | Op::FpMul | Op::FpFma => (4, 1),
            Op::Sfu => (21, 4),
            Op::Tensor => (16, 2),
            Op::Branch => (2, 1),
            Op::Bar | Op::Exit => (1, 1),
            Op::Ld(Space::Shared) | Op::St(Space::Shared) => (self.smem_latency, 1),
            Op::Ld(_) | Op::St(_) => (1, 1),
        }
    }

    /// Number of pipes available for an opcode class.
    pub fn units_for(&self, op: Op) -> u32 {
        match op {
            Op::IntAlu | Op::Branch => self.int_units,
            Op::FpAlu | Op::FpMul | Op::FpFma => self.fp_units,
            Op::Sfu => self.sfu_units,
            Op::Tensor => self.tensor_units,
            // Memory ops contend on the LSU queue instead of a pipe group.
            Op::Bar | Op::Exit | Op::Ld(_) | Op::St(_) => self.schedulers,
        }
    }
}

impl CheckpointState for SmConfig {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.max_warps)?;
        w.u32(self.max_threads)?;
        w.u32(self.max_ctas)?;
        w.u32(self.max_regs)?;
        w.u32(self.max_smem)?;
        w.u32(self.schedulers)?;
        w.u32(self.fp_units)?;
        w.u32(self.int_units)?;
        w.u32(self.sfu_units)?;
        w.u32(self.tensor_units)?;
        w.u32(self.l1_ports)?;
        w.u64(self.lsu_queue_depth as u64)?;
        w.u64(self.smem_latency)?;
        w.u8(match self.scheduler {
            SchedulerPolicy::Gto => 0,
            SchedulerPolicy::Lrr => 1,
        })
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        let cfg = SmConfig {
            max_warps: r.u32()?,
            max_threads: r.u32()?,
            max_ctas: r.u32()?,
            max_regs: r.u32()?,
            max_smem: r.u32()?,
            schedulers: r.u32()?,
            fp_units: r.u32()?,
            int_units: r.u32()?,
            sfu_units: r.u32()?,
            tensor_units: r.u32()?,
            l1_ports: r.u32()?,
            lsu_queue_depth: r.u64()? as usize,
            smem_latency: r.u64()?,
            scheduler: match r.u8()? {
                0 => SchedulerPolicy::Gto,
                1 => SchedulerPolicy::Lrr,
                t => return Err(bad(format!("unknown scheduler policy tag {t}"))),
            },
        };
        // Restored counts bound later allocations (warp slots, pipeline
        // vectors, LSU queue) — reject values a real SM could never have
        // before anything is sized from them.
        if cfg.max_warps == 0 || cfg.max_warps > 4096 {
            return Err(bad(format!("implausible max_warps {}", cfg.max_warps)));
        }
        if cfg.max_ctas == 0 || cfg.max_ctas > 4096 {
            return Err(bad(format!("implausible max_ctas {}", cfg.max_ctas)));
        }
        if cfg.schedulers == 0 || cfg.schedulers > 4096 {
            return Err(bad(format!("implausible schedulers {}", cfg.schedulers)));
        }
        for (name, v) in [
            ("fp_units", cfg.fp_units),
            ("int_units", cfg.int_units),
            ("sfu_units", cfg.sfu_units),
            ("tensor_units", cfg.tensor_units),
            ("l1_ports", cfg.l1_ports),
        ] {
            if v > 4096 {
                return Err(bad(format!("implausible {name} {v}")));
            }
        }
        if cfg.lsu_queue_depth > 1 << 16 {
            return Err(bad(format!(
                "implausible lsu_queue_depth {}",
                cfg.lsu_queue_depth
            )));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = SmConfig::default();
        assert_eq!(c.max_warps, 64);
        assert_eq!(c.schedulers, 4);
        assert_eq!(c.max_regs, 65536);
        assert_eq!(c.fp_units, 4);
        assert_eq!(c.sfu_units, 4);
        assert_eq!(c.int_units, 4);
        assert_eq!(c.tensor_units, 4);
    }

    #[test]
    fn sfu_is_long_latency_low_throughput() {
        let c = SmConfig::default();
        let (fp_lat, fp_ii) = c.timing(Op::FpFma);
        let (sfu_lat, sfu_ii) = c.timing(Op::Sfu);
        assert!(sfu_lat > fp_lat);
        assert!(sfu_ii > fp_ii);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_config() {
        let c = SmConfig {
            max_warps: 48,
            scheduler: SchedulerPolicy::Lrr,
            ..SmConfig::default()
        };
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        c.save(&mut w, ()).unwrap();
        let mut r = Reader::new(buf.as_slice());
        assert_eq!(SmConfig::restore(&mut r, ()).unwrap(), c);
    }

    #[test]
    fn checkpoint_restore_rejects_implausible_counts() {
        let c = SmConfig {
            max_warps: 1 << 20,
            ..SmConfig::default()
        };
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        c.save(&mut w, ()).unwrap();
        let mut r = Reader::new(buf.as_slice());
        let err = SmConfig::restore(&mut r, ()).unwrap_err();
        assert!(err.to_string().contains("max_warps"));
    }

    #[test]
    fn shared_memory_latency_is_configurable() {
        let c = SmConfig {
            smem_latency: 40,
            ..SmConfig::default()
        };
        assert_eq!(c.timing(Op::Ld(Space::Shared)).0, 40);
    }
}
