//! CTA work units and the SM resource accounting that gates their issue.
//!
//! "At the CTA issue stage, the CTA scheduler checks the CTA's resource
//! requirements with the remaining resources on the SM. If all resource
//! constraints are met, the CTA is issued. At CTA commit, resources occupied
//! by the CTA are freed" (paper Section III-A). Fine-grained intra-SM
//! partitioning adds a per-stream [`ResourceQuota`] on top of the physical
//! caps.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use crisp_ckpt::{CheckpointState, Reader, Writer};
use crisp_trace::{CtaTrace, KernelId, KernelInfo, KernelTrace, StreamId, WARP_SIZE};

use crate::config::SmConfig;

/// Resources one CTA occupies while resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtaResources {
    /// Thread slots.
    pub threads: u32,
    /// Warp slots.
    pub warps: u32,
    /// Registers.
    pub regs: u32,
    /// Shared-memory bytes.
    pub smem: u32,
}

impl CtaResources {
    /// Requirements of one CTA of `kernel`.
    pub fn of_kernel(kernel: &KernelTrace) -> Self {
        CtaResources {
            threads: kernel.warps_per_cta() * WARP_SIZE as u32,
            warps: kernel.warps_per_cta(),
            regs: kernel.regs_per_cta(),
            smem: kernel.smem_per_cta,
        }
    }

    /// Requirements of one CTA from launch metadata alone — the streaming
    /// scheduler sizes CTAs off the [`KernelInfo`] directory without paging
    /// any instruction payload in.
    pub fn of_info(info: &KernelInfo) -> Self {
        CtaResources {
            threads: info.warps_per_cta() * WARP_SIZE as u32,
            warps: info.warps_per_cta(),
            regs: info.regs_per_cta(),
            smem: info.smem_per_cta,
        }
    }
}

/// One CTA ready to run: its demand-paged instruction trace plus metadata.
#[derive(Debug, Clone)]
pub struct CtaWork {
    /// Stream the kernel belongs to.
    pub stream: StreamId,
    /// Which kernel launch of the trace source this CTA belongs to.
    pub kernel: KernelId,
    /// Launch geometry (shared with the source's directory).
    pub info: Arc<KernelInfo>,
    /// This CTA's instruction streams (shared with the source's resident
    /// window, not copied per warp).
    pub cta: Arc<CtaTrace>,
    /// Which CTA of the grid this is.
    pub cta_index: usize,
    /// Global sequence number for commit reporting.
    pub seq: u64,
}

impl CtaWork {
    /// Resource needs of this CTA.
    pub fn resources(&self) -> CtaResources {
        CtaResources::of_info(&self.info)
    }
}

/// Resources in use, either SM-wide or per stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Thread slots in use.
    pub threads: u32,
    /// Warp slots in use.
    pub warps: u32,
    /// Registers in use.
    pub regs: u32,
    /// Shared-memory bytes in use.
    pub smem: u32,
    /// Resident CTAs.
    pub ctas: u32,
}

impl Usage {
    fn add(&mut self, r: CtaResources) {
        self.threads += r.threads;
        self.warps += r.warps;
        self.regs += r.regs;
        self.smem += r.smem;
        self.ctas += 1;
    }

    fn sub(&mut self, r: CtaResources) {
        self.threads -= r.threads;
        self.warps -= r.warps;
        self.regs -= r.regs;
        self.smem -= r.smem;
        self.ctas -= 1;
    }
}

/// A per-stream ceiling on SM resources — the fine-grained intra-SM
/// partition. `ResourceQuota::unlimited()` disables the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceQuota {
    /// Max thread slots for the stream.
    pub threads: u32,
    /// Max warp slots.
    pub warps: u32,
    /// Max registers.
    pub regs: u32,
    /// Max shared-memory bytes.
    pub smem: u32,
    /// Max resident CTAs.
    pub ctas: u32,
}

impl ResourceQuota {
    /// No per-stream restriction (bounded only by the SM's physical caps).
    pub fn unlimited() -> Self {
        ResourceQuota {
            threads: u32::MAX,
            warps: u32::MAX,
            regs: u32::MAX,
            smem: u32::MAX,
            ctas: u32::MAX,
        }
    }

    /// A quota that is `num/denom` of the SM's physical resources — the
    /// "EVEN" static intra-SM split is `fraction(cfg, 1, 2)`.
    pub fn fraction(cfg: &SmConfig, num: u32, denom: u32) -> Self {
        assert!(denom > 0 && num <= denom, "fraction must be within [0, 1]");
        let f = |v: u32| (v as u64 * num as u64 / denom as u64) as u32;
        ResourceQuota {
            threads: f(cfg.max_threads),
            warps: f(cfg.max_warps),
            regs: f(cfg.max_regs),
            smem: f(cfg.max_smem),
            ctas: f(cfg.max_ctas).max(1),
        }
    }
}

/// Resource book-keeping for one SM: physical caps plus per-stream usage.
#[derive(Debug, Clone)]
pub struct SmResources {
    cfg: SmConfig,
    total: Usage,
    by_stream: HashMap<StreamId, Usage>,
}

impl SmResources {
    /// Empty accounting for an SM with configuration `cfg`.
    pub fn new(cfg: SmConfig) -> Self {
        SmResources {
            cfg,
            total: Usage::default(),
            by_stream: HashMap::new(),
        }
    }

    /// Whether a CTA needing `r` fits under both the physical caps and the
    /// issuing stream's `quota`.
    pub fn fits(&self, stream: StreamId, r: CtaResources, quota: ResourceQuota) -> bool {
        let t = &self.total;
        let phys = t.threads + r.threads <= self.cfg.max_threads
            && t.warps + r.warps <= self.cfg.max_warps
            && t.regs + r.regs <= self.cfg.max_regs
            && t.smem + r.smem <= self.cfg.max_smem
            && t.ctas < self.cfg.max_ctas;
        if !phys {
            return false;
        }
        let s = self.by_stream.get(&stream).copied().unwrap_or_default();
        s.threads + r.threads <= quota.threads
            && s.warps + r.warps <= quota.warps
            && s.regs + r.regs <= quota.regs
            && s.smem + r.smem <= quota.smem
            && s.ctas < quota.ctas
    }

    /// Commit the allocation of `r` to `stream`.
    pub fn allocate(&mut self, stream: StreamId, r: CtaResources) {
        self.total.add(r);
        self.by_stream.entry(stream).or_default().add(r);
    }

    /// Release `r` from `stream` (CTA commit).
    pub fn release(&mut self, stream: StreamId, r: CtaResources) {
        self.total.sub(r);
        self.by_stream
            .get_mut(&stream)
            .expect("release without allocate")
            .sub(r);
    }

    /// SM-wide usage.
    pub fn total(&self) -> Usage {
        self.total
    }

    /// Usage attributed to `stream`.
    pub fn of_stream(&self, stream: StreamId) -> Usage {
        self.by_stream.get(&stream).copied().unwrap_or_default()
    }

    /// Resident-warp occupancy in [0, 1] — the paper's Figure 13 metric.
    pub fn warp_occupancy(&self) -> f64 {
        self.total.warps as f64 / self.cfg.max_warps as f64
    }

    /// Resident-warp occupancy of one stream in [0, 1].
    pub fn stream_warp_occupancy(&self, stream: StreamId) -> f64 {
        self.of_stream(stream).warps as f64 / self.cfg.max_warps as f64
    }
}

impl CheckpointState for CtaResources {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.threads)?;
        w.u32(self.warps)?;
        w.u32(self.regs)?;
        w.u32(self.smem)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(CtaResources {
            threads: r.u32()?,
            warps: r.u32()?,
            regs: r.u32()?,
            smem: r.u32()?,
        })
    }
}

impl CheckpointState for ResourceQuota {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.threads)?;
        w.u32(self.warps)?;
        w.u32(self.regs)?;
        w.u32(self.smem)?;
        w.u32(self.ctas)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(ResourceQuota {
            threads: r.u32()?,
            warps: r.u32()?,
            regs: r.u32()?,
            smem: r.u32()?,
            ctas: r.u32()?,
        })
    }
}

impl CheckpointState for Usage {
    type SaveCtx<'a> = ();
    type RestoreCtx<'a> = ();

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        w.u32(self.threads)?;
        w.u32(self.warps)?;
        w.u32(self.regs)?;
        w.u32(self.smem)?;
        w.u32(self.ctas)
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, _: ()) -> io::Result<Self> {
        Ok(Usage {
            threads: r.u32()?,
            warps: r.u32()?,
            regs: r.u32()?,
            smem: r.u32()?,
            ctas: r.u32()?,
        })
    }
}

impl CheckpointState for SmResources {
    type SaveCtx<'a> = ();
    /// The SM configuration the accounting was built against.
    type RestoreCtx<'a> = SmConfig;

    fn save<W: io::Write>(&self, w: &mut Writer<W>, _: ()) -> io::Result<()> {
        self.total.save(w, ())?;
        let mut streams: Vec<StreamId> = self.by_stream.keys().copied().collect();
        streams.sort_unstable();
        w.len(streams.len())?;
        for s in streams {
            w.stream(s)?;
            self.by_stream[&s].save(w, ())?;
        }
        Ok(())
    }

    fn restore<R: io::Read>(r: &mut Reader<R>, cfg: SmConfig) -> io::Result<Self> {
        let total = Usage::restore(r, ())?;
        let n = r.len(1 << 16)?;
        let mut by_stream = HashMap::with_capacity(n);
        for _ in 0..n {
            let s = r.stream()?;
            by_stream.insert(s, Usage::restore(r, ())?);
        }
        Ok(SmResources {
            cfg,
            total,
            by_stream,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crisp_trace::{CtaTrace, Instr, WarpTrace};

    fn kernel(block_threads: u32, regs: u32, smem: u32) -> KernelTrace {
        let warps = block_threads.div_ceil(32);
        let mut w = WarpTrace::new();
        w.push(Instr::exit());
        let cta = CtaTrace::new(vec![w; warps as usize]);
        KernelTrace::new("k", block_threads, regs, smem, vec![cta])
    }

    const S0: StreamId = StreamId(0);
    const S1: StreamId = StreamId(1);

    #[test]
    fn cta_resources_derive_from_kernel() {
        let k = kernel(128, 32, 1024);
        let r = CtaResources::of_kernel(&k);
        assert_eq!(r.threads, 128);
        assert_eq!(r.warps, 4);
        assert_eq!(r.regs, 4 * 32 * 32);
        assert_eq!(r.smem, 1024);
    }

    #[test]
    fn physical_caps_gate_issue() {
        let cfg = SmConfig::default();
        let mut res = SmResources::new(cfg);
        let big = CtaResources {
            threads: 1024,
            warps: 32,
            regs: 32768,
            smem: 0,
        };
        assert!(res.fits(S0, big, ResourceQuota::unlimited()));
        res.allocate(S0, big);
        assert!(
            res.fits(S0, big, ResourceQuota::unlimited()),
            "second still fits"
        );
        res.allocate(S0, big);
        assert!(
            !res.fits(S0, big, ResourceQuota::unlimited()),
            "third exceeds warps/regs"
        );
    }

    #[test]
    fn register_pressure_limits_before_warps() {
        // The paper's Figure 13: "the low occupancy regions are limited by
        // registers". A register-heavy CTA exhausts the RF before warp slots.
        let cfg = SmConfig::default();
        let mut res = SmResources::new(cfg);
        let reg_heavy = CtaResources {
            threads: 256,
            warps: 8,
            regs: 256 * 128,
            smem: 0,
        };
        let mut issued = 0;
        while res.fits(S0, reg_heavy, ResourceQuota::unlimited()) {
            res.allocate(S0, reg_heavy);
            issued += 1;
        }
        assert_eq!(issued, 2, "65536 regs / 32768 per CTA = 2");
        assert!(res.total().warps < cfg.max_warps, "warp slots left over");
    }

    #[test]
    fn quota_partitions_streams_within_one_sm() {
        let cfg = SmConfig::default();
        let mut res = SmResources::new(cfg);
        let half = ResourceQuota::fraction(&cfg, 1, 2);
        let cta = CtaResources {
            threads: 256,
            warps: 8,
            regs: 8192,
            smem: 0,
        };
        // Stream 0 may only fill half the warps (32 → 4 CTAs of 8 warps).
        let mut s0 = 0;
        while res.fits(S0, cta, half) {
            res.allocate(S0, cta);
            s0 += 1;
        }
        assert_eq!(s0, 4);
        // Stream 1 still has its half available.
        assert!(res.fits(S1, cta, half));
        assert_eq!(res.of_stream(S0).warps, 32);
        assert!((res.warp_occupancy() - 0.5).abs() < 1e-12);
        assert!((res.stream_warp_occupancy(S0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn release_returns_resources() {
        let cfg = SmConfig::default();
        let mut res = SmResources::new(cfg);
        let cta = CtaResources {
            threads: 512,
            warps: 16,
            regs: 16384,
            smem: 2048,
        };
        res.allocate(S0, cta);
        res.release(S0, cta);
        assert_eq!(res.total(), Usage::default());
        assert_eq!(res.of_stream(S0), Usage::default());
    }

    #[test]
    fn fraction_quota_keeps_at_least_one_cta_slot() {
        let cfg = SmConfig::default();
        let q = ResourceQuota::fraction(&cfg, 1, 64);
        assert!(q.ctas >= 1);
    }

    #[test]
    #[should_panic(expected = "within")]
    fn fraction_rejects_over_unity() {
        let _ = ResourceQuota::fraction(&SmConfig::default(), 3, 2);
    }
}
