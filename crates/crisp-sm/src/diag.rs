//! Point-in-time diagnostic snapshots of an SM's scheduling state.
//!
//! When the simulator's forward-progress watchdog fires, it needs to explain
//! *why* nothing retires: which warps are parked at a barrier, which wait on
//! the scoreboard, which CTA is pinned by a warp whose trace ran out without
//! an `Exit`. [`Sm::diagnostics`](crate::Sm::diagnostics) captures exactly
//! that — a cheap, allocation-light snapshot of resident CTAs and warps plus
//! memory-side occupancy — which `crisp-sim` assembles into a deadlock
//! report. The snapshot is read-only and deterministic: it depends only on
//! architectural state, so serial and sharded runs produce identical
//! reports.

use crisp_trace::StreamId;

/// Why a resident warp is not retiring instructions right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpStall {
    /// The warp has an issuable instruction; it is merely waiting for a
    /// scheduler slot. Not a hazard.
    Issuable,
    /// Parked at a CTA-wide barrier, waiting for the other live warps.
    Barrier,
    /// The next instruction's operands wait on an in-flight ALU writeback.
    Scoreboard,
    /// The next instruction's operands wait on an outstanding memory value.
    MemPending,
    /// The warp's trace is exhausted but never executed an `Exit`: it can
    /// never retire, its CTA can never commit, and any barrier in that CTA
    /// waits forever. This is the canonical deadlock culprit; the pre-flight
    /// validator rejects such traces up front.
    TraceExhausted,
    /// The warp ran to completion and freed its slot's resources.
    Exited,
}

impl WarpStall {
    /// Short human-readable label used in deadlock reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WarpStall::Issuable => "issuable",
            WarpStall::Barrier => "at barrier",
            WarpStall::Scoreboard => "scoreboard wait",
            WarpStall::MemPending => "memory pending",
            WarpStall::TraceExhausted => "trace exhausted without Exit",
            WarpStall::Exited => "exited",
        }
    }
}

/// Snapshot of one resident warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpDiagnostics {
    /// Warp slot index on the SM.
    pub slot: usize,
    /// Stream the warp's kernel belongs to.
    pub stream: StreamId,
    /// CTA index within the kernel's grid.
    pub cta_index: usize,
    /// Warp index within the CTA.
    pub warp_index: usize,
    /// Next dynamic instruction index.
    pub pc: usize,
    /// Total instructions in this warp's trace.
    pub trace_len: usize,
    /// Why the warp is not retiring.
    pub stall: WarpStall,
    /// Registers with an outstanding writeback (ALU or memory).
    pub pending_regs: u32,
}

/// Snapshot of one resident CTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtaDiagnostics {
    /// Stream that launched the CTA.
    pub stream: StreamId,
    /// Kernel name.
    pub kernel: String,
    /// CTA index within the kernel's grid.
    pub cta_index: usize,
    /// Warps still resident (not yet exited).
    pub live_warps: usize,
    /// Warps currently parked at the barrier.
    pub at_barrier: usize,
}

impl CtaDiagnostics {
    /// True when some warps wait at a barrier that can never release —
    /// i.e. at least one sibling warp can never arrive. The caller pairs
    /// this with per-warp state to name the culprit.
    #[must_use]
    pub fn barrier_waiting(&self) -> bool {
        self.at_barrier > 0 && self.at_barrier < self.live_warps
    }
}

/// Snapshot of one SM's scheduling and memory-side occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmDiagnostics {
    /// SM id.
    pub id: usize,
    /// Resident CTAs, in slot order.
    pub ctas: Vec<CtaDiagnostics>,
    /// Resident (non-exited) warps, in slot order.
    pub warps: Vec<WarpDiagnostics>,
    /// Memory requests outstanding in the SM's MSHRs.
    pub mshr_in_flight: usize,
    /// Sectors queued in the load-store unit.
    pub lsu_queued: usize,
    /// ALU writebacks still scheduled.
    pub writebacks_pending: usize,
}

impl SmDiagnostics {
    /// True when the SM holds no work at all.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.warps.is_empty()
            && self.mshr_in_flight == 0
            && self.lsu_queued == 0
            && self.writebacks_pending == 0
    }
}
