//! Streaming-multiprocessor (SM) core model for CRISP.
//!
//! Replays warp traces on a cycle-level SIMT core: per-scheduler
//! greedy-then-oldest (GTO) warp selection, a register scoreboard,
//! execution-unit pipelines with per-class latency and initiation interval
//! (4× FP, 4× SFU, 4× INT, 4× TENSOR per SM as in the paper's Table II),
//! and a load-store unit that coalesces per-lane addresses into 32 B sectors
//! and feeds them to the unified L1 in `crisp-mem`.
//!
//! CTAs are the unit of work: the GPU-level CTA scheduler in `crisp-sim`
//! checks a CTA's resource needs (threads, registers, shared memory, warp
//! and CTA slots) against the SM's remaining — possibly partitioned —
//! resources, launches it with [`Sm::launch_cta`], and learns about commits
//! from [`Sm::cycle`]'s output. That issue/commit resource protocol is
//! exactly the lever the paper's fine-grained intra-SM partitioning
//! manipulates.

mod config;
mod cta;
pub mod diag;
mod lsu;
mod sm;
mod units;
mod warp;

pub use config::{SchedulerPolicy, SmConfig};
pub use cta::{CtaResources, CtaWork, ResourceQuota, SmResources, Usage};
pub use diag::{CtaDiagnostics, SmDiagnostics, WarpDiagnostics, WarpStall};
pub use lsu::Lsu;
pub use sm::{CtaCommit, CycleOutput, Sm, StallBreakdown};
pub use units::ExecUnits;
pub use warp::{WarpState, WarpStatus};
